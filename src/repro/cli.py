"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig1                 # scaling trends
    python -m repro fig2                 # step timeline
    python -m repro fig5                 # SSD viability projection
    python -m repro fig6                 # step time & activation peak grid
    python -m repro fig7 [--hidden H]    # ROK curve
    python -m repro fig8a                # micro-batch breakdown
    python -m repro fig8b                # upscaling bandwidth
    python -m repro table3               # offload amount vs estimate
    python -m repro memory [--zero N]    # ZeRO memory breakdown (extension)
    python -m repro quickstart           # functional offloaded training demo
    python -m repro tiers                # CPU-pool-size sweep (tiered offload)
    python -m repro sched                # FIFO vs priority I/O scheduling A/B
    python -m repro autotune             # static vs adaptive budget under drift
    python -m repro faults               # fault-scenario runner (--functional
                                         #   for the live chaos recovery demo)
    python -m repro dataplane            # pooled vs legacy copy-path A/B
                                         #   (MB/s, copies/step, bit-exactness)
    python -m repro tenants              # multi-tenant fair-share vs FIFO A/B
                                         #   (Jain's index, weights, quotas)
    python -m repro kv                   # KV-cache paging vs HBM-only serving
                                         #   (p50/p99 TTFT, peak concurrency)
    python -m repro serve                # supervised service: kill/restart,
                                         #   manifest replay, live control, GC

The functional quickstart drives any backend: ``--target ssd|cpu|tiered``
plus ``--cpu-pool-bytes`` (CPU-tier capacity) and ``--chunk-bytes``
(SSD chunk coalescing) select the three-tier configuration; ``--fifo-io``
swaps the priority-aware I/O scheduler back to the paper's FIFO dequeue.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.core.engine import IO_BACKENDS
from repro.core.offloader import OFFLOAD_TARGETS
from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig, ZeroStage
from repro.train.trainer import PlacementStrategy

SSD_WRITE_BW = 4 * INTEL_OPTANE_P5800X_1600GB.write_bw
SSD_READ_BW = 4 * INTEL_OPTANE_P5800X_1600GB.read_bw
EVAL_PAR = ParallelismConfig(tp=2)


def cmd_fig1(args: argparse.Namespace) -> None:
    from repro.analysis.scaling import fig1_series, memory_to_compute_growth_ratio

    series = fig1_series()
    for key, entry in series.items():
        print(f"{key:<11} growth {100 * entry['growth_per_year']:6.1f} %/yr")
        for p in entry["points"]:
            print(f"    {p.year:7.1f}  {p.name:<14} {p.value:.3e}")
    print(f"memory/compute growth ratio: {memory_to_compute_growth_ratio():.2f} (paper ~0.41)")


def cmd_fig2(args: argparse.Namespace) -> None:
    from repro.sim import StepSimulator, build_segments

    config = ModelConfig(arch="bert", hidden=args.hidden, num_layers=3, seq_len=1024)
    segments = build_segments(config, args.batch, parallelism=EVAL_PAR)
    sim = StepSimulator(
        segments,
        PlacementStrategy.OFFLOAD,
        write_bandwidth=SSD_WRITE_BW,
        read_bandwidth=SSD_READ_BW,
        num_microbatches=2,
        keep_last_segments=2,
    )
    result = sim.run(weight_update_s=0.02)
    print(result.timeline.render_ascii(width=100, lanes=["gpu", "store", "load"]))
    print(f"step={result.step_time_s * 1e3:.0f} ms  stall={result.io_stall_time_s * 1e3:.1f} ms  "
          f"offloaded={result.offloaded_bytes / 2**30:.1f} GiB")


def cmd_fig5(args: argparse.Namespace) -> None:
    from repro.analysis.ssd_model import project_all_fig5

    for projection in project_all_fig5():
        print(projection.as_row())


def cmd_fig6(args: argparse.Namespace) -> None:
    from repro.sim import simulate_strategy

    print(f"{'model':<5} {'H':>6} {'L':>2} {'overhead':>9} {'peak keep':>10} "
          f"{'peak off':>9} {'reduction':>9}")
    for arch in ("bert", "t5", "gpt"):
        for hidden, layers in ((8192, 4), (12288, 3), (16384, 2)):
            config = ModelConfig(arch=arch, hidden=hidden, num_layers=layers, seq_len=1024)
            keep = simulate_strategy(
                config, args.batch, PlacementStrategy.KEEP, SSD_WRITE_BW, SSD_READ_BW,
                parallelism=EVAL_PAR,
            )
            off = simulate_strategy(
                config, args.batch, PlacementStrategy.OFFLOAD, SSD_WRITE_BW, SSD_READ_BW,
                parallelism=EVAL_PAR,
            )
            print(f"{arch:<5} {hidden:>6} {layers:>2} "
                  f"{off.step_time_s / keep.step_time_s - 1:>8.2%} "
                  f"{keep.activation_peak_bytes / 2**30:>8.2f}GB "
                  f"{off.activation_peak_bytes / 2**30:>7.2f}GB "
                  f"{1 - off.activation_peak_bytes / keep.activation_peak_bytes:>8.0%}")


def cmd_fig7(args: argparse.Namespace) -> None:
    from repro.sim import simulate_strategy

    config = ModelConfig(arch="bert", hidden=args.hidden, num_layers=3, seq_len=1024)
    print(f"{'B':>3} {'strategy':<10} {'act peak':>9} {'throughput':>12}")
    for batch in (4, 8, 16):
        for strategy in PlacementStrategy:
            r = simulate_strategy(
                config, batch, strategy, SSD_WRITE_BW, SSD_READ_BW, parallelism=EVAL_PAR
            )
            print(f"{batch:>3} {strategy.value:<10} {r.activation_peak_bytes / 2**30:>7.2f}GB "
                  f"{r.model_throughput_tflops():>9.1f} TF")


def cmd_fig8a(args: argparse.Namespace) -> None:
    from repro.analysis.microbatch import microbatch_breakdown

    config = ModelConfig(arch="bert", hidden=args.hidden, num_layers=3, seq_len=1024)
    for row in microbatch_breakdown(config, parallelism=EVAL_PAR):
        print(f"B{row.batch_size:<3} total {row.total_improvement:6.1%}  "
              f"update {row.update_saving_improvement:6.1%}  "
              f"efficiency {row.efficiency_improvement:6.1%}")


def cmd_fig8b(args: argparse.Namespace) -> None:
    from repro.analysis.microbatch import upscaling_write_bandwidth

    reference, points = upscaling_write_bandwidth(hidden=args.hidden)
    print(f"reference (2-GPU TP2): {reference:.1f} GB/s")
    for p in points:
        print(f"  {p.label:<14} {p.write_bandwidth_gbps:>6.1f} GB/s")


def cmd_table3(args: argparse.Namespace) -> None:
    from repro.analysis.perf_model import (
        model_param_count,
        model_step_perf,
        weight_update_time,
    )
    from repro.sim import StepSimulator, build_segments

    for hidden, layers in ((8192, 4), (12288, 3), (16384, 2)):
        config = ModelConfig(arch="bert", hidden=hidden, num_layers=layers, seq_len=1024)
        segments = build_segments(config, args.batch, parallelism=EVAL_PAR)
        update = weight_update_time(EVAL_PAR.params_per_gpu(model_param_count(config)))
        sim = StepSimulator(
            segments, PlacementStrategy.OFFLOAD, SSD_WRITE_BW, SSD_READ_BW,
            keep_last_segments=1,
        )
        result = sim.run(weight_update_s=update)
        estimate = model_step_perf(
            config, args.batch, parallelism=EVAL_PAR
        ).activation_bytes_per_microbatch
        print(f"H{hidden:<6} L{layers} offloaded {result.offloaded_bytes / 1e9:6.2f} GB  "
              f"estimate {estimate / 1e9:6.2f} GB  "
              f"write BW {result.required_write_bandwidth_gbps():5.2f} GB/s")


def cmd_memory(args: argparse.Namespace) -> None:
    from repro.train.zero_memory import zero_memory_breakdown

    config = ModelConfig(arch="gpt", hidden=args.hidden, num_layers=args.layers, seq_len=1024)
    par = ParallelismConfig(tp=args.tp, dp=args.dp, zero_stage=ZeroStage(args.zero))
    for offload in (0.0, 0.5):
        breakdown = zero_memory_breakdown(
            config, args.batch, parallelism=par, offload_fraction=offload
        )
        print(f"offload_fraction={offload}:")
        for name, nbytes in breakdown.as_dict().items():
            print(f"  {name:<12} {nbytes / 2**30:8.2f} GiB")
        print(f"  {'total':<12} {breakdown.total / 2**30:8.2f} GiB "
              f"({breakdown.activation_fraction:.0%} activations)")


def cmd_quickstart(args: argparse.Namespace) -> None:
    from examples.quickstart import main as quickstart_main

    cpu_pool_bytes = args.cpu_pool_bytes
    if cpu_pool_bytes is None and args.target == "tiered":
        cpu_pool_bytes = 1 << 20  # 1 MiB pool suits the quickstart model
    quickstart_main(
        target=args.target,
        cpu_pool_bytes=cpu_pool_bytes,
        chunk_bytes=args.chunk_bytes,
        fifo_io=args.fifo_io,
        legacy_dataplane=args.legacy_dataplane,
        io_backend=args.io_backend,
        io_direct=args.io_direct,
    )


def cmd_tiers(args: argparse.Namespace) -> None:
    """Sweep the pinned-CPU pool size through the tiered step simulator,
    with the analytic :class:`TierTransferModel` prediction alongside."""
    from repro.analysis.perf_model import TierTransferModel
    from repro.sim import simulate_strategy

    config = ModelConfig(arch="bert", hidden=args.hidden, num_layers=3, seq_len=1024)
    keep = simulate_strategy(
        config, args.batch, PlacementStrategy.KEEP, SSD_WRITE_BW, SSD_READ_BW,
        parallelism=EVAL_PAR,
    )
    if args.cpu_pool_bytes is not None:
        pools = [args.cpu_pool_bytes]
    else:
        pools = [0, 2 * 2**30, 4 * 2**30, 8 * 2**30, 16 * 2**30]
    print(f"{'CPU pool':>9} {'to CPU':>8} {'to SSD':>8} {'overhead':>9} "
          f"{'stall':>8} {'SSD BW req':>11} {'analytic':>9}")
    for pool in pools:
        r = simulate_strategy(
            config, args.batch, PlacementStrategy.OFFLOAD, SSD_WRITE_BW, SSD_READ_BW,
            parallelism=EVAL_PAR, cpu_pool_bytes=pool or None,
        )
        analytic = TierTransferModel(
            cpu_pool_bytes=pool, ssd_bandwidth=SSD_WRITE_BW
        ).required_ssd_write_bandwidth(r.offloaded_bytes, r.step_time_s)
        print(f"{pool / 2**30:>7.0f}GB {r.offloaded_cpu_bytes / 2**30:>6.1f}GB "
              f"{r.offloaded_ssd_bytes / 2**30:>6.1f}GB "
              f"{r.step_time_s / keep.step_time_s - 1:>8.2%} "
              f"{r.io_stall_time_s * 1e3:>6.1f}ms "
              f"{r.required_ssd_write_bandwidth_gbps():>9.1f}GB/s "
              f"{analytic / 1e9:>7.1f}GB/s")


def cmd_sched(args: argparse.Namespace) -> None:
    """A/B the SSD-channel scheduling modes at equal bandwidth: the
    paper's independent pools (duplex), one shared FIFO queue, and the
    shared queue with blocking-load-first priority dequeue."""
    from repro.sim import simulate_strategy

    config = ModelConfig(arch="bert", hidden=args.hidden, num_layers=3, seq_len=1024)
    # Default to a single SSD: the paper's 4-SSD RAID0 has enough headroom
    # that no store backlog ever forms and all three modes coincide — the
    # scheduler matters exactly when the channel is contended.
    write_bw = args.write_bw if args.write_bw is not None else INTEL_OPTANE_P5800X_1600GB.write_bw
    read_bw = args.read_bw if args.read_bw is not None else INTEL_OPTANE_P5800X_1600GB.read_bw
    print(f"{'io mode':>9} {'step':>9} {'blocking-load stall':>20} {'forwarded':>10}")
    results = {}
    for mode in ("duplex", "fifo", "priority"):
        r = simulate_strategy(
            config, args.batch, PlacementStrategy.OFFLOAD, write_bw, read_bw,
            parallelism=EVAL_PAR, io_mode=mode,
        )
        results[mode] = r
        print(f"{mode:>9} {r.step_time_s * 1e3:>7.0f}ms "
              f"{r.io_stall_time_s * 1e3:>18.1f}ms "
              f"{r.forwarded_bytes / 2**30:>8.2f}GB")
    saved = results["fifo"].io_stall_time_s - results["priority"].io_stall_time_s
    print(f"\npriority dequeue removes {saved * 1e3:.1f} ms of backward-blocking "
          f"stall per step versus FIFO at equal bandwidth")


def cmd_autotune(args: argparse.Namespace) -> None:
    """A/B the paper's one-shot offload budget against the online
    adaptive controller under a bandwidth/workload drift scenario: the
    budget is profiled once at full bandwidth, then the scenario pulls
    the hardware out from under it and the controller re-sizes live."""
    from repro.core.adaptive import WorkloadProfile, choose_offload_budget
    from repro.core.autotune import AutotuneController
    from repro.core.policy import OffloadPolicy, PolicyConfig
    from repro.sim import DriftScenario, StepSimulator, build_segments, simulate_adaptive_run

    config = ModelConfig(arch="bert", hidden=args.hidden, num_layers=3, seq_len=1024)
    segments = build_segments(config, args.batch, parallelism=EVAL_PAR)
    # Single SSD, shared channel: the regime where a stale budget hurts.
    write_bw = args.write_bw if args.write_bw is not None else INTEL_OPTANE_P5800X_1600GB.write_bw
    read_bw = args.read_bw if args.read_bw is not None else INTEL_OPTANE_P5800X_1600GB.read_bw

    if args.scenario == "step":
        scenario = DriftScenario.step_drop(
            write_bw, read_bw, steps=args.steps, drift_step=args.drift_step,
            write_factor=args.factor,
        )
    elif args.scenario == "ramp":
        scenario = DriftScenario.ramp(
            write_bw, read_bw, steps=args.steps, drift_step=args.drift_step,
            ramp_steps=max(1, (args.steps - args.drift_step) // 2),
            write_factor=args.factor,
        )
    else:  # microbatch
        scenario = DriftScenario.microbatch_resize(
            write_bw, read_bw, steps=args.steps, drift_step=args.drift_step,
            before=2, after=1,
        )

    # The paper's Fig. 3 one-shot: profile a step, size the budget once.
    probe = StepSimulator(
        segments, PlacementStrategy.OFFLOAD, write_bw, read_bw,
        num_microbatches=scenario.microbatches_at(0), io_mode="fifo",
    ).run()
    budget = choose_offload_budget(
        WorkloadProfile(
            activation_bytes_per_step=probe.offloaded_bytes + probe.kept_bytes,
            forward_time_s=probe.forward_time_s,
            backward_time_s=probe.backward_time_s,
        ),
        write_bw, read_bw, safety_factor=0.9,
    )

    static = simulate_adaptive_run(
        segments, scenario,
        policy=OffloadPolicy(PolicyConfig(offload_budget_bytes=budget)),
    )
    controller = AutotuneController()
    adaptive = simulate_adaptive_run(
        segments, scenario,
        policy=OffloadPolicy(PolicyConfig(offload_budget_bytes=budget)),
        controller=controller,
    )

    print(f"scenario: {args.scenario}  drift at step {scenario.drift_step}  "
          f"one-shot budget {budget / 2**30:.2f} GiB "
          f"(write {write_bw / 1e9:.1f} GB/s)\n")
    print(f"{'step':>4} {'write BW':>9} {'mb':>3} {'static stall':>13} "
          f"{'adaptive stall':>15} {'budget':>9} {'bw est':>8}")
    for step in range(scenario.steps):
        s = static.results[step]
        a = adaptive.results[step]
        in_force = adaptive.budgets[step]
        decision = adaptive.decisions[step]
        est = decision.write_bandwidth_bytes_per_s
        print(f"{step:>4} {scenario.write_bandwidth_at(step) / 1e9:>7.1f}G/s "
              f"{scenario.microbatches_at(step):>3} "
              f"{s.io_stall_time_s * 1e3:>11.1f}ms "
              f"{a.io_stall_time_s * 1e3:>13.1f}ms "
              f"{(in_force or 0) / 2**30:>7.2f}G "
              f"{(est or 0) / 1e9:>6.1f}G"
              + ("  <- retuned" if decision.retuned else ""))
    drift = scenario.drift_step
    ratio = adaptive.stall_time_s(drift) / max(static.stall_time_s(drift), 1e-12)
    print(f"\npost-drift backward stall: static {static.stall_time_s(drift) * 1e3:.0f} ms, "
          f"adaptive {adaptive.stall_time_s(drift) * 1e3:.0f} ms ({ratio:.0%} of static)")
    print(f"post-drift offloaded: static "
          f"{sum(r.offloaded_bytes for r in static.results[drift:]) / 2**30:.1f} GiB, "
          f"adaptive {sum(r.offloaded_bytes for r in adaptive.results[drift:]) / 2**30:.1f} GiB")


def _faults_functional(args: argparse.Namespace) -> None:
    """Functional chaos demo: train the same tiny GPT fault-free, under a
    seeded transient-fault plan (retries heal it, losses bit-exact), and
    with the SSD bricked mid-run (tiered CPU failover completes it)."""
    import tempfile

    import numpy as np

    from repro.core import EngineConfig, OffloadPolicy, PolicyConfig, build_engine
    from repro.data import SyntheticCorpus, TokenBatchLoader
    from repro.device import GPU
    from repro.io.faults import FaultPlan, inject_faults
    from repro.models import GPT
    from repro.optim import SGD
    from repro.train import Trainer

    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=97, seq_len=32, head_dim=32
    )
    steps = 4

    def run(plan=None, target="ssd", kill_before_step=None):
        gpu = GPU()
        model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
        policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
        engine = build_engine(
            EngineConfig(
                target=target,
                store_dir=tempfile.mkdtemp(prefix="ssdtrain-faults-"),
                # Small pool: demotions to the (killable) SSD tier happen.
                cpu_pool_bytes=(64 << 10) if target == "tiered" else None,
                policy=policy,
            )
        )
        cache = engine.cache()
        injector = inject_faults(cache.offloader, plan) if plan is not None else None
        trainer = Trainer(model, SGD(model.parameters(), lr=1e-3), gpu,
                          strategy=PlacementStrategy.OFFLOAD, cache=cache)
        loader = TokenBatchLoader(
            SyntheticCorpus(vocab_size=config.vocab_size, seed=11),
            batch_size=2, seq_len=config.seq_len, device=gpu,
        )
        losses = []
        try:
            for step in range(steps):
                if injector is not None and kill_before_step == step:
                    injector.kill()
                losses.append(trainer.train_step([loader.next_batch()]).loss)
        finally:
            trainer.close()
        return losses, injector, cache.scheduler.stats, getattr(cache.offloader, "stats", None)

    clean, _, _, _ = run()
    faulted, injector, sched, _ = run(plan=FaultPlan.transient(rate=0.2, seed=args.seed))
    print(f"transient faults (rate 0.2, seed {args.seed}): "
          f"{injector.fault_stats.injected_transient} injected, "
          f"{sched.retries} retries, {sched.failed} failed")
    dead, dead_inj, dead_sched, tier_stats = run(
        plan=FaultPlan(seed=args.seed), target="tiered", kill_before_step=2
    )
    print(f"SSD death before step 2 (tiered): "
          f"{dead_inj.fault_stats.permanent_failures} permanent failures, "
          f"{tier_stats.failovers} failovers "
          f"({tier_stats.failover_bytes / 1e6:.2f} MB re-routed to CPU)")
    print(f"\n{'step':>4} {'fault-free':>12} {'transient':>12} {'ssd-death':>12}")
    for i, (a, b, c) in enumerate(zip(clean, faulted, dead)):
        print(f"{i:>4} {a:>12.6f} {b:>12.6f} {c:>12.6f}")
    assert faulted == clean, "transient faults must heal to bit-exact losses"
    assert dead == clean, "CPU failover must keep losses bit-exact"
    # Permanent death under tiered surfaces as failovers (the data is
    # recovered into the CPU tier), not as failed requests.
    assert tier_stats.failovers >= 1, "expected >=1 failover after the kill"
    print("\nlosses bit-exact under transient faults and under SSD death "
          "with CPU failover. ✓")


def _faults_heal(args: argparse.Namespace) -> None:
    """Self-healing chaos demo (architecture §12), three scenarios:

    A. die -> heal -> resurrect: the SSD is killed mid-run (breaker
       opens, placements fail over), then heals; half-open canary
       probes re-close the breaker and the tier comes back — losses
       stay bit-exact throughout.
    B. brownout hedging A/B: deterministic stalls on blocking loads;
       with hedged reads the duplicate completes first and the p99
       latency collapses versus the unhedged baseline.
    C. ENOSPC survival: one store root fills; write-leveling re-routes
       chunks to the other root with zero failed requests.
    """
    import errno
    import tempfile
    import time as _time

    import numpy as np

    from repro.core import EngineConfig, OffloadPolicy, PolicyConfig, build_engine
    from repro.data import SyntheticCorpus, TokenBatchLoader
    from repro.device import GPU
    from repro.io.faults import FaultPlan, inject_faults
    from repro.io.scheduler import IORequest, IOScheduler, Priority
    from repro.models import GPT
    from repro.optim import SGD
    from repro.train import Trainer

    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=97, seq_len=32, head_dim=32
    )
    steps = 6

    def run(plan=None, kill_before_step=None, heal_before_step=None,
            probe_backoff_s=None, enospc=False, root0_cap=None):
        gpu = GPU()
        model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
        policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
        kwargs = {}
        if enospc:
            kwargs["chunk_bytes"] = 32 << 10
            kwargs["store_roots"] = [tempfile.mkdtemp(prefix="ssdtrain-heal-root1-")]
        engine = build_engine(
            EngineConfig(
                target="tiered",
                store_dir=tempfile.mkdtemp(prefix="ssdtrain-heal-"),
                cpu_pool_bytes=64 << 10,
                policy=policy,
                probe_backoff_s=probe_backoff_s,
                **kwargs,
            )
        )
        if root0_cap is not None:
            budget = {"left": root0_cap}

            def gate(root_index, nbytes, _b=budget):
                if root_index == 0:
                    _b["left"] -= nbytes
                    if _b["left"] < 0:
                        raise OSError(errno.ENOSPC, "injected: store root 0 full")

            engine.chunk_store.fault_gate = gate
        cache = engine.cache()
        injector = inject_faults(cache.offloader, plan) if plan is not None else None
        trainer = Trainer(model, SGD(model.parameters(), lr=1e-3), gpu,
                          strategy=PlacementStrategy.OFFLOAD, cache=cache)
        loader = TokenBatchLoader(
            SyntheticCorpus(vocab_size=config.vocab_size, seed=11),
            batch_size=2, seq_len=config.seq_len, device=gpu,
        )
        losses = []
        try:
            for step in range(steps):
                if injector is not None and kill_before_step == step:
                    injector.kill()
                if injector is not None and heal_before_step == step:
                    injector.heal()
                losses.append(trainer.train_step([loader.next_batch()]).loss)
            offloader = cache.offloader
            if probe_backoff_s is not None and heal_before_step is not None:
                # Settle: drive any outstanding probe rounds so the demo
                # asserts on the post-resurrection state, not a race.
                deadline = _time.monotonic() + 5.0
                while offloader.ssd_dead and _time.monotonic() < deadline:
                    offloader.maybe_probe_ssd()
                    _time.sleep(probe_backoff_s)
            return losses, injector, cache.scheduler.stats, offloader
        finally:
            trainer.close()

    clean, _, _, _ = run()

    # -- scenario A: die -> heal -> half-open probes resurrect the tier
    healed, inj, _, off = run(
        plan=FaultPlan(seed=args.seed), kill_before_step=1, heal_before_step=3,
        probe_backoff_s=0.005,
    )
    breaker = off.breaker
    print(f"die->heal->resurrect: {inj.fault_stats.permanent_failures} permanent "
          f"failures, breaker trips {breaker.stats.trips}, probes "
          f"{breaker.stats.probes_allowed} ({breaker.stats.probe_successes} ok), "
          f"resurrections {breaker.stats.resurrections}, "
          f"final state {breaker.state!r}")
    assert healed == clean, "die->heal cycle must keep losses bit-exact"
    assert breaker.stats.trips >= 1, "the kill must open the breaker"
    assert not off.ssd_dead, "the healed SSD tier must be resurrected"
    assert breaker.stats.resurrections >= 1, "probes must re-close the breaker"

    # -- scenario B: brownout -> hedged blocking loads cut the tail
    def run_loads(hedge):
        # Hedging needs spare lane capacity: wedged primaries hold their
        # workers for the full stall, so the pool must fit every
        # overlapping straggler plus the duplicates that rescue them.
        scheduler = IOScheduler(
            num_store_workers=1, num_load_workers=4,
            hedge=hedge, hedge_delay_s=0.005,
            name=f"heal-demo-{'hedged' if hedge else 'baseline'}",
        )
        stalled = {3, 9, 15}  # deterministic brownout stragglers
        durations = []
        try:
            for i in range(20):
                def body(i=i):
                    if i in stalled:
                        _time.sleep(0.12)  # the wedged primary read
                    return i

                request = IORequest(
                    body, kind="load", priority=Priority.BLOCKING_LOAD,
                    tensor_id=f"t{i}", nbytes=1024, lane="ssd",
                    hedge_fn=lambda i=i: i,  # the duplicate is healthy
                )
                start = _time.monotonic()
                scheduler.submit(request)
                request.done_event.wait(5.0)
                durations.append(_time.monotonic() - start)
            return durations, scheduler.stats_snapshot()
        finally:
            scheduler.shutdown()

    def p99(values):
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    base_durations, base_stats = run_loads(hedge=False)
    hedged_durations, hedge_stats = run_loads(hedge=True)
    print(f"brownout hedging A/B: blocking-load p99 "
          f"{p99(base_durations) * 1e3:.1f} ms unhedged -> "
          f"{p99(hedged_durations) * 1e3:.1f} ms hedged "
          f"({hedge_stats.hedges_issued} hedges issued, "
          f"{hedge_stats.hedges_won} won)")
    assert base_stats.hedges_issued == 0
    assert hedge_stats.hedges_won >= 1, "a hedge must win at least once"
    assert p99(hedged_durations) < p99(base_durations), (
        "hedged reads must cut the blocking-load tail"
    )

    # -- scenario C: ENOSPC on one store root -> re-route, zero failures
    survived, _, c_sched, c_off = run(enospc=True, root0_cap=48 << 10)
    store = c_off.file_store
    print(f"ENOSPC on root 0: {store.enospc_root_skips} re-routed writes, "
          f"full roots {store.full_roots}, {c_sched.failed} failed requests")
    assert survived == clean, "ENOSPC re-routing must keep losses bit-exact"
    assert c_sched.failed == 0, "a full root must not fail any request"
    assert store.enospc_root_skips >= 1, "expected >=1 ENOSPC re-route"
    print("\nSSD die->heal resurrected by canary probes, hedged reads cut "
          "the brownout tail, ENOSPC survived with zero failures. ✓")


def cmd_faults(args: argparse.Namespace) -> None:
    """Fault-scenario runner: the sim A/B of what transient retries,
    latency spikes, and a mid-run SSD death cost (stall, overhead,
    failover), plus ``--functional`` for the live chaos demo proving
    bit-exact recovery and ``--heal`` for the self-healing degraded-mode
    demo (breaker resurrection, hedged reads, ENOSPC survival)."""
    from repro.sim import FaultScenario, build_segments, simulate_fault_run

    if getattr(args, "heal", False):
        _faults_heal(args)
        return
    if args.functional:
        _faults_functional(args)
        return

    config = ModelConfig(arch="bert", hidden=args.hidden, num_layers=3, seq_len=1024)
    segments = build_segments(config, args.batch, parallelism=EVAL_PAR)
    write_bw = INTEL_OPTANE_P5800X_1600GB.write_bw
    read_bw = INTEL_OPTANE_P5800X_1600GB.read_bw
    scenarios = {
        "transient": FaultScenario.transient(
            write_bw, read_bw, steps=args.steps, fault_rate=args.fault_rate,
            seed=args.seed,
        ),
        "latency": FaultScenario.latency(
            write_bw, read_bw, steps=args.steps, fault_rate=args.fault_rate,
            spike_s=0.02, seed=args.seed,
        ),
        "lane_death": FaultScenario.lane_death(
            write_bw, read_bw, steps=args.steps, death_step=args.steps // 2,
            seed=args.seed,
        ),
    }
    print(f"{args.steps} steps, fault rate {args.fault_rate}, seed {args.seed}, "
          f"SSD write {write_bw / 1e9:.1f} GB/s\n")
    print(f"{'scenario':>10} {'stall':>9} {'clean stall':>12} {'overhead':>9} "
          f"{'failover':>9}")
    runs = {}
    for name, scenario in scenarios.items():
        run = runs[name] = simulate_fault_run(segments, scenario)
        failover = f"step {run.failover_step}" if run.failover_step is not None else "-"
        print(f"{name:>10} {run.total_stall_s * 1e3:>7.1f}ms "
              f"{run.fault_free_stall_s * 1e3:>10.1f}ms "
              f"{run.step_time_overhead:>8.2%} {failover:>9}")
    death = runs["lane_death"]
    step_before = death.results[max(0, args.steps // 2 - 1)]
    step_after = death.results[args.steps // 2]
    print(f"\nlane death at step {args.steps // 2}: step time "
          f"{step_before.step_time_s * 1e3:.0f} ms -> {step_after.step_time_s * 1e3:.0f} ms "
          f"(offload drains via host memory, run completes; the PCIe link "
          f"outruns a single bricked SSD, at the cost of bounded host DRAM)")


def cmd_dataplane(args: argparse.Namespace) -> None:
    """Zero-copy data plane A/B: pooled/streaming vs the legacy copy map.

    Two surfaces: a store/load microbench of every backend (MB/s both
    ways), and a functional mini-training A/B proving the pooled path
    changes *nothing* about the numerics (losses bit-exact) while
    avoiding real allocations (``allocs_avoided`` / copies per step).
    """
    import shutil
    import tempfile
    import time as _time

    import numpy as np

    from repro.core.ids import TensorID
    from repro.core.offloader import CPUOffloader, PinnedMemoryPool
    from repro.io.chunkstore import ChunkedTensorStore
    from repro.io.filestore import TensorFileStore

    size = args.size_mb * (1 << 20)
    iters = args.iters
    data = np.random.default_rng(0).random(size // 8)
    names = [f"t{i}" for i in range(8)]
    tids = [TensorID(stamp=i, shape=data.shape) for i in range(len(names))]

    def bench_store(store):
        start = _time.perf_counter()
        for i in range(iters):
            store.write(names[i % len(names)], data)
        flush = getattr(store, "flush", None)
        if flush is not None:
            flush()
        write_s = _time.perf_counter() - start
        start = _time.perf_counter()
        for i in range(iters):
            store.read(names[i % len(names)], data.shape, data.dtype)
        read_s = _time.perf_counter() - start
        return write_s, read_s, store.copy_stats.snapshot()

    def bench_cpu(legacy):
        off = CPUOffloader(PinnedMemoryPool(), legacy_copies=legacy)
        # Warm-up pass: both paths pay first-touch faults once; steady
        # state is what differs (the arena reuses, legacy re-allocates).
        for tid in tids:
            off.store(tid, data)
        start = _time.perf_counter()
        for i in range(iters):
            off.store(tids[i % len(tids)], data)
        write_s = _time.perf_counter() - start
        start = _time.perf_counter()
        for i in range(iters):
            off.load(tids[i % len(tids)], data.shape, data.dtype)
        read_s = _time.perf_counter() - start
        # dataplane_stats folds in the arena's hits — copy_stats alone
        # would report 'avoided 0' and hide the CPU tier's pooling win.
        snap = off.dataplane_stats()
        off.shutdown()
        return write_s, read_s, snap

    total_mb = iters * size / 1e6
    print(f"data-plane microbench: {iters} x {args.size_mb} MiB tensors "
          f"({total_mb:.0f} MB per direction)\n")
    print(f"{'backend':>12} {'path':>8} {'store MB/s':>11} {'load MB/s':>10} "
          f"{'copies':>7} {'avoided':>8}")
    speedups = {}
    for backend in ("filestore", "chunkstore", "cpu pool"):
        rates = {}
        for legacy in (True, False):
            if backend == "cpu pool":
                write_s, read_s, snap = bench_cpu(legacy)
            else:
                tmpdir = tempfile.mkdtemp(prefix="dp-bench-")
                try:
                    if backend == "filestore":
                        store = TensorFileStore(tmpdir, legacy_copies=legacy)
                    else:
                        store = ChunkedTensorStore(
                            tmpdir, chunk_bytes=4 << 20, legacy_copies=legacy
                        )
                    write_s, read_s, snap = bench_store(store)
                    store.clear()
                finally:
                    shutil.rmtree(tmpdir, ignore_errors=True)
            label = "legacy" if legacy else "pooled"
            rates[label] = total_mb / write_s
            print(f"{backend:>12} {label:>8} {total_mb / write_s:>11.0f} "
                  f"{total_mb / read_s:>10.0f} {snap.copies:>7} "
                  f"{snap.allocs_avoided:>8}")
        speedups[backend] = rates["pooled"] / rates["legacy"]
    for backend, ratio in speedups.items():
        print(f"store-path speedup ({backend}): {ratio:.2f}x")

    from examples.quickstart import STEPS, run

    if not args.no_functional:
        print("\nfunctional A/B (tiered target, 5 steps each):")
        results = {}
        for legacy in (True, False):
            results["legacy" if legacy else "pooled"] = run(
                offload=True,
                target="tiered",
                cpu_pool_bytes=1 << 20,
                chunk_bytes=64 << 10,
                legacy_dataplane=legacy,
            )
        for label, result in results.items():
            dp = result["dataplane"]
            print(f"  {label:>6}: {dp.copies / STEPS:.1f} copies/step "
                  f"({dp.bytes_copied / 1e6:.2f} MB copied), "
                  f"{dp.allocs_avoided} allocs avoided, "
                  f"arena hit rate {dp.arena_hit_rate:.0%}")
        assert results["pooled"]["losses"] == results["legacy"]["losses"], (
            "pooled data plane must be bit-exact vs the legacy copy path"
        )
        pooled = results["pooled"]["dataplane"]
        legacy_dp = results["legacy"]["dataplane"]
        assert pooled.allocs_avoided > 0, "pooled run must avoid allocations"
        assert pooled.copies < legacy_dp.copies, "pooled run must copy less"
        print("losses bit-exact across pooled vs legacy data planes. ✓")

    if args.io_backend in (None, "thread"):
        return
    print(f"\nI/O backend A/B (ssd target, {STEPS} steps each): "
          f"thread vs {args.io_backend}"
          + (" with O_DIRECT" if args.io_direct else ""))
    ab = {}
    for backend in ("thread", args.io_backend):
        ab[backend] = run(
            offload=True,
            target="ssd",
            io_backend=backend,
            io_direct=args.io_direct and backend != "thread",
        )
    totals = {}
    for backend, result in ab.items():
        lanes = result["engine_stats"].io_lanes
        syscalls = sum(ls.syscalls for ls in lanes.values())
        batched = sum(ls.batched_requests for ls in lanes.values())
        bounced = sum(ls.bounce_copies for ls in lanes.values())
        skipped = sum(ls.bounce_copies_skipped for ls in lanes.values())
        totals[backend] = (syscalls, skipped, result["offloaded"])
        line = (f"  {backend:>8}: {syscalls} syscalls "
                f"({syscalls / STEPS:.0f}/step) for "
                f"{result['offloaded'] / 1e6:.2f} MB offloaded, "
                f"{batched} requests batched")
        if bounced or skipped:
            line += f", bounce copies {bounced} (skipped {skipped})"
        print(line)
    assert ab["thread"]["losses"] == ab[args.io_backend]["losses"], (
        "batched backends must be bit-exact vs the thread backend"
    )
    assert totals["thread"][2] == totals[args.io_backend][2], (
        "A/B runs must offload identical bytes"
    )
    assert totals[args.io_backend][0] < totals["thread"][0], (
        f"{args.io_backend} must issue strictly fewer syscalls than "
        f"thread at identical bytes"
    )
    if args.io_backend == "gds-sim":
        assert totals["gds-sim"][1] > 0, (
            "gds-sim must skip host bounce copies for registered tensors"
        )
    print(f"losses bit-exact, {args.io_backend} used "
          f"{totals['thread'][0] - totals[args.io_backend][0]} fewer "
          f"syscalls at identical bytes. ✓")


def cmd_tenants(args: argparse.Namespace) -> None:
    """Multi-tenant QoS A/B: fair-share DRR dequeue vs naive FIFO.

    N equal-weight tenants fire identical offload bursts at one shared
    lane (a serial virtual-clock device, so the numbers are exact).
    Fair-share service splits the contended window evenly (Jain's index
    ~1.0); FIFO serves whoever queued first and starves the rest.  A
    second round demonstrates weights and a byte-quota cap.
    """
    from repro.sim.step_sim import MultiTenantHarness, TenantJobSpec

    n = args.num_tenants
    jobs = [
        TenantJobSpec(
            name=f"job{i}", num_tensors=args.tensors, tensor_bytes=args.tensor_kb << 10
        )
        for i in range(n)
    ]
    print(f"multi-tenant A/B: {n} equal-weight tenants x {args.tensors} "
          f"stores of {args.tensor_kb} KiB on one shared lane\n")
    print(f"{'mode':>6} {'Jain(contended)':>16}  per-tenant contended KiB")
    results = {}
    for fair in (True, False):
        result = MultiTenantHarness(jobs, fair=fair).run()
        results["fair" if fair else "fifo"] = result
        shares = "  ".join(
            f"{m.name}:{m.contended_bytes >> 10}" for m in result.tenants.values()
        )
        print(f"{'fair' if fair else 'fifo':>6} {result.contended_jain:>16.4f}  {shares}")
    fair_jain = results["fair"].contended_jain
    fifo_jain = results["fifo"].contended_jain
    print(f"\nfair-share Jain {fair_jain:.4f} vs FIFO {fifo_jain:.4f} "
          f"(+{fair_jain - fifo_jain:.4f}); equal tenants get equal service "
          f"only under the DRR dequeue.")
    assert fair_jain >= 0.9, f"fair-share Jain index too low: {fair_jain:.4f}"
    assert fair_jain > fifo_jain, "fair-share must beat FIFO on Jain's index"

    wjobs = [
        TenantJobSpec(name="weight2", weight=2.0, num_tensors=args.tensors,
                      tensor_bytes=args.tensor_kb << 10),
        TenantJobSpec(name="weight1", weight=1.0, num_tensors=args.tensors,
                      tensor_bytes=args.tensor_kb << 10),
    ]
    weighted = MultiTenantHarness(wjobs, fair=True).run()
    cb = {m.name: m.contended_bytes for m in weighted.tenants.values()}
    ratio = cb["weight2"] / max(1, cb["weight1"])
    print(f"\nweighted round (2:1): contended-byte ratio {ratio:.2f} "
          f"(weight-proportional service)")

    quota = 4 * (args.tensor_kb << 10)
    qjobs = [
        TenantJobSpec(name="capped", num_tensors=args.tensors,
                      tensor_bytes=args.tensor_kb << 10, byte_quota=quota),
        TenantJobSpec(name="free", num_tensors=args.tensors,
                      tensor_bytes=args.tensor_kb << 10),
    ]
    capped = MultiTenantHarness(qjobs, fair=True).run().tenants["capped"]
    print(f"quota round: capped tenant executed {capped.executed_bytes >> 10} KiB "
          f"of a {quota >> 10} KiB budget "
          f"({capped.rejected_bytes >> 10} KiB rejected at admission). ✓")
    assert capped.executed_bytes <= quota, "byte quota must cap executed bytes"


def cmd_kv(args: argparse.Namespace) -> None:
    """KV-cache paging A/B: paged serving vs HBM-only at equal capacity.

    One seeded multi-user trace is served twice through the virtual-clock
    server sim — once with the KV block pool paging cold blocks to the
    engine's CPU/SSD tiers, once reserving every request's full KV in HBM.
    All numbers are virtual-clock, so they are exact and deterministic;
    the paged run is replayed under the same seed to prove it.
    """
    from repro.serve import (
        KVServerSim,
        RequestTrace,
        ServerConfig,
        TraceConfig,
    )

    trace = RequestTrace.generate(
        TraceConfig(num_requests=args.requests, seed=args.seed)
    )
    print(
        f"KV paging A/B: {len(trace)} requests from {len(trace.users)} users "
        f"(seed {args.seed}), contexts up to {trace.max_context_tokens} tokens, "
        f"HBM capacity {args.hbm_kb} KiB\n"
    )
    hbm = args.hbm_kb << 10
    paged_cfg = ServerConfig(paged=True, strategy=args.strategy, hbm_capacity_bytes=hbm)
    base_cfg = ServerConfig(paged=False, hbm_capacity_bytes=hbm)
    paged = KVServerSim(trace, paged_cfg).run()
    base = KVServerSim(trace, base_cfg).run()
    replay = KVServerSim(trace, paged_cfg).run()

    print(f"{'mode':>16} {'served':>7} {'rejected':>9} {'peak ctx':>9} "
          f"{'TTFT p50 (s)':>13} {'TTFT p99 (s)':>13}")
    for r in (paged, base):
        print(f"{r.label:>16} {r.served:>7d} {r.rejected:>9d} "
              f"{r.peak_concurrency:>9d} {r.ttft_p50:>13.4f} {r.ttft_p99:>13.4f}")

    print("\nper-user TTFT p50 (s), paged:")
    for user in sorted(paged.per_user_ttft_p50):
        print(f"  {user}: {paged.per_user_ttft_p50[user]:.4f}")

    stats = paged.pool_stats
    census = "  ".join(
        f"{tier}:{count}" for tier, count in sorted(paged.tier_census_peak.items())
    )
    print(f"\nblock census at peak concurrency: {census}")
    print(f"pool books: {stats.blocks_written} blocks written, "
          f"{stats.demand_fetches} demand fetches, "
          f"{stats.prefetch_hits} prefetch hits "
          f"(hit rate {stats.prefetch_hit_rate:.3f}), "
          f"{stats.writebacks} writebacks, {stats.evictions} evictions")
    print(f"bit-exact KV round-trip: {paged.bit_exact_checked} blocks verified "
          f"across tier migrations. {'✓' if paged.bit_exact_ok else '✗'}")

    assert paged.bit_exact_ok and base.bit_exact_ok, "KV bytes must round-trip bit-exact"
    assert paged.peak_concurrency > base.peak_concurrency, (
        "paging must serve more concurrent contexts than HBM-only at equal capacity"
    )
    assert paged.served >= base.served, "paging must not serve fewer requests"
    if args.strategy in ("lookahead",):
        assert stats.prefetch_hit_rate > 0, "look-ahead prefetch must land hits"
    assert (replay.ttft_p50, replay.ttft_p99) == (paged.ttft_p50, paged.ttft_p99), (
        "same seed must reproduce identical p50/p99"
    )
    print(f"\npaged serves {paged.peak_concurrency} concurrent contexts vs "
          f"{base.peak_concurrency} HBM-only; replay under seed {args.seed} "
          f"reproduced p50/p99 exactly. ✓")


def cmd_serve(args: argparse.Namespace) -> None:
    """Supervised service-mode demo: crash recovery + endurance GC.

    Runs the deterministic synthetic workload on a durable, supervised
    engine, kills the engine mid-run, and asserts the supervisor
    restarts it from the manifest journal with bit-exact losses, that a
    budget change lands over the control bus without a restart, and
    that chunk compaction reclaims dead bytes with exact books.
    """
    from examples.serve_demo import main

    main(
        steps=args.steps,
        kill_step=args.kill_step if args.kill_step >= 0 else None,
        budget_step=args.budget_step if args.budget_step >= 0 else None,
        seed=args.seed,
        store_dir=args.store_dir,
    )


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig1": cmd_fig1,
    "fig2": cmd_fig2,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8a": cmd_fig8a,
    "fig8b": cmd_fig8b,
    "table3": cmd_table3,
    "memory": cmd_memory,
    "quickstart": cmd_quickstart,
    "tiers": cmd_tiers,
    "sched": cmd_sched,
    "autotune": cmd_autotune,
    "faults": cmd_faults,
    "dataplane": cmd_dataplane,
    "tenants": cmd_tenants,
    "kv": cmd_kv,
    "serve": cmd_serve,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate SSDTrain paper artifacts."
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available artifacts")
    for name in COMMANDS:
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--hidden", type=int, default=12288)
        p.add_argument("--batch", type=int, default=16)
        if name == "memory":
            p.add_argument("--layers", type=int, default=24)
            p.add_argument("--tp", type=int, default=2)
            p.add_argument("--dp", type=int, default=4)
            p.add_argument("--zero", type=int, default=0, choices=[0, 1, 2, 3])
        if name == "quickstart":
            p.add_argument(
                "--target", choices=OFFLOAD_TARGETS, default="ssd",
                help="offload backend: per-tensor SSD files, pinned-CPU pool, "
                     "or the GPU->CPU->SSD tier hierarchy",
            )
        if name in ("quickstart", "tiers"):
            p.add_argument(
                "--cpu-pool-bytes", type=int, default=None,
                help="pinned-CPU tier capacity in bytes",
            )
        if name == "quickstart":
            p.add_argument(
                "--chunk-bytes", type=int, default=None,
                help="coalesce SSD writes into chunks of this size",
            )
            p.add_argument(
                "--fifo-io", action="store_true",
                help="use the paper's FIFO dequeue instead of the "
                     "priority-aware I/O scheduler",
            )
            p.add_argument(
                "--legacy-dataplane", action="store_true",
                help="run the pre-PR5 copy map (fresh allocation per CPU "
                     "store, tobytes/slurp file I/O) instead of the pooled "
                     "zero-copy data plane",
            )
        if name in ("quickstart", "dataplane"):
            p.add_argument(
                "--io-backend", choices=IO_BACKENDS,
                default="thread" if name == "quickstart" else None,
                help="lane execution backend: blocking thread-per-job, "
                     "batched SQ/CQ submission (uring), or the simulated "
                     "GPUDirect-Storage lane (gds-sim)"
                     + ("" if name == "quickstart"
                        else "; selecting one runs a backend A/B vs thread"),
            )
            p.add_argument(
                "--io-direct", action="store_true",
                help="use O_DIRECT-aligned writes (uring/gds-sim backends "
                     "only; falls back to buffered I/O if the filesystem "
                     "refuses O_DIRECT)",
            )
        if name == "dataplane":
            p.add_argument(
                "--size-mb", type=int, default=4,
                help="tensor size for the store/load microbench (MiB)",
            )
            p.add_argument(
                "--iters", type=int, default=24,
                help="stores/loads per backend and path",
            )
            p.add_argument(
                "--no-functional", action="store_true",
                help="skip the functional mini-training A/B (microbench only)",
            )
        if name == "tenants":
            p.add_argument(
                "--num-tenants", type=int, default=4,
                help="equal-weight tenants contending for the shared lane",
            )
            p.add_argument(
                "--tensors", type=int, default=24,
                help="store requests per tenant burst",
            )
            p.add_argument(
                "--tensor-kb", type=int, default=48,
                help="size of each store in KiB",
            )
        if name == "kv":
            p.add_argument(
                "--requests", type=int, default=32,
                help="requests in the synthetic multi-user trace",
            )
            p.add_argument(
                "--seed", type=int, default=1234,
                help="trace seed (same seed => identical p50/p99)",
            )
            p.add_argument(
                "--strategy", choices=("prefer-hbm", "split-token",
                                       "layer-importance", "lookahead"),
                default="lookahead",
                help="paging strategy for the paged run",
            )
            p.add_argument(
                "--hbm-kb", type=int, default=256,
                help="simulated HBM KV budget in KiB (both modes)",
            )
        if name == "serve":
            p.add_argument(
                "--steps", type=int, default=10,
                help="synthetic workload steps to run",
            )
            p.add_argument(
                "--kill-step", type=int, default=4,
                help="step at which the engine is killed (-1 = never)",
            )
            p.add_argument(
                "--budget-step", type=int, default=6,
                help="step at which a budget change is published over "
                     "the control bus (-1 = never)",
            )
            p.add_argument("--seed", type=int, default=0, help="workload seed")
            p.add_argument(
                "--store-dir", default=None,
                help="durable store directory (default: a fresh temp dir)",
            )
        if name in ("sched", "autotune"):
            p.add_argument(
                "--write-bw", type=float, default=None,
                help="SSD write bandwidth in B/s (default: one P5800X)",
            )
            p.add_argument(
                "--read-bw", type=float, default=None,
                help="SSD read bandwidth in B/s (default: one P5800X)",
            )
        if name == "faults":
            p.add_argument(
                "--functional", action="store_true",
                help="run the live chaos demo on the functional engine "
                     "(injected faults, bit-exact recovery) instead of the sim A/B",
            )
            p.add_argument(
                "--heal", action="store_true",
                help="run the self-healing demo: SSD die->heal with breaker "
                     "resurrection, hedged reads under brownout, and ENOSPC "
                     "survival via store-root re-routing",
            )
            p.add_argument("--fault-rate", type=float, default=0.05,
                           help="expected fraction of transfers faulted per step")
            p.add_argument("--steps", type=int, default=8, help="steps to simulate")
            p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
        if name == "autotune":
            p.add_argument(
                "--scenario", choices=("step", "ramp", "microbatch"), default="step",
                help="drift shape: step-function bandwidth drop, linear "
                     "ramp, or a mid-run micro-batch resize",
            )
            p.add_argument(
                "--factor", type=float, default=0.5,
                help="terminal write-bandwidth multiplier (default 0.5 = "
                     "the 2x drop)",
            )
            p.add_argument("--steps", type=int, default=16, help="steps to simulate")
            p.add_argument(
                "--drift-step", type=int, default=8,
                help="first step affected by the drift",
            )
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available artifacts:")
        for name in COMMANDS:
            print(f"  {name}")
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
