#!/usr/bin/env python3
"""Fail CI when a benchmark hot path regresses against the committed baseline.

Compares a fresh pytest-benchmark JSON (``--current``, produced by the
bench-smoke job) against the committed baseline (``--baseline``, e.g.
``BENCH_PR2.json``).  Benchmarks are matched by ``fullname``; only names
matching ``--pattern`` — by default the scheduler/offload hot paths —
are guarded.  A guarded benchmark whose ``--stat`` (default ``min``,
the least noise-sensitive estimator for wall-clock benches) slows down
by more than ``--threshold`` (default 20%) fails the check.

Two escape hatches keep the gate honest rather than flaky:

- benchmarks present on only one side are reported but never fail
  (new benchmarks have no baseline yet, retired ones no current run);
- when the baseline was recorded on different hardware or Python
  (``machine_info`` mismatch), regressions are reported as warnings and
  the check passes, with an instruction to refresh the baseline —
  wall-clock ratios across machines are not evidence of a code
  regression.  ``--strict`` disables this downgrade.

Refresh the baseline deliberately with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ablations.py \
        benchmarks/bench_fig2_timeline.py -q --benchmark-json=BENCH_PR2.json

Exit codes: 0 ok, 1 regression detected, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Tuple

#: Hot paths this repo promises not to regress: the I/O scheduler, the
#: offload simulator paths, the Fig. 2 timeline pipeline, the adaptive
#: controller's per-step observe/retune cycle (it runs inside the
#: training loop, so a slowdown is paid on every step), and the
#: zero-copy data plane's ``buffers`` arena lease hot path (CPU-bound and
#: stable — a slow lease/release is paid on every pooled CPU store).
#: The chunk-coalescing ablation and the ``dataplane`` store/load
#: benches are deliberately NOT in the default wall-clock gate: they are
#: bound by real disk writes whose latency swings far beyond 20% between
#: identical runs.  Their invariants are asserted deterministically
#: inside the benchmarks themselves (>= 4x write-count reduction; same
#: bytes written with strictly fewer copies and allocs avoided), and CI
#: additionally guards ``dataplane|buffers`` in a separate invocation
#: against BENCH_PR5.json with a much wider threshold (see the
#: bench-smoke job) that only catches catastrophic copy-path regressions.
DEFAULT_PATTERN = (
    r"scheduler|offload|timeline|cpu_pool|prefetch|autotune|controller|buffers|tenan"
    r"|kv|serve|uring|backend|service|manifest|breaker|hedge|recovery"
)

#: machine_info keys that must match for cross-run ratios to mean anything.
MACHINE_KEYS = ("machine", "processor", "python_version", "system")


def load_payload(path: str) -> dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read benchmark JSON {path!r}: {exc}")


def extract_stats(payload: dict, path: str, stat: str) -> Dict[str, float]:
    """Map benchmark fullname -> the chosen statistic, in seconds."""
    values = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        value = stats.get(stat)
        if value is None:
            continue
        values[bench.get("fullname", bench.get("name", "?"))] = float(value)
    if not values:
        raise SystemExit(f"error: no benchmarks with stats[{stat!r}] in {path!r}")
    return values


def _normalise(key: str, value) -> object:
    if key == "python_version" and isinstance(value, str):
        # Patch releases don't shift benchmark timings meaningfully; the
        # CI job pins major.minor, not the exact patch of the recording
        # interpreter.
        return ".".join(value.split(".")[:2])
    return value


def machines_comparable(baseline: dict, current: dict) -> Tuple[bool, List[str]]:
    base_info = baseline.get("machine_info", {}) or {}
    cur_info = current.get("machine_info", {}) or {}
    diffs = [
        f"{key}: {base_info.get(key)!r} != {cur_info.get(key)!r}"
        for key in MACHINE_KEYS
        if _normalise(key, base_info.get(key)) != _normalise(key, cur_info.get(key))
    ]
    return not diffs, diffs


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
    pattern: str,
) -> Tuple[List[str], List[str]]:
    """Returns (report lines, regression lines)."""
    guard = re.compile(pattern, re.IGNORECASE)
    report: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        guarded = bool(guard.search(name))
        tag = "guarded" if guarded else "info   "
        if base is None:
            report.append(f"[{tag}] NEW      {name}: {cur * 1e3:.2f} ms (no baseline)")
            continue
        if cur is None:
            report.append(f"[{tag}] RETIRED  {name}: baseline {base * 1e3:.2f} ms")
            continue
        ratio = cur / base if base > 0 else float("inf")
        line = (
            f"[{tag}] {name}: {base * 1e3:.2f} ms -> {cur * 1e3:.2f} ms "
            f"({ratio - 1.0:+.1%})"
        )
        if guarded and ratio > 1.0 + threshold:
            regressions.append(line)
            report.append(line + f"  REGRESSION (> {threshold:.0%})")
        else:
            report.append(line)
    return report, regressions


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="fresh bench-smoke JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional slowdown of guarded benchmarks (default 0.20)",
    )
    parser.add_argument(
        "--pattern",
        default=DEFAULT_PATTERN,
        help="regex selecting the guarded hot-path benchmarks",
    )
    parser.add_argument(
        "--stat",
        default="min",
        choices=("min", "median", "mean"),
        help="pytest-benchmark statistic to compare (default: min)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on regressions even when machine_info differs",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        print("error: --threshold must be positive", file=sys.stderr)
        return 2

    base_payload = load_payload(args.baseline)
    cur_payload = load_payload(args.current)
    baseline = extract_stats(base_payload, args.baseline, args.stat)
    current = extract_stats(cur_payload, args.current, args.stat)
    comparable, diffs = machines_comparable(base_payload, cur_payload)

    report, regressions = compare(baseline, current, args.threshold, args.pattern)
    print(f"bench regression check: {args.current} vs baseline {args.baseline}")
    print(f"stat: {args.stat}, guard pattern: {args.pattern!r}, "
          f"threshold {args.threshold:.0%}\n")
    for line in report:
        print(f"  {line}")

    if regressions and not comparable and not args.strict:
        print("\nWARNING: regressions detected, but the baseline was recorded "
              "on a different machine/Python:")
        for diff in diffs:
            print(f"  {diff}")
        print("Cross-machine wall-clock ratios are not evidence of a code "
              "regression; passing.  Refresh the baseline on this hardware "
              "(see --help) or rerun with --strict to enforce anyway.")
        return 0
    if regressions:
        print(f"\nFAIL: {len(regressions)} hot-path regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nOK: no guarded hot path regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
