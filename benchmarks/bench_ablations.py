"""Ablations of SSDTrain's design choices (extension beyond the paper).

Each ablation switches off or sweeps one mechanism and shows where the
design point sits:

- **write-bandwidth sweep** — how much SSD bandwidth the zero-overhead
  result actually needs (where the Fig. 6 overlap breaks);
- **prefetch budget sweep** — the memory/stall trade-off of the bounded
  look-ahead window;
- **keep-last-module off** — why Fig. 2 keeps the last module;
- **data forwarding off** — what the store/load race costs without it;
- **GDS direct vs CPU bounce buffer** — the Sec. II-D motivation;
- **CPU-pool-size sweep** — how much pinned host memory buys down the
  required SSD write bandwidth in the tiered hierarchy;
- **chunk coalescing** — SSD write-count reduction from packing small
  activations into fixed-size chunks;
- **priority I/O scheduling** — FIFO vs priority dequeue on a shared,
  bandwidth-constrained SSD channel (what the
  :class:`~repro.io.scheduler.IOScheduler` buys over the paper's pools).
"""

import tempfile

import numpy as np

from repro.analysis.perf_model import model_param_count, weight_update_time
from repro.device.pcie import GPU_LINK_GEN4_X16
from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB, RAID0Array
from repro.io.gds import BounceBufferPath, DirectGDSPath
from repro.models.config import ModelConfig
from repro.sim import StepSimulator, build_segments, simulate_strategy
from repro.train.trainer import PlacementStrategy

from benchmarks.conftest import EVAL_PARALLELISM, SSD_READ_BW, SSD_WRITE_BW, emit

CONFIG = ModelConfig(arch="bert", hidden=12288, num_layers=3, seq_len=1024)


def _offload(write_bw=SSD_WRITE_BW, read_bw=SSD_READ_BW, **kw):
    segments = build_segments(CONFIG, 16, parallelism=EVAL_PARALLELISM)
    update = weight_update_time(EVAL_PARALLELISM.params_per_gpu(model_param_count(CONFIG)))
    sim = StepSimulator(segments, PlacementStrategy.OFFLOAD, write_bw, read_bw, **kw)
    return sim.run(weight_update_s=update)


def test_ablation_write_bandwidth_sweep(benchmark):
    keep = simulate_strategy(
        CONFIG, 16, PlacementStrategy.KEEP, SSD_WRITE_BW, SSD_READ_BW,
        parallelism=EVAL_PARALLELISM,
    )

    def sweep():
        rows = []
        for n_ssds in (1, 2, 3, 4):
            bw = n_ssds * INTEL_OPTANE_P5800X_1600GB.write_bw
            rbw = n_ssds * INTEL_OPTANE_P5800X_1600GB.read_bw
            rows.append((n_ssds, _offload(write_bw=bw, read_bw=rbw)))
        return rows

    rows = benchmark(sweep)
    lines = [f"{'#SSDs':>5} {'overhead':>9} {'stall':>8} {'peak':>8} {'forwarded':>10}"]
    for n, r in rows:
        lines.append(
            f"{n:>5} {r.step_time_s / keep.step_time_s - 1:>8.2%} "
            f"{r.io_stall_time_s * 1e3:>6.1f}ms {r.activation_peak_bytes / 2**30:>6.2f}GB "
            f"{r.forwarded_bytes / 2**30:>8.2f}GB"
        )
    emit("Ablation — RAID0 size (write bandwidth) sweep", lines)
    # The 2-SSD array already overlaps this workload; 1 SSD leans on
    # forwarding (memory win shrinks) but never stalls the GPU.
    full = dict(rows)[4]
    assert full.step_time_s / keep.step_time_s - 1 < 0.01
    one = dict(rows)[1]
    assert one.forwarded_bytes > full.forwarded_bytes
    assert one.activation_peak_bytes > full.activation_peak_bytes


def test_ablation_prefetch_budget(benchmark):
    def sweep():
        rows = []
        for budget_frac in (0.125, 0.25, 0.5, 1.0, 2.0):
            segments = build_segments(CONFIG, 16, parallelism=EVAL_PARALLELISM)
            budget = int(budget_frac * max(s.activation_bytes for s in segments))
            rows.append((budget_frac, _offload(prefetch_budget_bytes=budget)))
        return rows

    rows = benchmark(sweep)
    lines = [f"{'budget x layer':>14} {'peak':>8} {'stall':>8}"]
    for frac, r in rows:
        lines.append(
            f"{frac:>14} {r.activation_peak_bytes / 2**30:>6.2f}GB "
            f"{r.io_stall_time_s * 1e3:>6.1f}ms"
        )
    emit("Ablation — prefetch look-ahead budget sweep", lines)
    peaks = [r.activation_peak_bytes for _, r in rows]
    # Larger windows can only hold more resident.
    assert all(a <= b + 1024 for a, b in zip(peaks, peaks[1:]))


def test_ablation_keep_last_module(benchmark):
    def run():
        return (
            _offload(keep_last_segments=0),
            _offload(keep_last_segments=1),
            _offload(keep_last_segments=2),
        )

    none, head, head_plus_layer = benchmark(run)
    lines = [
        f"keep nothing:     stall={none.io_stall_time_s * 1e3:6.1f} ms  "
        f"offloaded={none.offloaded_bytes / 2**30:.1f}GB  peak={none.activation_peak_bytes / 2**30:.2f}GB",
        f"keep head:        stall={head.io_stall_time_s * 1e3:6.1f} ms  "
        f"offloaded={head.offloaded_bytes / 2**30:.1f}GB  peak={head.activation_peak_bytes / 2**30:.2f}GB",
        f"keep head+layer:  stall={head_plus_layer.io_stall_time_s * 1e3:6.1f} ms  "
        f"offloaded={head_plus_layer.offloaded_bytes / 2**30:.1f}GB  "
        f"peak={head_plus_layer.activation_peak_bytes / 2**30:.2f}GB",
    ]
    emit("Ablation — keep-last-module (Fig. 2 marker 4)", lines)
    # Keeping the tail trades offload volume for stall-freedom.
    assert head_plus_layer.io_stall_time_s <= head.io_stall_time_s <= none.io_stall_time_s
    assert none.offloaded_bytes > head.offloaded_bytes > head_plus_layer.offloaded_bytes


def test_ablation_gds_vs_bounce_buffer(benchmark):
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=4)

    def run():
        direct = DirectGDSPath(GPU_LINK_GEN4_X16, array)
        # Host memory bandwidth "shared across training management tasks and
        # offloaded computation ... quite limited and even unpredictable"
        # (Sec. I): model a busy host at 35% of the link.
        bounce = BounceBufferPath(GPU_LINK_GEN4_X16, array, host_contention=0.35)
        d = _offload(write_bw=direct.write_bandwidth(), read_bw=direct.read_bandwidth())
        b = _offload(write_bw=bounce.write_bandwidth(), read_bw=bounce.read_bandwidth())
        return direct, bounce, d, b

    direct, bounce, d, b = benchmark(run)
    lines = [
        f"direct GDS path:   {direct.write_bandwidth() / 1e9:5.1f} GB/s write  "
        f"peak={d.activation_peak_bytes / 2**30:.2f}GB  stall={d.io_stall_time_s * 1e3:.1f}ms  "
        f"forwarded={d.forwarded_bytes / 2**30:.1f}GB",
        f"CPU bounce buffer: {bounce.write_bandwidth() / 1e9:5.1f} GB/s write  "
        f"peak={b.activation_peak_bytes / 2**30:.2f}GB  stall={b.io_stall_time_s * 1e3:.1f}ms  "
        f"forwarded={b.forwarded_bytes / 2**30:.1f}GB",
    ]
    emit("Ablation — GDS direct path vs CPU bounce buffer (Sec. II-D)", lines)
    assert bounce.write_bandwidth() < direct.write_bandwidth()
    # The direct path fully overlaps; the contended bounce path cannot keep
    # up — it falls back to forwarding (losing memory savings) or stalls.
    assert d.io_stall_time_s == 0.0 and d.forwarded_bytes == 0
    assert b.forwarded_bytes > 0 or b.io_stall_time_s > 0


def test_ablation_cpu_pool_sweep(benchmark):
    """Tiered offload: pinned-pool capacity vs required SSD bandwidth."""

    def sweep():
        rows = []
        for pool_gib in (0, 1, 2, 4, 8, 16):
            rows.append(
                (pool_gib, _offload(cpu_pool_bytes=pool_gib * 2**30 or None))
            )
        return rows

    rows = benchmark(sweep)
    lines = [f"{'CPU pool':>8} {'to CPU':>8} {'to SSD':>8} {'stall':>8} {'SSD BW req':>11}"]
    for pool_gib, r in rows:
        lines.append(
            f"{pool_gib:>6}GB {r.offloaded_cpu_bytes / 2**30:>6.1f}GB "
            f"{r.offloaded_ssd_bytes / 2**30:>6.1f}GB "
            f"{r.io_stall_time_s * 1e3:>6.1f}ms "
            f"{r.required_ssd_write_bandwidth_gbps():>9.1f}GB/s"
        )
    emit("Ablation — pinned-CPU pool size sweep (tiered offload)", lines)
    # Every row moves the same total; a bigger pool absorbs more of it and
    # monotonically lowers the bandwidth the SSD array must sustain.
    totals = {r.offloaded_bytes for _, r in rows}
    assert len(totals) == 1
    ssd_bw = [r.required_ssd_write_bandwidth_gbps() for _, r in rows]
    assert all(a >= b for a, b in zip(ssd_bw, ssd_bw[1:]))
    assert rows[-1][1].offloaded_ssd_bytes == 0  # 16 GiB swallows this workload


def test_ablation_priority_io_scheduler(benchmark):
    """FIFO vs priority dequeue on one shared, single-SSD channel."""

    def run():
        rows = []
        for mode in ("duplex", "fifo", "priority"):
            rows.append(
                (
                    mode,
                    _offload(
                        write_bw=INTEL_OPTANE_P5800X_1600GB.write_bw,
                        read_bw=INTEL_OPTANE_P5800X_1600GB.read_bw,
                        io_mode=mode,
                    ),
                )
            )
        return rows

    rows = benchmark(run)
    lines = [f"{'io mode':>9} {'step':>9} {'blocking-load stall':>20}"]
    for mode, r in rows:
        lines.append(
            f"{mode:>9} {r.step_time_s * 1e3:>7.0f}ms "
            f"{r.io_stall_time_s * 1e3:>18.1f}ms"
        )
    emit("Ablation — FIFO vs priority I/O scheduling (shared SSD channel)", lines)
    by_mode = dict(rows)
    # FIFO inverts priorities (loads starve behind the store backlog);
    # priority dequeue recovers the idealised duplex overlap.
    assert by_mode["fifo"].io_stall_time_s > by_mode["priority"].io_stall_time_s
    assert by_mode["priority"].io_stall_time_s <= by_mode["duplex"].io_stall_time_s + 1e-9


def test_ablation_scheduler_cancellation_throughput(benchmark):
    """Functional hot path: submit/cancel/drain cycles on the scheduler
    (the queue-slot reclaim that data forwarding exercises every step)."""
    from repro.io import IORequest, IOScheduler, Priority

    def run():
        sched = IOScheduler(num_store_workers=2, num_load_workers=2)
        cancelled = 0
        for _ in range(20):
            requests = [
                sched.submit(
                    IORequest(
                        lambda: None,
                        kind="store",
                        priority=Priority.STORE,
                        nbytes=1024,
                        lane="ssd",
                    )
                )
                for _ in range(50)
            ]
            cancelled += sum(1 for r in requests if sched.cancel(r))
            sched.drain(5)
        sched.shutdown()
        return cancelled

    cancelled = benchmark(run)
    emit(
        "Ablation — scheduler submit/cancel/drain throughput",
        [f"cancelled {cancelled} of 1000 queued stores before execution"],
    )
    assert cancelled > 0


def test_ablation_chunk_coalescing(benchmark):
    """SSD write count: one file per tensor vs fixed-size chunk files."""
    from repro.core import SSDOffloader
    from repro.core.ids import TensorID

    rng = np.random.default_rng(0)
    # A quickstart-step-sized activation stream: many small tensors.
    tensors = [
        (TensorID(stamp=i, shape=(4, 64, 32)), rng.standard_normal((4, 64, 32)).astype(np.float32))
        for i in range(48)
    ]

    def run():
        with tempfile.TemporaryDirectory(prefix="abl-per-") as per_dir, \
                tempfile.TemporaryDirectory(prefix="abl-chunk-") as chunk_dir:
            per = SSDOffloader(per_dir)
            chunked = SSDOffloader(chunk_dir, chunk_bytes=2**20)
            for tid, data in tensors:
                per.store(tid, data)
                chunked.store(tid, data)
            counts = (per.file_store.write_count, chunked.file_store.write_count)
            per.shutdown()
            chunked.shutdown()
        return counts

    per_writes, chunk_writes = benchmark(run)
    lines = [
        f"per-tensor files: {per_writes} writes",
        f"1 MiB chunks:     {chunk_writes} writes "
        f"({per_writes / max(chunk_writes, 1):.0f}x fewer)",
    ]
    emit("Ablation — chunk coalescing (SSD write count)", lines)
    assert per_writes >= 4 * max(chunk_writes, 1)
