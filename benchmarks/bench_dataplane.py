"""Benchmarks for the zero-copy offload data plane (PR 5).

A/B of the pooled/streaming copy path against the legacy copy map
(``tobytes()`` + frame concat + whole-file slurps + per-store fresh
arrays) on every backend, plus the arena's lease/release hot path.  The
CI regression guard (``scripts/check_bench_regression.py``) watches the
``dataplane``/``buffers``-named benches; the pooled-vs-legacy speedup
itself is asserted deterministically in ``test_dataplane_store_speedup_ab``
so the benchmark cannot silently stop demonstrating the win.
"""

import time

import numpy as np

from repro.core.ids import TensorID
from repro.core.offloader import CPUOffloader, PinnedMemoryPool
from repro.io.buffers import BufferArena
from repro.io.chunkstore import ChunkedTensorStore
from repro.io.filestore import TensorFileStore

from benchmarks.conftest import emit

MiB = 1 << 20
#: Store-path working set: 16 x 1 MiB tensors per measured round.
N_TENSORS = 16
TENSOR = np.random.default_rng(7).random(MiB // 8)  # 1 MiB of float64
NAMES = [f"t{i}" for i in range(N_TENSORS)]
TIDS = [TensorID(stamp=i, shape=TENSOR.shape) for i in range(N_TENSORS)]


def _store_round(store):
    for name in NAMES:
        store.write(name, TENSOR)


def _load_round(store):
    for name in NAMES:
        store.read(name, TENSOR.shape, TENSOR.dtype)


def test_dataplane_filestore_store_pooled(benchmark, tmp_path):
    store = TensorFileStore(tmp_path)
    benchmark(_store_round, store)
    emit(
        "Data plane — filestore store path (pooled/streaming)",
        [f"copies: {store.copy_stats.snapshot().copies}",
         f"allocs avoided: {store.copy_stats.snapshot().allocs_avoided}"],
    )
    assert store.copy_stats.snapshot().allocs_avoided > 0


def test_dataplane_filestore_store_legacy(benchmark, tmp_path):
    store = TensorFileStore(tmp_path, legacy_copies=True)
    benchmark(_store_round, store)
    snap = store.copy_stats.snapshot()
    emit("Data plane — filestore store path (legacy copies)",
         [f"copies: {snap.copies}"])
    assert snap.allocs_avoided == 0


def test_dataplane_filestore_load_pooled(benchmark, tmp_path):
    store = TensorFileStore(tmp_path)
    _store_round(store)
    benchmark(_load_round, store)
    assert store.copy_stats.snapshot().allocs_avoided > 0


def test_dataplane_chunkstore_store_pooled(benchmark, tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=4 * MiB)
    benchmark(_store_round, store)
    assert store.copy_stats.snapshot().allocs_avoided > 0


def test_dataplane_chunkstore_store_legacy(benchmark, tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=4 * MiB, legacy_copies=True)
    benchmark(_store_round, store)
    assert store.copy_stats.snapshot().allocs_avoided == 0


def test_dataplane_cpu_store_pooled(benchmark):
    """CPU-tier stores copy into leased arena buffers.

    The win here is structural, not a microbench ratio: both paths are
    one memcpy, and in a tight same-size loop the OS allocator caches
    the freed block just like the arena does — so the gated invariant is
    the alloc avoidance (no per-store allocation / first-touch page
    faults, memory bounded by the retention cap), which is what shows up
    under real allocator pressure."""
    offloader = CPUOffloader(PinnedMemoryPool())

    def round_():
        for tid in TIDS:
            offloader.store(tid, TENSOR)

    benchmark(round_)
    stats = offloader.arena.stats()
    emit(
        "Data plane — CPU-pool store path (arena-backed)",
        [f"arena hit rate: {stats.hit_rate:.0%}",
         f"allocs avoided: {stats.allocs_avoided}"],
    )
    # Steady state: every overwrite reuses the evicted buffer's class.
    assert stats.allocs_avoided > 0
    offloader.shutdown()


def test_dataplane_buffers_arena_lease_hot_path(benchmark):
    """Lease/release cycle cost — runs on every pooled CPU store, so it
    must stay in the microseconds."""
    arena = BufferArena()

    def round_():
        for _ in range(64):
            lease = arena.lease(MiB)
            lease.release()

    benchmark(round_)
    stats = arena.stats()
    assert stats.leaked == 0
    assert stats.hit_rate > 0.9


def test_dataplane_store_speedup_ab(benchmark, tmp_path):
    """The headline A/B: the streaming writer's store path vs the legacy
    copy map on the same machine and backend (>= 2x measured where this
    PR was recorded; 2.0-3.7x across local runs).

    Measured inline (not via the benchmark fixture) so both sides run
    back-to-back under identical cache/page conditions; the fixture
    times the pooled side only, keeping the guard on the fast path.
    The wall-clock ratio is *reported*, not asserted — this bench is
    bound by real disk writes, and the repo's guard policy (see
    ``scripts/check_bench_regression.py``) excludes such latencies from
    hard gates; the deterministic invariant (the pooled path performs
    fewer copies and skips real allocations) is what fails the suite.
    """

    big = np.random.default_rng(11).random(4 * MiB // 8)  # 4 MiB of float64

    def rate(store, rounds=7):
        # min-of-rounds: the least noise-sensitive estimator for a
        # wall-clock ratio on shared CI runners (same choice as the
        # regression guard's default --stat min).
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for name in NAMES[:8]:
                store.write(name, big)
            best = min(best, time.perf_counter() - start)
        return 8 * big.nbytes / best

    legacy_store = TensorFileStore(tmp_path / "legacy", legacy_copies=True)
    pooled_store = TensorFileStore(tmp_path / "pooled")
    legacy = rate(legacy_store)
    pooled = rate(pooled_store)
    ratio = pooled / legacy
    emit(
        "Data plane — store-path A/B (filestore)",
        [f"legacy: {legacy / 1e6:.0f} MB/s",
         f"pooled: {pooled / 1e6:.0f} MB/s",
         f"speedup: {ratio:.2f}x (reported, not gated; local target >= 2x)"],
    )
    # The deterministic invariant IS gated: same traffic, strictly fewer
    # Python-level copies, and real allocations skipped.
    legacy_snap = legacy_store.copy_stats.snapshot()
    pooled_snap = pooled_store.copy_stats.snapshot()
    assert legacy_store.bytes_written == pooled_store.bytes_written
    assert pooled_snap.copies < legacy_snap.copies
    assert pooled_snap.allocs_avoided > 0 and legacy_snap.allocs_avoided == 0
    benchmark(_store_round, TensorFileStore(tmp_path / "bench"))
