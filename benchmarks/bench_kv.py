"""Benchmarks for the KV-cache paging front-end (PR 7).

Wall-clock benches cover the pool's CPU-bound hot paths (block-table
append/fetch over an in-memory engine, strategy placement) — the CI
regression guard watches the ``kv``-named entries.  The serving win
itself (paged concurrency and TTFT vs the HBM-only baseline) is
asserted deterministically in ``test_kv_paged_vs_hbm_only_ttft_ab`` on
the virtual-clock server sim, so the benchmark cannot silently stop
demonstrating it; the sim's durations are byte-count-derived and
therefore exact, never wall-clock.
"""

import numpy as np

from repro.core import EngineConfig, build_engine
from repro.serve import (
    KVBlockPool,
    KVServerSim,
    LookAheadBatch,
    RequestTrace,
    ServerConfig,
    SplitToken,
    TraceConfig,
)

from benchmarks.conftest import emit

BLOCK_TOKENS = 16
BLOCK_BYTES = BLOCK_TOKENS * 64
NUM_BLOCKS = 64


def _payloads():
    rng = np.random.default_rng(7)
    return [
        rng.integers(0, 256, size=BLOCK_BYTES, dtype=np.uint8)
        for _ in range(NUM_BLOCKS)
    ]


def test_kv_pool_append_fetch_hot_path(benchmark):
    """Block-table append + fetch over an in-memory (cpu-target) engine:
    the per-decode-step cost a serving loop pays, no disk in the path."""
    engine = build_engine(EngineConfig(target="cpu"))
    payloads = _payloads()
    counter = [0]

    def cycle():
        run = counter[0]
        counter[0] += 1
        pool = KVBlockPool(
            engine,
            block_tokens=BLOCK_TOKENS,
            num_layers=2,
            hbm_capacity_bytes=(NUM_BLOCKS // 2) * BLOCK_BYTES,
            strategy=SplitToken(hbm_recent_blocks=4, cpu_window_blocks=8),
            sync_mode=True,
        )
        rid = f"req{run}"
        pool.begin_request(rid, context_tokens=(NUM_BLOCKS // 2) * BLOCK_TOKENS)
        for i in range(NUM_BLOCKS // 2):
            for layer in range(2):
                pool.append_block(rid, layer, payloads[2 * i + layer])
        for i in range(NUM_BLOCKS // 2):
            for layer in range(2):
                pool.fetch(rid, layer, i)
        stats = pool.stats
        pool.release_request(rid)
        return stats

    try:
        stats = benchmark(cycle)
        emit(
            "KV pool — append/fetch hot path (in-memory engine)",
            [
                f"blocks written per cycle: {stats.blocks_written}",
                f"hbm hits: {stats.hbm_hits}  demand fetches: {stats.demand_fetches}",
            ],
        )
        assert stats.blocks_written == NUM_BLOCKS
    finally:
        engine.shutdown()


def test_kv_prefetch_planning_hot_path(benchmark):
    """The look-ahead planning + sync prefetch migration cycle — what
    the serving loop pays between decode rounds."""
    engine = build_engine(EngineConfig(target="cpu"))
    payloads = _payloads()
    pool = KVBlockPool(
        engine,
        block_tokens=BLOCK_TOKENS,
        num_layers=2,
        hbm_capacity_bytes=NUM_BLOCKS * BLOCK_BYTES,
        strategy=LookAheadBatch(
            base=SplitToken(hbm_recent_blocks=1, cpu_window_blocks=64), depth=4
        ),
        sync_mode=True,
    )
    counter = [0]

    def cycle():
        run = counter[0]
        counter[0] += 1
        rid = f"req{run}"
        pool.begin_request(rid, context_tokens=(NUM_BLOCKS // 2) * BLOCK_TOKENS)
        for i in range(NUM_BLOCKS // 2):
            pool.append_block(rid, 0, payloads[i])
        issued = pool.prefetch([rid])
        pool.release_request(rid)
        return issued

    try:
        issued = benchmark(cycle)
        emit(
            "KV pool — look-ahead prefetch planning + migration",
            [f"blocks prefetched per cycle: {issued}"],
        )
        assert issued > 0
    finally:
        engine.shutdown()


def test_kv_paged_vs_hbm_only_ttft_ab():
    """Deterministic A/B: paging must keep its concurrency and tail-TTFT
    win over the HBM-only baseline regardless of how wall-clock moves."""
    trace = RequestTrace.generate(TraceConfig(num_requests=16, seed=1234))
    paged = KVServerSim(trace, ServerConfig(paged=True)).run()
    base = KVServerSim(trace, ServerConfig(paged=False)).run()
    emit(
        "KV serving — paged vs HBM-only (virtual clock)",
        [
            f"paged:    peak {paged.peak_concurrency}  "
            f"p50 {paged.ttft_p50:.4f}s  p99 {paged.ttft_p99:.4f}s  "
            f"hit rate {paged.prefetch_hit_rate:.3f}",
            f"hbm-only: peak {base.peak_concurrency}  "
            f"p50 {base.ttft_p50:.4f}s  p99 {base.ttft_p99:.4f}s  "
            f"rejected {base.rejected}",
        ],
    )
    assert paged.peak_concurrency > base.peak_concurrency
    assert paged.bit_exact_ok
    assert paged.prefetch_hit_rate > 0
    assert paged.ttft_p99 < base.ttft_p99
