"""Table III: per-GPU offloaded tensor amount vs the model estimate, plus
the required PCIe write bandwidth, for BERT at the three (H, L) points
(batch 16, TP=2).

Shape targets: simulated offload within ~15% of the analytic estimate
(paper: within ~7%), and the required bandwidth decreasing as the hidden
dimension grows (paper: 18.0 -> 13.8 -> 8.76 GB/s).

Keep-last is narrowed to the loss head here (``keep_last_segments=1``) to
measure the maximal offload, matching the paper's Table III where the
measured amount covers all transformer-layer activations.
"""

from repro.analysis.perf_model import model_param_count, model_step_perf, weight_update_time
from repro.models.config import ModelConfig
from repro.sim import StepSimulator, build_segments
from repro.train.trainer import PlacementStrategy

from benchmarks.conftest import (
    EVAL_GRID,
    EVAL_PARALLELISM,
    SSD_READ_BW,
    SSD_WRITE_BW,
    emit,
)

PAPER = {8192: (10.37, 11.13, 18.0), 12288: (12.85, 12.60, 13.8), 16384: (10.75, 11.50, 8.76)}


def _run():
    rows = []
    for hidden, layers in EVAL_GRID:
        config = ModelConfig(arch="bert", hidden=hidden, num_layers=layers, seq_len=1024)
        segments = build_segments(config, 16, parallelism=EVAL_PARALLELISM)
        update = weight_update_time(
            EVAL_PARALLELISM.params_per_gpu(model_param_count(config))
        )
        sim = StepSimulator(
            segments,
            PlacementStrategy.OFFLOAD,
            write_bandwidth=SSD_WRITE_BW,
            read_bandwidth=SSD_READ_BW,
            keep_last_segments=1,
        )
        result = sim.run(weight_update_s=update)
        estimate = model_step_perf(
            config, 16, parallelism=EVAL_PARALLELISM
        ).activation_bytes_per_microbatch
        rows.append((hidden, layers, result, estimate))
    return rows


def test_table3_offload_amount(benchmark):
    rows = benchmark(_run)
    lines = [
        f"{'H':>6} {'L':>2} | {'offloaded':>10} {'estimate':>9} {'PCIe write BW':>14} "
        f"| paper: offloaded / estimate / BW"
    ]
    for hidden, layers, result, estimate in rows:
        p_off, p_est, p_bw = PAPER[hidden]
        lines.append(
            f"{hidden:>6} {layers:>2} | {result.offloaded_bytes / 1e9:>8.2f}GB "
            f"{estimate / 1e9:>7.2f}GB {result.required_write_bandwidth_gbps():>11.2f}GB/s "
            f"| {p_off:.2f} / {p_est:.2f} / {p_bw:.2f}"
        )
    emit("Table III — offloaded amount, model estimate, write bandwidth", lines)

    bws = []
    for hidden, layers, result, estimate in rows:
        # Estimate tracks the simulated offload (paper: "the figures are
        # close"); the estimate includes the kept logits, hence the margin.
        assert abs(result.offloaded_bytes - estimate) / estimate < 0.20
        bws.append(result.required_write_bandwidth_gbps())
    assert all(a > b for a, b in zip(bws, bws[1:]))  # decreasing with H
    assert bws[0] < 20.0 and bws[-1] > 6.0
