"""Shared constants, helpers and opt-in collection for the benchmarks.

Every file in this directory regenerates one table or figure of the paper
(see the README's benchmark index).  The ``bench_*.py`` names keep these
out of the default test collection — the tier-1 run (``pytest`` from the
repo root) must stay fast — but collection is **opt-in by target**: when
the pytest invocation points at this directory (or anything inside it),
a :func:`pytest_collect_file` hook collects the ``bench_*.py`` files, so
both forms work unmodified::

    pytest benchmarks -q                        # whole suite (CI bench-smoke)
    pytest benchmarks/bench_ablations.py -q     # one file (explicit path)

Every collected benchmark also carries the ``bench`` marker, so
``pytest benchmarks -m bench`` / ``-m "not bench"`` slicing works.
Add ``--benchmark-only -s`` to see the regenerated rows/series next to
the timing output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB
from repro.train.parallel import ParallelismConfig

_BENCH_DIR = Path(__file__).parent.resolve()


def _benchmarks_targeted(config) -> bool:
    """True when a command-line argument points into this directory."""
    for arg in config.args:
        # Strip any ``::nodeid`` suffix before resolving the path part.
        path = Path(str(arg).split("::", 1)[0])
        if not path.is_absolute():
            path = Path(config.invocation_params.dir) / path
        try:
            resolved = path.resolve()
        except OSError:  # pragma: no cover - unresolvable args are not ours
            continue
        if resolved == _BENCH_DIR or _BENCH_DIR in resolved.parents:
            return True
    return False


def pytest_collect_file(file_path, parent):
    if file_path.suffix != ".py" or not file_path.name.startswith("bench_"):
        return None
    if parent.session.isinitpath(file_path):
        return None  # explicit file argument: pytest collects it natively
    if not _benchmarks_targeted(parent.config):
        return None  # tier-1 run from the repo root: stay out of the way
    return pytest.Module.from_parent(parent, path=file_path)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: paper-figure benchmark (collected only when benchmarks/ "
        "is targeted; see benchmarks/conftest.py)",
    )


def pytest_collection_modifyitems(items):
    for item in items:
        try:
            in_bench_dir = _BENCH_DIR in Path(str(item.fspath)).resolve().parents
        except OSError:  # pragma: no cover
            continue
        if in_bench_dir:
            item.add_marker(pytest.mark.bench)


#: Table II: each A100 gets a dedicated RAID0 array; we model the 4-SSD one.
SSD_WRITE_BW = 4 * INTEL_OPTANE_P5800X_1600GB.write_bw
SSD_READ_BW = 4 * INTEL_OPTANE_P5800X_1600GB.read_bw

#: The evaluation uses the two GPUs for tensor parallelism (Sec. IV-A).
EVAL_PARALLELISM = ParallelismConfig(tp=2)

#: Fig. 6 / Table III grid.
EVAL_GRID = [(8192, 4), (12288, 3), (16384, 2)]


def emit(title: str, lines) -> None:
    """Print a regenerated table under a banner (visible with -s)."""
    print()
    print(f"== {title} ==")
    for line in lines:
        print(f"   {line}")
