"""Shared constants and helpers for the paper-figure benchmarks.

Every file in this directory regenerates one table or figure of the paper
(see the README's benchmark index).  The ``bench_*.py`` names keep these
out of the default pytest collection, so point pytest at the files::

    pytest benchmarks/bench_*.py --benchmark-only -s

``-s`` shows the regenerated rows/series next to the timing output.
"""

from __future__ import annotations

import pytest

from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB
from repro.train.parallel import ParallelismConfig

#: Table II: each A100 gets a dedicated RAID0 array; we model the 4-SSD one.
SSD_WRITE_BW = 4 * INTEL_OPTANE_P5800X_1600GB.write_bw
SSD_READ_BW = 4 * INTEL_OPTANE_P5800X_1600GB.read_bw

#: The evaluation uses the two GPUs for tensor parallelism (Sec. IV-A).
EVAL_PARALLELISM = ParallelismConfig(tp=2)

#: Fig. 6 / Table III grid.
EVAL_GRID = [(8192, 4), (12288, 3), (16384, 2)]


def emit(title: str, lines) -> None:
    """Print a regenerated table under a banner (visible with -s)."""
    print()
    print(f"== {title} ==")
    for line in lines:
        print(f"   {line}")
