"""Fig. 1: GPU FP16 throughput tracks LLM sizes; memory capacity lags.

Regenerates the three trend series and their fitted annual growth rates,
and checks the headline ratio (memory grows at a fraction of compute).
"""

from repro.analysis.scaling import (
    activation_growth_exponent,
    fig1_series,
    memory_to_compute_growth_ratio,
)

from benchmarks.conftest import emit


def test_fig1_trend_series(benchmark):
    series = benchmark(fig1_series)
    lines = []
    for key, entry in series.items():
        lines.append(f"{key:<11} growth {100 * entry['growth_per_year']:6.1f} %/yr  "
                     f"({len(entry['points'])} releases)")
        for p in entry["points"]:
            lines.append(f"    {p.year:7.1f}  {p.name:<14} {p.value:.3e}")
    ratio = memory_to_compute_growth_ratio()
    lines.append(f"memory/compute growth ratio: {ratio:.2f}  (paper: ~0.41)")
    lines.append(
        f"activation growth exponent S_act ~ C^{activation_growth_exponent():.3f}"
        "  (paper: 5/6)"
    )
    emit("Fig. 1 — scaling trends", lines)
    assert series["gpu_flops"]["growth_per_year"] > series["gpu_memory"]["growth_per_year"]
    assert 0.25 < ratio < 0.55
