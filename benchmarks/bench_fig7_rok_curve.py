"""Fig. 7: the recompute-offload-keep (ROK) curve for 3-layer BERT at
hidden 12288 and 14336, batch sizes {4, 8, 16}.

Shape targets: per batch size, offload < recompute < keep in activation
peak; offload == keep in model throughput; recompute loses throughput; and
larger batches climb the throughput axis (SSDTrain "allowing a larger
batch size to attain higher throughput").
"""

import pytest

from repro.models.config import ModelConfig
from repro.sim import simulate_strategy
from repro.train.trainer import PlacementStrategy

from benchmarks.conftest import EVAL_PARALLELISM, SSD_READ_BW, SSD_WRITE_BW, emit


def _rok_points(hidden):
    config = ModelConfig(arch="bert", hidden=hidden, num_layers=3, seq_len=1024)
    points = []
    for batch in (4, 8, 16):
        for strategy in PlacementStrategy:
            r = simulate_strategy(
                config, batch, strategy, SSD_WRITE_BW, SSD_READ_BW,
                parallelism=EVAL_PARALLELISM,
            )
            points.append((batch, strategy, r))
    return points


@pytest.mark.parametrize("hidden", [12288, 14336])
def test_fig7_rok_curve(benchmark, hidden):
    points = benchmark(_rok_points, hidden)
    lines = [f"{'B':>3} {'strategy':<10} {'act peak':>9} {'throughput':>12}"]
    for batch, strategy, r in points:
        lines.append(
            f"{batch:>3} {strategy.value:<10} {r.activation_peak_bytes / 2**30:>7.2f}GB "
            f"{r.model_throughput_tflops():>9.1f} TF/s"
        )
    emit(f"Fig. 7 — ROK curve, BERT H{hidden} L3", lines)

    by_batch = {}
    for batch, strategy, r in points:
        by_batch.setdefault(batch, {})[strategy] = r
    for batch, row in by_batch.items():
        keep = row[PlacementStrategy.KEEP]
        off = row[PlacementStrategy.OFFLOAD]
        rec = row[PlacementStrategy.RECOMPUTE]
        assert off.activation_peak_bytes < rec.activation_peak_bytes < keep.activation_peak_bytes
        assert off.model_throughput_tflops() == pytest.approx(
            keep.model_throughput_tflops(), rel=0.01
        )
        assert rec.model_throughput_tflops() < keep.model_throughput_tflops()
    # Larger batches attain higher throughput along the offload frontier.
    tputs = [
        by_batch[b][PlacementStrategy.OFFLOAD].model_throughput_tflops()
        for b in (4, 8, 16)
    ]
    assert tputs == sorted(tputs)
