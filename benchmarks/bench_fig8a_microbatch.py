"""Fig. 8(a): breakdown of the throughput boost from larger micro-batches
(3-layer BERT, H=12288, vs batch size 1).

Shape targets: improvement grows with batch size and "primarily comes from
time saving by weights update" — the update-amortization share exceeds the
GEMM-efficiency share at every batch size.
"""

from repro.analysis.microbatch import microbatch_breakdown
from repro.models.config import ModelConfig

from benchmarks.conftest import EVAL_PARALLELISM, emit

CONFIG = ModelConfig(arch="bert", hidden=12288, num_layers=3, seq_len=1024)


def test_fig8a_microbatch_breakdown(benchmark):
    rows = benchmark(
        microbatch_breakdown, CONFIG, (2, 4, 8, 16), parallelism=EVAL_PARALLELISM
    )
    lines = [f"{'B':>3} {'total':>8} {'weights update':>15} {'compute eff':>12}"]
    for r in rows:
        lines.append(
            f"{r.batch_size:>3} {r.total_improvement:>7.1%} "
            f"{r.update_saving_improvement:>14.1%} {r.efficiency_improvement:>11.1%}"
        )
    emit("Fig. 8(a) — throughput improvement over B=1, decomposed", lines)

    improvements = [r.total_improvement for r in rows]
    assert improvements == sorted(improvements)
    for r in rows:
        assert r.update_saving_improvement > r.efficiency_improvement
        assert r.total_improvement > 0
