"""Fig. 2: SSDTrain timeline of a 2-micro-batch, 3-layer model step.

Regenerates the schedule sketch: offloading starts as each layer's forward
finishes, prefetching runs in reverse layer order during backward, and the
last module's activations are kept (its backward follows immediately).
"""

from repro.models.config import ModelConfig
from repro.sim import StepSimulator, build_segments
from repro.train.trainer import PlacementStrategy

from benchmarks.conftest import EVAL_PARALLELISM, SSD_READ_BW, SSD_WRITE_BW, emit


def _run():
    config = ModelConfig(arch="bert", hidden=12288, num_layers=3, seq_len=1024)
    segments = build_segments(config, 16, parallelism=EVAL_PARALLELISM)
    sim = StepSimulator(
        segments,
        PlacementStrategy.OFFLOAD,
        write_bandwidth=SSD_WRITE_BW,
        read_bandwidth=SSD_READ_BW,
        num_microbatches=2,
        keep_last_segments=2,  # the Fig. 2 sketch keeps L3 as well
    )
    return sim.run(weight_update_s=0.02)


def test_fig2_timeline(benchmark):
    result = benchmark(_run)
    lines = result.timeline.render_ascii(width=96, lanes=["gpu", "store", "load"]).splitlines()
    lines.append(
        f"step={result.step_time_s * 1e3:.0f} ms, stall={result.io_stall_time_s * 1e3:.1f} ms, "
        f"offloaded={result.offloaded_bytes / 2**30:.1f} GiB over 2 micro-batches"
    )
    emit("Fig. 2 — step timeline (F/B on gpu lane, s/l on I/O lanes)", lines)
    # The sketch's invariants: I/O lanes are busy, the GPU never stalls.
    assert result.timeline.lane_busy_time("store") > 0
    assert result.timeline.lane_busy_time("load") > 0
    assert result.io_stall_time_s < 0.01 * result.step_time_s
