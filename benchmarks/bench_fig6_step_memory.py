"""Fig. 6: step time (a) and activation memory peak (b) — SSDTrain vs no
offloading, for BERT/T5/GPT at (H, L) in {(8192,4), (12288,3), (16384,2)},
batch size 16, sequence length 1024, TP=2.

Shape targets: step-time overhead < 1% in every configuration (the paper's
"negligible overhead"), and activation-peak reductions in the paper's
28-47% band (we land 17-51% across the grid, with the same qualitative
pattern: deeper/narrower models save more than shallow/wide ones).
"""

from repro.models.config import ModelConfig
from repro.sim import simulate_strategy
from repro.train.trainer import PlacementStrategy

from benchmarks.conftest import (
    EVAL_GRID,
    EVAL_PARALLELISM,
    SSD_READ_BW,
    SSD_WRITE_BW,
    emit,
)

PAPER_REDUCTIONS = {
    ("bert", 8192): 40, ("bert", 12288): 47, ("bert", 16384): 34,
    ("t5", 8192): 28, ("t5", 12288): 35, ("t5", 16384): 28,
    ("gpt", 8192): 34, ("gpt", 12288): 31, ("gpt", 16384): 32,
}


def _run_grid():
    rows = []
    for arch in ("bert", "t5", "gpt"):
        for hidden, layers in EVAL_GRID:
            config = ModelConfig(arch=arch, hidden=hidden, num_layers=layers, seq_len=1024)
            keep = simulate_strategy(
                config, 16, PlacementStrategy.KEEP, SSD_WRITE_BW, SSD_READ_BW,
                parallelism=EVAL_PARALLELISM,
            )
            off = simulate_strategy(
                config, 16, PlacementStrategy.OFFLOAD, SSD_WRITE_BW, SSD_READ_BW,
                parallelism=EVAL_PARALLELISM,
            )
            rows.append((arch, hidden, layers, keep, off))
    return rows


def test_fig6_step_time_and_memory(benchmark):
    rows = benchmark(_run_grid)
    lines = [
        f"{'model':<5} {'H':>6} {'L':>2} | {'step keep':>10} {'step SSDTrain':>13} "
        f"{'overhead':>9} | {'peak keep':>10} {'peak SSDTrain':>13} {'reduction':>9} {'paper':>6}"
    ]
    for arch, hidden, layers, keep, off in rows:
        overhead = off.step_time_s / keep.step_time_s - 1
        reduction = 1 - off.activation_peak_bytes / keep.activation_peak_bytes
        lines.append(
            f"{arch:<5} {hidden:>6} {layers:>2} | {keep.step_time_s * 1e3:>8.0f}ms "
            f"{off.step_time_s * 1e3:>11.0f}ms {overhead:>8.2%} | "
            f"{keep.activation_peak_bytes / 2**30:>8.2f}GB "
            f"{off.activation_peak_bytes / 2**30:>11.2f}GB {reduction:>8.0%} "
            f"{PAPER_REDUCTIONS[(arch, hidden)]:>5}%"
        )
    emit("Fig. 6 — SSDTrain vs no offloading (B=16, seq=1024, TP=2)", lines)

    for arch, hidden, layers, keep, off in rows:
        overhead = off.step_time_s / keep.step_time_s - 1
        reduction = 1 - off.activation_peak_bytes / keep.activation_peak_bytes
        assert overhead < 0.01, f"{arch} H{hidden}"     # Fig. 6(a)
        assert reduction > 0.15, f"{arch} H{hidden}"    # Fig. 6(b)
    best = max(
        1 - off.activation_peak_bytes / keep.activation_peak_bytes
        for _, _, _, keep, off in rows
    )
    assert best > 0.40  # "reduces 47% of the activation peak memory usage"
