"""Benchmarks for service mode's durable index (PR 9).

Wall-clock benches for the two costs the long-running service pays that
a single-run engine never does — **manifest replay** on every restart
and **chunk compaction** on the endurance path — plus a deterministic
GC-reclaim assertion so the compactor cannot silently stop reclaiming.
The CI regression guard (``scripts/check_bench_regression.py``) watches
the ``service``/``manifest``-named benches.
"""

import numpy as np

from repro.io.chunkstore import ChunkedTensorStore
from repro.io.manifest import read_journal

from benchmarks.conftest import emit

KiB = 1 << 10
CHUNK_BYTES = 16 * KiB
TENSOR_ELEMS = 1024  # 4 KiB float32 => 4 tensors per chunk
TENSOR = np.random.default_rng(9).standard_normal(TENSOR_ELEMS).astype(np.float32)


def _populate(root, num_tensors, release_every=None):
    """A durable store with ``num_tensors`` flushed tensors; optionally
    deletes every ``release_every``-th one so chunks carry dead bytes."""
    store = ChunkedTensorStore(root, chunk_bytes=CHUNK_BYTES, durable=True)
    for i in range(num_tensors):
        store.write(f"t{i}_{TENSOR_ELEMS}", TENSOR)
        if (i + 1) % 4 == 0:
            store.flush()
    store.flush()
    if release_every:
        for i in range(0, num_tensors, release_every):
            store.delete(f"t{i}_{TENSOR_ELEMS}")
    store.close()
    return store


def _replay(root):
    reopened = ChunkedTensorStore(root, chunk_bytes=CHUNK_BYTES, durable=True)
    try:
        assert reopened.manifest_records_replayed > 0
        assert not reopened.replay_was_torn
        return reopened.manifest_records_replayed
    finally:
        reopened.close()


def test_manifest_replay_small_store(benchmark, tmp_path):
    """Cold-open replay cost at a small store (restart latency floor)."""
    _populate(tmp_path, num_tensors=32)
    records = benchmark(_replay, tmp_path)
    emit(
        "service — manifest replay (small store)",
        [f"32 tensors, {records} journal records replayed per cold open"],
    )


def test_manifest_replay_large_store(benchmark, tmp_path):
    """Replay cost with 16x the records — the curve restart latency
    follows as a service accumulates flush/delete history."""
    _populate(tmp_path, num_tensors=512, release_every=2)
    records = benchmark(_replay, tmp_path)
    emit(
        "service — manifest replay (large store)",
        [f"512 tensors + deletes, {records} journal records replayed per cold open"],
    )


def test_service_compaction_throughput(benchmark, tmp_path):
    """Throughput of one full compaction pass over half-dead chunks.

    Compaction is destructive, so each measured round gets a freshly
    populated store via ``benchmark.pedantic`` setup.
    """
    counter = [0]

    def setup():
        root = tmp_path / f"round{counter[0]}"
        counter[0] += 1
        _populate(root, num_tensors=64, release_every=2)
        return (ChunkedTensorStore(root, chunk_bytes=CHUNK_BYTES, durable=True),), {}

    def compact_all(store):
        reclaimed = store.compact(max_dead_ratio=0.5)
        store.close()
        assert reclaimed > 0
        return reclaimed

    reclaimed = benchmark.pedantic(compact_all, setup=setup, rounds=5)
    emit(
        "service — compaction throughput",
        [f"{reclaimed} dead bytes reclaimed per pass over 16 half-dead chunks"],
    )


def test_service_gc_reclaim_books_deterministic(tmp_path):
    """Compaction reclaims exactly the dead bytes it found, the books
    balance, and a cold replay reproduces them — deterministically, so
    the bench file keeps asserting the endurance win, not just timing it.
    """
    num_tensors = 64
    _populate(tmp_path, num_tensors=num_tensors, release_every=2)

    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK_BYTES, durable=True)
    dead_before = store.dead_bytes
    assert dead_before == (num_tensors // 2) * TENSOR.nbytes

    reclaimed = store.compact(max_dead_ratio=0.5)
    assert reclaimed == dead_before  # every half-dead chunk crossed the threshold
    assert store.gc_runs == num_tensors * TENSOR.nbytes // CHUNK_BYTES
    assert store.gc_reclaimed_dead_bytes == dead_before
    assert store.dead_bytes == 0
    # Live tensors moved, not lost: every odd tensor reads back bit-exact.
    for i in range(1, num_tensors, 2):
        assert np.array_equal(
            store.read(f"t{i}_{TENSOR_ELEMS}", (TENSOR_ELEMS,), np.float32), TENSOR
        )
    books = (
        store.bytes_written,
        store.reclaimed_bytes,
        store.gc_runs,
        store.gc_bytes_rewritten,
        store.gc_reclaimed_dead_bytes,
    )
    store.close()

    records, torn = read_journal(store.manifest_path)
    assert not torn and any(r["op"] == "compact" for r in records)

    replayed = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK_BYTES, durable=True)
    assert (
        replayed.bytes_written,
        replayed.reclaimed_bytes,
        replayed.gc_runs,
        replayed.gc_bytes_rewritten,
        replayed.gc_reclaimed_dead_bytes,
    ) == books
    replayed.close()

    emit(
        "service — GC reclaim (deterministic)",
        [
            f"{store.gc_runs} chunks compacted, {dead_before} dead bytes "
            f"reclaimed, books replay exactly"
        ],
    )
