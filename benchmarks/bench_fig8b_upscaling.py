"""Fig. 8(b): impact of upscaling on the required per-GPU SSD write
bandwidth (H=12288; PP x TP growing from the 2-GPU testbed, with sequence
parallelism sharding activations across the TP group).

Shape target: "In all projected cases, the write bandwidth per GPU is
smaller than the original 2-GPU case" (the orange dashed line), and deeper
pipelines need less bandwidth.
"""

from repro.analysis.microbatch import upscaling_write_bandwidth

from benchmarks.conftest import emit


def test_fig8b_upscaling_bandwidth(benchmark):
    reference, points = benchmark(upscaling_write_bandwidth)
    lines = [f"reference (2-GPU, TP2 PP1 L3): {reference:.1f} GB/s  <- orange dashed line"]
    for p in points:
        marker = "OK (below reference)" if p.write_bandwidth_gbps < reference else "ABOVE"
        lines.append(f"{p.label:<14} {p.write_bandwidth_gbps:>6.1f} GB/s   {marker}")
    emit("Fig. 8(b) — per-GPU write bandwidth under upscaling", lines)

    for p in points:
        assert p.write_bandwidth_gbps < reference, p.label
    tp8 = sorted((p for p in points if p.tp == 8), key=lambda p: p.pp)
    bws = [p.write_bandwidth_gbps for p in tp8]
    assert all(a >= b for a, b in zip(bws, bws[1:]))
