"""Benchmarks for the online adaptive offload controller (extension).

Two surfaces:

- the **controller hot path** — ``AutotuneController.observe`` runs once
  per training step inside the training loop, so its cost must stay in
  the microseconds; the CI regression guard watches this one
  (``scripts/check_bench_regression.py`` guards ``autotune``-named
  benches);
- the **drift A/B** — the end-to-end value claim: under a 2x mid-run
  write-bandwidth drop the adaptive run's backward stall collapses
  versus the static one-shot budget, asserted here so the benchmark
  cannot silently stop demonstrating the mechanism.
"""

from repro.core.adaptive import WorkloadProfile, choose_offload_budget
from repro.core.autotune import AutotuneController, StepObservation
from repro.core.policy import OffloadPolicy, PolicyConfig
from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB
from repro.models.config import ModelConfig
from repro.sim import DriftScenario, StepSimulator, build_segments, simulate_adaptive_run
from repro.train.trainer import PlacementStrategy

from benchmarks.conftest import EVAL_PARALLELISM, emit

CONFIG = ModelConfig(arch="bert", hidden=12288, num_layers=3, seq_len=1024)
WRITE = INTEL_OPTANE_P5800X_1600GB.write_bw
READ = INTEL_OPTANE_P5800X_1600GB.read_bw
GB = 1024**3


def test_autotune_controller_hot_path(benchmark):
    """Per-step cost of the feedback loop: fold an observation into the
    EWMA bank, re-run the budget formula, size window + watermark."""

    def run():
        controller = AutotuneController()
        for step in range(512):
            bw = WRITE if step < 256 else 0.5 * WRITE
            controller.observe(
                StepObservation(
                    forward_time_s=0.6,
                    backward_time_s=1.2,
                    activation_bytes=8 * GB,
                    write_bytes=int(bw * 0.5),
                    write_busy_s=0.5,
                    read_bytes=int(READ * 0.5),
                    read_busy_s=0.5,
                    read_count=64,
                    stored_tensors=64,
                    stored_bytes=int(bw * 0.5),
                    cpu_stored_bytes=GB,
                    cpu_pool_capacity_bytes=4 * GB,
                )
            )
        return controller

    controller = benchmark(run)
    emit(
        "Autotune — controller hot path (512 observe/retune cycles)",
        [
            f"decisions: {len(controller.history)}",
            f"final budget: {controller.installed_budget_bytes / GB:.2f} GiB",
            f"retunes: {sum(1 for d in controller.history if d.retuned)}",
        ],
    )
    assert len(controller.history) == 512
    # The halved bandwidth was tracked into the installed budget.
    oracle = choose_offload_budget(
        WorkloadProfile(8 * GB, 0.6, 1.2), 0.5 * WRITE, READ,
        safety_factor=controller.config.safety_factor,
    )
    assert controller.installed_budget_bytes <= 1.15 * oracle


def test_autotune_step_drop_ab(benchmark):
    """Static one-shot budget vs the online controller across a 2x
    mid-run write-bandwidth drop (16 simulated steps, shared channel)."""
    segments = build_segments(CONFIG, 16, parallelism=EVAL_PARALLELISM)
    probe = StepSimulator(
        segments, PlacementStrategy.OFFLOAD, WRITE, READ, io_mode="fifo"
    ).run()
    budget = choose_offload_budget(
        WorkloadProfile(
            activation_bytes_per_step=probe.offloaded_bytes + probe.kept_bytes,
            forward_time_s=probe.forward_time_s,
            backward_time_s=probe.backward_time_s,
        ),
        WRITE, READ, safety_factor=0.9,
    )
    scenario = DriftScenario.step_drop(WRITE, READ, steps=16, drift_step=8,
                                       write_factor=0.5)

    def run():
        static = simulate_adaptive_run(
            segments, scenario,
            policy=OffloadPolicy(PolicyConfig(offload_budget_bytes=budget)),
        )
        adaptive = simulate_adaptive_run(
            segments, scenario,
            policy=OffloadPolicy(PolicyConfig(offload_budget_bytes=budget)),
            controller=AutotuneController(),
        )
        return static, adaptive

    static, adaptive = benchmark(run)
    emit(
        "Autotune — static vs adaptive under a 2x write-bandwidth drop",
        [
            f"one-shot budget: {budget / GB:.2f} GiB",
            f"post-drift stall: static {static.stall_time_s(8) * 1e3:7.0f} ms",
            f"post-drift stall: adaptive {adaptive.stall_time_s(8) * 1e3:6.0f} ms",
            f"adaptive budget settles at {adaptive.budgets[-1] / GB:.2f} GiB",
        ],
    )
    assert adaptive.stall_time_s(8) < 0.25 * static.stall_time_s(8)
    assert adaptive.budgets[-1] < adaptive.budgets[0]
