"""Fig. 5: SSD lifespan, required PCIe write bandwidth, and maximal
activations per GPU for the large-scale deployment configurations.

Paper claims regenerated: lifespan > 2 years in every configuration, write
bandwidth per GPU bounded (paper: <= 12.1 GB/s), max activations 0.4-1.8
TB/GPU, and both metrics improving as the system scales up.
"""

from repro.analysis.ssd_model import project_all_fig5

from benchmarks.conftest import emit


def test_fig5_deployment_projection(benchmark):
    projections = benchmark(project_all_fig5)
    header = f"{'configuration':<28} {'GPUs':>5}  {'write BW':>12}  {'lifespan':>9}  {'max act':>8}"
    lines = [header, "-" * len(header)]
    lines.extend(p.as_row() for p in projections)
    lines.append(
        f"max write BW = {max(p.required_write_bw_gbps for p in projections):.1f} GB/s "
        "(paper: <= 12.1); "
        f"min lifespan = {min(p.lifespan_years for p in projections):.2f} yr (paper: > 2)"
    )
    emit("Fig. 5 — SSD viability projection (4x Samsung 980 PRO per GPU)", lines)

    for p in projections:
        assert p.lifespan_years > 2.0, p.label
        assert p.required_write_bw_gbps < 20.0, p.label
