"""Fig. 5: SSD lifespan, required PCIe write bandwidth, and maximal
activations per GPU for the large-scale deployment configurations.

Paper claims regenerated: lifespan > 2 years in every configuration, write
bandwidth per GPU bounded (paper: <= 12.1 GB/s), max activations 0.4-1.8
TB/GPU, and both metrics improving as the system scales up.

PR 9 extends the analytic projection with a **measured** endurance
budget: a real durable engine runs the service workload and its
:class:`~repro.core.engine.EnduranceStats` books (including GC write
amplification) feed the same bytes-per-GB-day lifespan arithmetic the
figure projects.
"""

from repro.analysis.ssd_model import project_all_fig5
from repro.core.engine import EngineConfig, build_engine
from repro.service import SyntheticWorkload

from benchmarks.conftest import emit


def test_fig5_deployment_projection(benchmark):
    projections = benchmark(project_all_fig5)
    header = f"{'configuration':<28} {'GPUs':>5}  {'write BW':>12}  {'lifespan':>9}  {'max act':>8}"
    lines = [header, "-" * len(header)]
    lines.extend(p.as_row() for p in projections)
    lines.append(
        f"max write BW = {max(p.required_write_bw_gbps for p in projections):.1f} GB/s "
        "(paper: <= 12.1); "
        f"min lifespan = {min(p.lifespan_years for p in projections):.2f} yr (paper: > 2)"
    )
    emit("Fig. 5 — SSD viability projection (4x Samsung 980 PRO per GPU)", lines)

    for p in projections:
        assert p.lifespan_years > 2.0, p.label
        assert p.required_write_bw_gbps < 20.0, p.label


def test_fig5_live_endurance_books(tmp_path):
    """The engine's measured endurance books close the loop on Fig. 5:
    ``bytes_per_gb_day`` from a real chunked-store run — GC write
    amplification included — is exactly the write-rate arithmetic the
    lifespan projection uses, so the projection can be re-based on
    telemetry from a long-running service instead of analytic bounds.
    """
    with build_engine(
        EngineConfig(
            target="ssd", store_dir=tmp_path, chunk_bytes=8 << 10, durable=True
        )
    ) as engine:
        SyntheticWorkload(seed=5).run(engine, steps=6)
        store = engine.chunk_store
        workload_bytes = store.bytes_written
        reclaimed = store.compact(max_dead_ratio=0.5)
        endurance = engine.stats().endurance

    assert endurance is not None and endurance.bytes_written > 0
    assert reclaimed > 0, "workload must leave the compactor real victims"
    # GC write amplification is charged to the endurance budget.
    assert endurance.gc_bytes_rewritten > 0
    assert endurance.bytes_written == workload_bytes + endurance.gc_bytes_rewritten

    capacity = 1600 * 10**9  # one P5800X-class device
    rate = endurance.write_rate_bytes_per_day
    per_gb_day = endurance.bytes_per_gb_day(capacity)
    assert rate > 0 and per_gb_day * (capacity / 1e9) == rate

    emit(
        "Fig. 5 (live) — measured endurance budget",
        [
            f"{endurance.bytes_written} bytes written "
            f"({endurance.gc_bytes_rewritten} GC amplification), "
            f"{per_gb_day:.1f} B/GB-day against a 1600 GB device",
        ],
    )
