"""Benchmarks for the multi-tenant fair-share QoS layer (PR 6).

A/B of the weighted DRR fair-share dequeue against naive FIFO on the
shared-lane harness (virtual device clock, so the numbers are CPU-bound
and deterministic), plus the registry's quota-admission hot path that
sits on every ``submit``.  The CI regression guard
(``scripts/check_bench_regression.py``) watches the ``tenant``-named
benches; the fairness win itself is asserted deterministically in
``test_tenant_fair_vs_fifo_jain_ab`` so the benchmark cannot silently
stop demonstrating it.
"""

from repro.io import TenantRegistry
from repro.sim import MultiTenantHarness, TenantJobSpec

from benchmarks.conftest import emit

#: Four equal-weight tenants contending for one SSD lane.
JOBS = tuple(
    TenantJobSpec(name=f"tenant{i}", num_tensors=16, tensor_bytes=16 << 10)
    for i in range(4)
)


def _run(fair):
    return MultiTenantHarness(JOBS, fair=fair).run()


def test_tenant_harness_fair_share_run(benchmark):
    result = benchmark(_run, True)
    emit(
        "Multi-tenant QoS — fair-share DRR over a shared lane",
        [f"contended Jain index: {result.contended_jain:.4f}"],
    )
    assert result.contended_jain >= 0.9


def test_tenant_harness_fifo_run(benchmark):
    result = benchmark(_run, False)
    emit(
        "Multi-tenant QoS — naive FIFO over a shared lane",
        [f"contended Jain index: {result.contended_jain:.4f}"],
    )


def test_tenant_fair_vs_fifo_jain_ab():
    """Deterministic A/B: the DRR dequeue must keep its fairness win
    over FIFO regardless of how the wall-clock benches move."""
    fair = _run(True)
    fifo = _run(False)
    emit(
        "Multi-tenant QoS — fair vs FIFO Jain A/B",
        [
            f"fair: {fair.contended_jain:.4f}",
            f"fifo: {fifo.contended_jain:.4f}",
        ],
    )
    assert fair.contended_jain >= 0.9
    assert fair.contended_jain > fifo.contended_jain + 0.05


def test_tenant_admission_quota_hot_path(benchmark):
    """The per-submit admission charge/refund cycle (quota-tracked
    tenant) — pure CPU, guarded by the default wall-clock gate."""
    registry = TenantRegistry()
    registry.register("hot", byte_quota=1 << 40)

    def cycle():
        for _ in range(256):
            registry.admit("hot", 4096)
            registry.refund("hot", 4096)

    benchmark(cycle)
