"""Benchmarks for the self-healing degraded modes (PR 10).

Wall-clock benches for the two hot paths this PR adds to every request
— the circuit-breaker state machine and the adaptive hedge-delay
derivation — plus the failover store path a dead SSD reroutes through,
and two deterministic recovery assertions: hedged reads must win races
under a browning-out lane, and a healed tier must resurrect via canary
probes with the post-resurrection store bit-exact.  The CI regression
guard (``scripts/check_bench_regression.py``) watches the
``breaker``/``hedge``/``recovery``-named benches.
"""

import threading
import time
from collections import deque

import numpy as np

from repro.core import OffloadPolicy, PolicyConfig, TensorID
from repro.core.engine import EngineConfig, build_engine
from repro.core.offloader import make_offloader
from repro.io.breaker import BreakerState, CircuitBreaker
from repro.io.faults import FaultPlan, inject_faults
from repro.io.scheduler import IORequest, IOScheduler, Priority

from benchmarks.conftest import emit

TENSOR = np.random.default_rng(10).standard_normal(1024).astype(np.float32)


def _ssd_placing_policy():
    """4 KiB tensors place onto the SSD tier even with a roomy pool, so
    the degraded paths under test actually engage."""
    return OffloadPolicy(PolicyConfig(cpu_tier_max_tensor_bytes=2048))


# ------------------------------------------------------------- hot paths
def test_breaker_trip_probe_close_cycle(benchmark):
    """One full incident on the breaker state machine: trip -> backoff
    -> half-open probe -> close.  Pure state machine on a fake clock —
    the cost every failed/healed I/O pays at the bookkeeping layer."""
    clock = [0.0]
    breaker = CircuitBreaker(backoff_s=1.0, probe_budget=1, clock=lambda: clock[0])

    def cycle():
        breaker.trip("bench incident")
        clock[0] += 2.0
        assert breaker.allow_probe()
        assert breaker.record_probe_success()

    benchmark(cycle)
    assert breaker.state == BreakerState.CLOSED
    assert breaker.stats.resurrections == breaker.stats.trips
    emit(
        "recovery — breaker trip/probe/close cycle",
        [f"{breaker.stats.trips} incidents cycled, all resurrected"],
    )


def test_hedge_delay_derivation_hot_path(benchmark):
    """The adaptive hedge delay (p99 clamped to 4*p50 over the lane's
    duration window) is recomputed on every watchdog scan with a
    blocking load in flight — it must stay cheap."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, hedge=True)
    try:
        window = deque(maxlen=64)
        for i in range(64):
            window.append(0.010 if i % 8 else 0.200)
        with sched._stats_lock:
            sched._load_durations["ssd"] = window
        delay = benchmark(sched.hedge_delay_for, "ssd")
    finally:
        sched.shutdown()
    assert 0.002 <= delay <= 4.0 * 0.200
    emit(
        "recovery — adaptive hedge delay derivation",
        [f"64-sample window -> {delay * 1e3:.1f} ms hedge delay"],
    )


def test_failover_store_latency_dead_ssd(benchmark, tmp_path):
    """Store latency on the degraded path: the SSD is dead, so every
    placement reroutes into the pinned CPU tier — the latency a training
    step actually pays while the breaker is OPEN."""
    offloader = make_offloader(
        "tiered",
        store_dir=tmp_path / "store",
        cpu_pool_bytes=1 << 20,
        policy=_ssd_placing_policy(),
    )
    try:
        injector = inject_faults(offloader, FaultPlan(seed=0))
        injector.kill()
        offloader.store(TensorID(stamp=0, shape=(1024,)), TENSOR)  # trips
        assert offloader.ssd_dead
        counter = [1]

        def store_release():
            tid = TensorID(stamp=counter[0], shape=(1024,))
            counter[0] += 1
            offloader.store(tid, TENSOR)
            offloader.release(tid)

        benchmark(store_release)
        # The tripping store failed over; every later placement skips
        # the dead tier outright and lands on the CPU directly.
        assert offloader.stats.failovers >= 1
        assert offloader.stats.cpu_stored_tensors >= counter[0] - 1
        assert offloader.stats.ssd_stored_tensors == 0
        emit(
            "recovery — failover store latency (dead SSD -> CPU tier)",
            [f"{counter[0] - 1} stores rerouted, 0 failures"],
        )
    finally:
        offloader.shutdown()


# ------------------------------------------------- deterministic asserts
def test_recovery_hedge_wins_under_brownout():
    """A browning-out lane (sporadic 150 ms stalls) must lose races to
    hedges: the hedged run completes every blocking load without a
    single one paying the stall."""
    stall_every = 4

    def load(i):
        def body():
            if i % stall_every == 0:
                time.sleep(0.15)  # the brownout straggler
            return TENSOR

        return body

    sched = IOScheduler(
        num_store_workers=1, num_load_workers=4, hedge=True, hedge_delay_s=0.01
    )
    latencies = []
    try:
        for i in range(8):
            req = IORequest(
                load(i),
                kind="load",
                priority=Priority.BLOCKING_LOAD,
                lane="ssd",
                hedge_fn=lambda: TENSOR,
            )
            start = time.monotonic()
            sched.submit(req)
            assert req.wait(timeout=10.0)
            latencies.append(time.monotonic() - start)
        stats = sched.stats
    finally:
        sched.shutdown()
    assert stats.hedges_issued >= 1
    assert stats.hedges_won >= 1
    # Every stalled primary was rescued: no blocking load paid the stall.
    assert max(latencies) < 0.15
    emit(
        "recovery — hedge win rate under brownout",
        [
            f"{stats.hedges_issued} hedges issued, {stats.hedges_won} won, "
            f"p-max {max(latencies) * 1e3:.1f} ms vs 150 ms stall"
        ],
    )


def test_recovery_resurrection_time_to_first_store(tmp_path):
    """Kill -> heal -> canary probes must resurrect the tier within a
    few backoff periods, and the first post-resurrection store/load
    round-trip must be bit-exact."""
    backoff_s = 0.002
    offloader = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path / "store",
            cpu_pool_bytes=1 << 20,
            policy=_ssd_placing_policy(),
            probe_backoff_s=backoff_s,
        )
    ).offloader
    try:
        injector = inject_faults(offloader, FaultPlan(seed=0))
        injector.kill()
        offloader.store(TensorID(stamp=0, shape=(1024,)), TENSOR)  # trips
        assert offloader.ssd_dead
        injector.heal()
        healed_at = time.monotonic()
        deadline = healed_at + 5.0
        while offloader.ssd_dead and time.monotonic() < deadline:
            offloader.maybe_probe_ssd()
            time.sleep(backoff_s)
        assert not offloader.ssd_dead, "probes did not resurrect the tier"
        tid = TensorID(stamp=1, shape=(1024,))
        offloader.store(tid, TENSOR)
        elapsed = time.monotonic() - healed_at
        out = offloader.load(tid, TENSOR.shape, TENSOR.dtype)
        assert np.array_equal(out, TENSOR)
        assert offloader.stats.resurrections == 1
        emit(
            "recovery — resurrection time to first store",
            [
                f"heal -> resurrected + first bit-exact store in "
                f"{elapsed * 1e3:.1f} ms ({backoff_s * 1e3:.0f} ms probe backoff)"
            ],
        )
    finally:
        offloader.shutdown()


def test_recovery_breaker_single_flight_under_contention():
    """Eight threads storming ``allow_probe`` get exactly one canary
    slot — a recovering device is never hammered."""
    clock = [10.0]
    breaker = CircuitBreaker(backoff_s=1.0, clock=lambda: clock[0])
    breaker.trip("storm bench")
    clock[0] += 2.0  # backoff elapsed: exactly one canary slot is up
    grants = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait(5)
        grants.append(breaker.allow_probe())

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    assert sum(grants) == 1
    emit(
        "recovery — probe single-flight under contention",
        ["8 concurrent probers, 1 canary slot granted"],
    )
