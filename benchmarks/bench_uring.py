"""Benchmarks for the batched SQ/CQ I/O backend (PR 8).

A/B of the uring-style submission/completion backend against the
thread-per-job blocking model on the scheduler's store path, plus the
simulated GDS lane's routing win.  The CI regression guard
(``scripts/check_bench_regression.py``) watches the ``uring``/
``backend``-named benches; the syscall reduction itself is asserted
deterministically in ``test_uring_backend_fewer_syscalls_ab`` so the
benchmark cannot silently stop demonstrating the win.
"""

import numpy as np

from repro.io import (
    GDSSimBackend,
    IORequest,
    IOScheduler,
    Priority,
    TensorFileStore,
    UringBackend,
)
from repro.tensor.tensor import Tensor

from benchmarks.conftest import emit

MiB = 1 << 20
#: Store-path working set: 16 x 1 MiB tensors per measured round.
N_TENSORS = 16
TENSOR = np.random.default_rng(11).random(MiB // 8)  # 1 MiB of float64


def _store_round(sched, store):
    requests = [
        sched.submit(
            IORequest(
                lambda i=i: store.write(f"t{i}", TENSOR),
                kind="store",
                priority=Priority.STORE,
                tensor_id=f"t{i}",
                nbytes=TENSOR.nbytes,
            )
        )
        for i in range(N_TENSORS)
    ]
    assert sched.drain(30)
    for request in requests:
        assert request.error is None


def _run_one_round(tmp_path, name, backend):
    """One deterministic round; returns (store, lane stats, sched stats)."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, backend=backend)
    store = TensorFileStore(tmp_path / name)
    try:
        _store_round(sched, store)
        lanes = sched.backend_stats_snapshot()
        stats = sched.stats
        assert stats.submitted == stats.executed + stats.failed + stats.cancelled
    finally:
        sched.shutdown()
    return store, lanes["ssd"], stats


def test_uring_backend_store_round(benchmark, tmp_path):
    sched = IOScheduler(
        num_store_workers=1, num_load_workers=1, backend=UringBackend()
    )
    store = TensorFileStore(tmp_path)
    try:
        benchmark(_store_round, sched, store)
        lane = sched.backend_stats_snapshot()["ssd"]
        emit(
            "SQ/CQ backend — uring store round (16 x 1 MiB)",
            [f"syscalls: {lane.syscalls} over {lane.batches} batches",
             f"requests batched: {lane.batched_requests}",
             f"reaped: {lane.reaped} (lag {lane.reap_lag_s * 1e3:.1f} ms)"],
        )
        assert lane.reaped > 0
    finally:
        sched.shutdown()


def test_thread_backend_store_round(benchmark, tmp_path):
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    store = TensorFileStore(tmp_path)
    try:
        benchmark(_store_round, sched, store)
    finally:
        sched.shutdown()


def test_uring_backend_fewer_syscalls_ab(tmp_path):
    """The PR's headline invariant, asserted deterministically: at
    identical bytes written, the batched backend reaches the kernel
    strictly fewer times than thread-per-job blocking I/O."""
    thread_store, thread_lane, _ = _run_one_round(tmp_path, "thread", None)
    uring_store, uring_lane, _ = _run_one_round(tmp_path, "uring", UringBackend())
    assert uring_store.bytes_written == thread_store.bytes_written
    assert uring_store.write_syscalls < thread_store.write_syscalls
    assert uring_lane.syscalls < thread_lane.syscalls
    emit(
        "SQ/CQ backend — syscalls at equal bytes (16 x 1 MiB stores)",
        [f"thread: {thread_lane.syscalls} syscalls",
         f"uring:  {uring_lane.syscalls} syscalls "
         f"({thread_lane.syscalls - uring_lane.syscalls} fewer)"],
    )


def test_gds_sim_backend_skips_bounce_copies(tmp_path):
    """Registered storages route past the host bounce buffer: the
    ``bounce_copies_skipped`` counter must move on a registered round."""
    backend = GDSSimBackend()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, backend=backend)
    store = TensorFileStore(tmp_path)
    tensors = [Tensor(TENSOR.copy()) for _ in range(N_TENSORS)]
    for t in tensors:
        backend.registry.register(t.untyped_storage())
    try:
        requests = [
            sched.submit(
                IORequest(
                    lambda i=i: store.write(f"t{i}", tensors[i].data),
                    kind="store",
                    priority=Priority.STORE,
                    tensor_id=f"t{i}",
                    nbytes=TENSOR.nbytes,
                )
            )
            for i in range(N_TENSORS)
        ]
        assert sched.drain(30)
        for request in requests:
            assert request.error is None
        lane = sched.backend_stats_snapshot()["ssd"]
        emit(
            "SQ/CQ backend — GDS-sim routing (16 registered stores)",
            [f"bounce copies skipped: {lane.bounce_copies_skipped}",
             f"bounce copies staged: {lane.bounce_copies}"],
        )
        assert lane.bounce_copies_skipped > 0
        assert lane.bounce_copies == 0
        assert backend.arena.stats().outstanding_bytes == 0
    finally:
        sched.shutdown()
