"""Extension bench: activation offloading inside a 1F1B pipeline.

The Fig. 2 setting at pipeline scale: every stage offloads its warmup
micro-batches and keeps the immediately-consumed ones (the marker-4 rule
emerges from the schedule).  Checks that the offloaded pipeline matches the
ideal pipeline step time while cutting the first stage's activation
inventory — the memory that limits micro-batch size in PP training
(Sec. IV-D).
"""

from repro.sim import StageWorkload, simulate_pipeline_offload

from benchmarks.conftest import SSD_READ_BW, SSD_WRITE_BW, emit

#: One pipeline stage of a Fig. 6-sized model: ~3 layers, ~4 GB/micro-batch.
WORK = StageWorkload(forward_time_s=0.6, backward_time_s=1.2, activation_bytes=4 * 10**9)


def _run():
    rows = []
    for stages, microbatches in ((4, 8), (8, 16), (12, 24)):
        keep = simulate_pipeline_offload(
            WORK, stages, microbatches, SSD_WRITE_BW, SSD_READ_BW, offload=False
        )
        off = simulate_pipeline_offload(
            WORK, stages, microbatches, SSD_WRITE_BW, SSD_READ_BW, offload=True
        )
        rows.append((stages, microbatches, keep, off))
    return rows


def test_pipeline_offload_scaling(benchmark):
    rows = benchmark(_run)
    lines = [
        f"{'PP':>3} {'m':>3} | {'overhead':>9} {'stall':>8} | "
        f"{'stage-0 keep':>13} {'stage-0 off':>12} {'reduction':>9}"
    ]
    for stages, microbatches, keep, off in rows:
        keep0 = keep.stages[0].activation_peak_bytes
        off0 = off.stages[0].activation_peak_bytes
        lines.append(
            f"{stages:>3} {microbatches:>3} | {off.overhead:>8.2%} "
            f"{off.total_io_stall_s * 1e3:>6.1f}ms | {keep0 / 2**30:>11.1f}GB "
            f"{off0 / 2**30:>10.1f}GB {1 - off0 / keep0:>8.0%}"
        )
    emit("Extension — offloading under 1F1B pipeline parallelism", lines)

    for stages, microbatches, keep, off in rows:
        assert off.overhead < 0.02, f"PP{stages}"
        keep0 = keep.stages[0].activation_peak_bytes
        off0 = off.stages[0].activation_peak_bytes
        assert off0 < keep0, f"PP{stages}"
        # Keep-last emerges: the final stage never offloads.
        assert off.stages[-1].offloaded_bytes == 0
    # Deeper pipelines benefit more (bigger warmup inventory).
    reductions = [
        1 - off.stages[0].activation_peak_bytes / keep.stages[0].activation_peak_bytes
        for _, _, keep, off in rows
    ]
    assert reductions == sorted(reductions)
