"""Service-mode demo: kill the engine mid-run, recover bit-exact.

``repro serve`` runs a supervised, durable engine service against the
deterministic synthetic workload and proves the four service-mode
claims end to end:

1. **Supervised crash recovery** — the engine is killed mid-run; the
   supervisor notices the stale heartbeat, reaps the wreck and builds a
   fresh engine whose chunk store **replays the manifest journal**; the
   workload resumes and every remaining loss is bit-exact against an
   uninterrupted reference run.
2. **Live control, no restart** — an offload-budget change published on
   the control bus is applied by the housekeeping tick on the *running*
   engine (asserted against the policy it landed in).
3. **Endurance GC** — chunk compaction (triggered over the bus; the
   background cadence runs the same code) reclaims > 0 dead bytes from
   the half-dead chunks the workload's mixed tensor lifetimes create.
4. **Exact books** — after the service stops, a fresh store replaying
   the same manifest reproduces the byte books
   (written/reclaimed/dead/GC) exactly and serves every live tensor
   bit-exact.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.engine import EngineConfig, build_engine
from repro.io.chunkstore import ChunkedTensorStore
from repro.service import (
    ControlBus,
    EngineService,
    ServiceState,
    Supervisor,
    SyntheticWorkload,
    TOPIC_CONTROL,
)

#: Small chunks so a short demo produces several flushed chunks to GC.
CHUNK_BYTES = 8 << 10
STEPS = 10
KILL_STEP = 4
BUDGET_STEP = 6
BUDGET_BYTES = 256 << 20


def _wait(predicate: Callable[[], bool], timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise TimeoutError("service did not reach the expected state in time")


def run(
    steps: int = STEPS,
    kill_step: Optional[int] = KILL_STEP,
    budget_step: Optional[int] = BUDGET_STEP,
    seed: int = 0,
    store_dir: Optional[str] = None,
    heartbeat_interval_s: float = 0.02,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the supervised-service scenario; returns the asserted facts."""
    workload = SyntheticWorkload(seed=seed)

    # Uninterrupted reference run: same workload, pristine engine.
    ref_dir = tempfile.mkdtemp(prefix="serve-ref-")
    try:
        with build_engine(
            EngineConfig(
                target="ssd", store_dir=ref_dir, chunk_bytes=CHUNK_BYTES, durable=True
            )
        ) as ref_engine:
            ref_losses = workload.run(ref_engine, steps)
    finally:
        shutil.rmtree(ref_dir, ignore_errors=True)

    own_dir = store_dir is None
    store_dir = store_dir if store_dir is not None else tempfile.mkdtemp(prefix="serve-")
    bus = ControlBus()
    service = EngineService(
        EngineConfig(
            target="ssd", store_dir=store_dir, chunk_bytes=CHUNK_BYTES, durable=True
        ),
        bus=bus,
        heartbeat_interval_s=heartbeat_interval_s,
        gc_interval_s=None,  # GC on command below, for determinism
    )
    supervisor = Supervisor(
        service,
        heartbeat_timeout_s=8 * heartbeat_interval_s,
        poll_interval_s=heartbeat_interval_s,
        backoff_base_s=heartbeat_interval_s,
    )
    losses = []
    replayed = 0
    try:
        service.start()
        supervisor.start()
        for step in range(steps):
            if step == kill_step:
                service.kill()
                if verbose:
                    print(f"step {step}: engine killed; waiting for supervisor ...")
                _wait(
                    lambda: service.restarts >= 1
                    and service.state is ServiceState.HEALTHY
                )
                replayed = service.engine.chunk_store.manifest_records_replayed
                assert replayed > 0, "restart must replay the manifest"
                if verbose:
                    print(
                        f"  supervisor restarted the engine "
                        f"(generation {service.generation}, "
                        f"{replayed} manifest records replayed)"
                    )
            if step == budget_step:
                applied_before = service.controls_applied
                bus.publish(
                    TOPIC_CONTROL, {"cmd": "install_budget", "bytes": BUDGET_BYTES}
                )
                _wait(lambda: service.controls_applied > applied_before)
                assert (
                    service.engine.policy.config.offload_budget_bytes == BUDGET_BYTES
                ), "budget change must land on the running engine"
                if verbose:
                    print(
                        f"step {step}: offload budget set to "
                        f"{BUDGET_BYTES >> 20} MiB over the control bus "
                        f"(no restart)"
                    )
            losses.append(workload.run_step(service.engine, step))

        store = service.engine.chunk_store
        dead_before = store.dead_bytes
        bus.publish(TOPIC_CONTROL, {"cmd": "compact"})
        _wait(lambda: store.gc_reclaimed_dead_bytes > 0)
        gc_reclaimed = store.gc_reclaimed_dead_bytes
        assert store.dead_bytes < dead_before, "compaction must shrink dead bytes"
        if verbose:
            print(
                f"compaction reclaimed {gc_reclaimed} dead bytes "
                f"({dead_before} -> {store.dead_bytes}) across "
                f"{store.gc_runs} chunk rewrites"
            )
        final_books = {
            "bytes_written": store.bytes_written,
            "reclaimed_bytes": store.reclaimed_bytes,
            "dead_bytes": store.dead_bytes,
            "gc_runs": store.gc_runs,
            "gc_bytes_rewritten": store.gc_bytes_rewritten,
            "gc_reclaimed_dead_bytes": store.gc_reclaimed_dead_bytes,
        }
        endurance = service.engine.stats().endurance
        restarts = service.restarts
        controls = service.controls_applied
    finally:
        supervisor.stop()
        service.stop()

    assert losses == ref_losses, (
        "losses must be bit-exact vs the uninterrupted reference: "
        f"{losses} != {ref_losses}"
    )

    # Exact-books contract: a cold replay of the manifest reproduces the
    # final books and serves every live tensor bit-exact.
    reopened = ChunkedTensorStore(store_dir, chunk_bytes=CHUNK_BYTES, durable=True)
    try:
        replay_books = {
            "bytes_written": reopened.bytes_written,
            "reclaimed_bytes": reopened.reclaimed_bytes,
            "dead_bytes": reopened.dead_bytes,
            "gc_runs": reopened.gc_runs,
            "gc_bytes_rewritten": reopened.gc_bytes_rewritten,
            "gc_reclaimed_dead_bytes": reopened.gc_reclaimed_dead_bytes,
        }
        assert replay_books == final_books, (
            f"books must survive replay exactly: {replay_books} != {final_books}"
        )
        for s, k in workload.live_pairs(steps - 1):
            got = reopened.read(
                workload.tensor_id(s, k).filename(),
                (workload.tensor_elems,),
                np.float32,
            )
            assert np.array_equal(got, workload.data(s, k)), (
                f"tensor ({s},{k}) must replay bit-exact"
            )
        reopened.close()
    finally:
        if own_dir:
            shutil.rmtree(store_dir, ignore_errors=True)

    return {
        "losses": losses,
        "ref_losses": ref_losses,
        "restarts": restarts,
        "manifest_records_replayed": replayed,
        "controls_applied": controls,
        "gc_reclaimed_dead_bytes": final_books["gc_reclaimed_dead_bytes"],
        "books": final_books,
        "endurance": endurance,
    }


def main(
    steps: int = STEPS,
    kill_step: Optional[int] = KILL_STEP,
    budget_step: Optional[int] = BUDGET_STEP,
    seed: int = 0,
    store_dir: Optional[str] = None,
) -> Dict[str, Any]:
    print(
        f"service demo: {steps} steps, kill at step {kill_step}, "
        f"budget change at step {budget_step}\n"
    )
    result = run(
        steps=steps,
        kill_step=kill_step,
        budget_step=budget_step,
        seed=seed,
        store_dir=store_dir,
        verbose=True,
    )
    endurance = result["endurance"]
    print(
        f"\nsupervised restarts: {result['restarts']}  "
        f"manifest records replayed: {result['manifest_records_replayed']}  "
        f"controls applied live: {result['controls_applied']}"
    )
    print(
        f"endurance: {endurance.bytes_written} bytes written "
        f"({endurance.gc_bytes_rewritten} GC rewrite), "
        f"write rate {endurance.write_rate_bytes_per_day / 1e6:.1f} MB/day-equivalent"
    )
    print(
        "\nall losses bit-exact across the kill/restart, budget applied "
        "without a restart, GC reclaimed "
        f"{result['gc_reclaimed_dead_bytes']} dead bytes, books survive "
        "replay exactly. ✓"
    )
    return result


if __name__ == "__main__":
    main()
