"""Recompute-Offload-Keep (ROK) curve at paper scale (Fig. 7).

Places the three activation strategies on the (activation peak, model
throughput) plane for 3-layer BERT at hidden 12288 and 14336, using the
discrete-event simulator with the Table II hardware (A100 + 4x P5800X
RAID0).  Prints the points and an ASCII scatter.

Usage::

    python examples/rok_curve.py
"""

from __future__ import annotations

from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB
from repro.models.config import ModelConfig
from repro.sim import simulate_strategy
from repro.train.parallel import ParallelismConfig
from repro.train.trainer import PlacementStrategy

WRITE_BW = 4 * INTEL_OPTANE_P5800X_1600GB.write_bw
READ_BW = 4 * INTEL_OPTANE_P5800X_1600GB.read_bw
PAR = ParallelismConfig(tp=2)
MARKER = {"keep": "K", "offload": "O", "recompute": "R"}


def rok_points(hidden: int):
    config = ModelConfig(arch="bert", hidden=hidden, num_layers=3, seq_len=1024)
    points = []
    for batch in (4, 8, 16):
        for strategy in PlacementStrategy:
            r = simulate_strategy(
                config, batch, strategy, WRITE_BW, READ_BW, parallelism=PAR
            )
            points.append(
                dict(
                    batch=batch,
                    strategy=strategy.value,
                    peak_gb=r.activation_peak_bytes / 2**30,
                    tflops=r.model_throughput_tflops(),
                )
            )
    return points


def ascii_scatter(points, width=64, height=16):
    xs = [p["peak_gb"] for p in points]
    ys = [p["tflops"] for p in points]
    x0, x1 = min(xs) * 0.9, max(xs) * 1.05
    y0, y1 = min(ys) * 0.95, max(ys) * 1.05
    grid = [[" "] * width for _ in range(height)]
    for p in points:
        col = int((p["peak_gb"] - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - int((p["tflops"] - y0) / (y1 - y0) * (height - 1))
        grid[row][col] = MARKER[p["strategy"]]
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(
        f"x: activation peak {x0:.1f}..{x1:.1f} GB | y: throughput "
        f"{y0:.0f}..{y1:.0f} TFLOP/s | K=keep O=offload R=recompute"
    )
    return "\n".join(lines)


def main() -> None:
    for hidden in (12288, 14336):
        points = rok_points(hidden)
        print(f"\n=== ROK curve: BERT H{hidden} L3 (Fig. 7{'a' if hidden == 12288 else 'b'}) ===")
        print(f"{'B':>3} {'strategy':<10} {'peak':>8} {'throughput':>12}")
        for p in points:
            print(f"{p['batch']:>3} {p['strategy']:<10} {p['peak_gb']:>6.2f}GB "
                  f"{p['tflops']:>9.1f} TF/s")
        print()
        print(ascii_scatter(points))
        # The paper's takeaway: given a memory budget, the offload frontier
        # dominates — e.g. offload at B=16 fits roughly where keep needs B=8.
        off16 = next(p for p in points if p["batch"] == 16 and p["strategy"] == "offload")
        keep8 = next(p for p in points if p["batch"] == 8 and p["strategy"] == "keep")
        print(f"\noffload@B16 uses {off16['peak_gb']:.1f} GB for {off16['tflops']:.0f} TF/s; "
              f"keep@B8 uses {keep8['peak_gb']:.1f} GB for {keep8['tflops']:.0f} TF/s")


if __name__ == "__main__":
    main()
