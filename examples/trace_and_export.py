"""Trace a real offloaded run and export machine-readable results.

Attaches the I/O tracer to a functional SSDTrain run (real numpy math, real
file I/O), renders the measured store/load timeline (the functional-mode
counterpart of Fig. 2), verifies the overlap statistics, and exports the
per-step results plus the Fig. 5 projections as JSON/CSV.

Usage::

    python examples/trace_and_export.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.report import to_csv, to_json
from repro.analysis.ssd_model import project_all_fig5
from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import GPU
from repro.io.trace import attach_tracer
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer

CONFIG = ModelConfig(
    arch="gpt", hidden=128, num_layers=4, vocab_size=211, seq_len=64, head_dim=32
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="ssdtrain-report-"))
    out_dir.mkdir(parents=True, exist_ok=True)

    gpu = GPU()
    model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
    cache = TensorCache(
        SSDOffloader(out_dir / "store"),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=1024)),
    )
    tracer = attach_tracer(cache)
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=5e-3),
        gpu,
        strategy=PlacementStrategy.OFFLOAD,
        cache=cache,
    )
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=3),
        batch_size=4,
        seq_len=CONFIG.seq_len,
        device=gpu,
    )

    results = []
    try:
        for step in range(3):
            tracer.reset()
            result = trainer.train_step([loader.next_batch()])
            stats = tracer.stats(window_s=result.step_time_s)
            results.append(
                {
                    "step": step,
                    "loss": result.loss,
                    "step_time_s": result.step_time_s,
                    "activation_peak_bytes": result.activation_peak_bytes,
                    "offloaded_bytes": result.offloaded_bytes,
                    "store_busy_s": stats.store_busy_s,
                    "load_busy_s": stats.load_busy_s,
                    "store_bandwidth_mbps": stats.store_bandwidth / 1e6,
                }
            )
            if step == 2:
                print("measured I/O timeline of the last step "
                      "(functional-mode Fig. 2):")
                print(tracer.render_ascii(width=88))
                busy_frac = (stats.store_busy_s + stats.load_busy_s) / result.step_time_s
                print(f"\nI/O busy {busy_frac:.0%} of the step, all off the critical "
                      f"path (stores {stats.store_bytes / 1e6:.1f} MB @ "
                      f"{stats.store_bandwidth / 1e6:.0f} MB/s)")
    finally:
        trainer.close()

    steps_json = out_dir / "steps.json"
    steps_csv = out_dir / "steps.csv"
    fig5_json = out_dir / "fig5.json"
    to_json(results, path=steps_json)
    to_csv(results, path=steps_csv)
    to_json(project_all_fig5(), path=fig5_json)
    print(f"\nexported: {steps_json}\n          {steps_csv}\n          {fig5_json}")


if __name__ == "__main__":
    main()
