"""Quickstart: train a small GPT with SSDTrain activation offloading.

Runs the same training twice — activations kept in (simulated) GPU memory
vs offloaded through the tensor cache — and shows that losses match
exactly while the activation memory peak drops.

The offload target is selectable (the ``--target`` axis of the CLI):

- ``ssd``    — the paper's configuration: one file per tensor on the
  NVMe stand-in directory (add ``chunk_bytes`` for coalesced chunks);
- ``cpu``    — host pinned-memory pool only;
- ``tiered`` — the GPU -> pinned-CPU -> SSD hierarchy with demotion and
  promotion (:class:`~repro.core.tiered.TieredOffloader`).

Usage::

    python examples/quickstart.py
    python -m repro quickstart --target tiered --cpu-pool-bytes 262144
    python -m repro quickstart --chunk-bytes 1048576
"""

from __future__ import annotations

import tempfile
from typing import Optional

import numpy as np

from repro.core import OffloadPolicy, PolicyConfig, TensorCache, make_offloader
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import GPU
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer

CONFIG = ModelConfig(
    arch="gpt", hidden=128, num_layers=4, vocab_size=211, seq_len=64, head_dim=32
)
STEPS = 5


def run(
    offload: bool,
    target: str = "ssd",
    cpu_pool_bytes: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
) -> dict:
    gpu = GPU()
    model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
    optimizer = SGD(model.parameters(), lr=5e-3)

    cache = None
    if offload:
        # The "few lines added to the existing script" (paper Sec. III-A):
        # build a cache over a config-selected offloader; the Trainer
        # registers the weights, attaches the hooks, and wires the
        # scheduler hints.
        store_dir = tempfile.mkdtemp(prefix="ssdtrain-quickstart-")
        policy = OffloadPolicy(PolicyConfig(min_offload_numel=1024))
        cache = TensorCache(
            make_offloader(
                target,
                store_dir=store_dir,
                cpu_pool_bytes=cpu_pool_bytes,
                chunk_bytes=chunk_bytes,
                policy=policy,  # one policy governs decide() and place()
            ),
            policy=policy,
        )

    trainer = Trainer(
        model,
        optimizer,
        gpu,
        strategy=PlacementStrategy.OFFLOAD if offload else PlacementStrategy.KEEP,
        cache=cache,
    )
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=7),
        batch_size=4,
        seq_len=CONFIG.seq_len,
        device=gpu,
    )

    losses, peaks, offloaded = [], [], 0
    tier_stats = None
    try:
        for _ in range(STEPS):
            result = trainer.train_step([loader.next_batch()])
            losses.append(result.loss)
            peaks.append(result.activation_peak_bytes)
            offloaded += result.offloaded_bytes
        if cache is not None:
            tier_stats = getattr(cache.offloader, "stats", None)
    finally:
        trainer.close()
    return {
        "losses": losses,
        "peak": max(peaks[1:] or peaks),
        "offloaded": offloaded,
        "tier_stats": tier_stats,
    }


def main(
    target: str = "ssd",
    cpu_pool_bytes: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
) -> None:
    print(f"Training GPT (H={CONFIG.hidden}, L={CONFIG.num_layers}) for {STEPS} steps")
    print(f"offload target: {target}"
          + (f"  cpu_pool={cpu_pool_bytes}B" if cpu_pool_bytes is not None else "")
          + (f"  chunk={chunk_bytes}B" if chunk_bytes is not None else "") + "\n")
    baseline = run(offload=False)
    ssdtrain = run(
        offload=True,
        target=target,
        cpu_pool_bytes=cpu_pool_bytes,
        chunk_bytes=chunk_bytes,
    )

    print(f"{'step':>4} {'loss (keep)':>12} {'loss (SSDTrain)':>16}")
    for i, (a, b) in enumerate(zip(baseline["losses"], ssdtrain["losses"])):
        print(f"{i:>4} {a:>12.4f} {b:>16.4f}")

    reduction = 1 - ssdtrain["peak"] / baseline["peak"]
    print(f"\nactivation memory peak: {baseline['peak'] / 1e6:.2f} MB -> "
          f"{ssdtrain['peak'] / 1e6:.2f} MB  ({reduction:.0%} reduction)")
    print(f"bytes offloaded to '{target}': {ssdtrain['offloaded'] / 1e6:.2f} MB")
    stats = ssdtrain["tier_stats"]
    if stats is not None:
        print(f"tier traffic: cpu={stats.cpu_stored_bytes / 1e6:.2f} MB "
              f"ssd={stats.ssd_stored_bytes / 1e6:.2f} MB "
              f"demoted={stats.demoted_bytes / 1e6:.2f} MB "
              f"promoted={stats.promoted_bytes / 1e6:.2f} MB")
    assert all(
        abs(a - b) < 1e-4 for a, b in zip(baseline["losses"], ssdtrain["losses"])
    ), "offloaded training must match the baseline exactly"
    print("losses identical: offloading is transparent to training. ✓")


if __name__ == "__main__":
    main()
