"""Quickstart: train a small GPT with SSDTrain activation offloading.

Runs the same training twice — activations kept in (simulated) GPU memory
vs offloaded through the tensor cache — and shows that losses match
exactly while the activation memory peak drops.

The offload target is selectable (the ``--target`` axis of the CLI):

- ``ssd``    — the paper's configuration: one file per tensor on the
  NVMe stand-in directory (add ``chunk_bytes`` for coalesced chunks);
- ``cpu``    — host pinned-memory pool only;
- ``tiered`` — the GPU -> pinned-CPU -> SSD hierarchy with demotion and
  promotion (:class:`~repro.core.tiered.TieredOffloader`).

Stores run through the priority-aware I/O scheduler by default
(``--fifo-io`` restores the paper's FIFO pools for comparison); the run
prints the scheduler's cancellation/promotion counters and an I/O trace
timeline where ``x`` marks a store cancelled before it hit the SSD.

Usage::

    python examples/quickstart.py
    python -m repro quickstart --target tiered --cpu-pool-bytes 262144
    python -m repro quickstart --chunk-bytes 1048576
    python -m repro quickstart --fifo-io
"""

from __future__ import annotations

import tempfile
from typing import Optional

import numpy as np

from repro.core import EngineConfig, OffloadPolicy, PolicyConfig, build_engine
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import GPU
from repro.io.trace import attach_tracer
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer

CONFIG = ModelConfig(
    arch="gpt", hidden=128, num_layers=4, vocab_size=211, seq_len=64, head_dim=32
)
STEPS = 5

#: Model a realistically-paced store device instead of an instant local
#: file write, so the trace shows real overlap — and the scheduler has a
#: backlog to work on (forwarding, cancellation, promotion).
STORE_THROTTLE_BYTES_PER_S = 150e6


def run(
    offload: bool,
    target: str = "ssd",
    cpu_pool_bytes: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
    fifo_io: bool = False,
    legacy_dataplane: bool = False,
    io_backend: str = "thread",
    io_direct: bool = False,
) -> dict:
    gpu = GPU()
    model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
    optimizer = SGD(model.parameters(), lr=5e-3)

    cache = None
    tracer = None
    if offload:
        # The "few lines added to the existing script" (paper Sec. III-A):
        # one EngineConfig selects the whole engine, engine.cache() hangs
        # the training front-end on it; the Trainer registers the
        # weights, attaches the hooks, and wires the scheduler hints.
        store_dir = tempfile.mkdtemp(prefix="ssdtrain-quickstart-")
        policy = OffloadPolicy(PolicyConfig(min_offload_numel=1024))
        engine = build_engine(
            EngineConfig(
                target=target,
                store_dir=store_dir,
                cpu_pool_bytes=cpu_pool_bytes,
                chunk_bytes=chunk_bytes,
                throttle_bytes_per_s=STORE_THROTTLE_BYTES_PER_S,
                policy=policy,  # one policy governs decide() and place()
                legacy_dataplane=legacy_dataplane,
                fifo_io=fifo_io,
                io_backend=io_backend,
                io_direct=io_direct,
            )
        )
        cache = engine.cache()
        tracer = attach_tracer(cache)

    trainer = Trainer(
        model,
        optimizer,
        gpu,
        strategy=PlacementStrategy.OFFLOAD if offload else PlacementStrategy.KEEP,
        cache=cache,
    )
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=7),
        batch_size=4,
        seq_len=CONFIG.seq_len,
        device=gpu,
    )

    losses, peaks, offloaded = [], [], 0
    tier_stats = None
    sched_stats = None
    cache_stats = None
    dataplane = None
    engine_stats = None
    try:
        for _ in range(STEPS):
            result = trainer.train_step([loader.next_batch()])
            losses.append(result.loss)
            peaks.append(result.activation_peak_bytes)
            offloaded += result.offloaded_bytes
        if cache is not None:
            tier_stats = getattr(cache.offloader, "stats", None)
            sched_stats = cache.scheduler.stats
            cache_stats = cache.stats
            dataplane = cache.dataplane_stats()
            engine_stats = engine.stats()
    finally:
        trainer.close()
    return {
        "losses": losses,
        "peak": max(peaks[1:] or peaks),
        "offloaded": offloaded,
        "tier_stats": tier_stats,
        "sched_stats": sched_stats,
        "cache_stats": cache_stats,
        "dataplane": dataplane,
        "engine_stats": engine_stats,
        "tracer": tracer,
    }


def main(
    target: str = "ssd",
    cpu_pool_bytes: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
    fifo_io: bool = False,
    legacy_dataplane: bool = False,
    io_backend: str = "thread",
    io_direct: bool = False,
) -> None:
    print(f"Training GPT (H={CONFIG.hidden}, L={CONFIG.num_layers}) for {STEPS} steps")
    print(f"offload target: {target}"
          + (f"  cpu_pool={cpu_pool_bytes}B" if cpu_pool_bytes is not None else "")
          + (f"  chunk={chunk_bytes}B" if chunk_bytes is not None else "")
          + ("  io=fifo" if fifo_io else "  io=priority")
          + ("  dataplane=legacy" if legacy_dataplane else "  dataplane=pooled")
          + f"  backend={io_backend}" + ("+O_DIRECT" if io_direct else "")
          + "\n")
    baseline = run(offload=False)
    ssdtrain = run(
        offload=True,
        target=target,
        cpu_pool_bytes=cpu_pool_bytes,
        chunk_bytes=chunk_bytes,
        fifo_io=fifo_io,
        legacy_dataplane=legacy_dataplane,
        io_backend=io_backend,
        io_direct=io_direct,
    )

    print(f"{'step':>4} {'loss (keep)':>12} {'loss (SSDTrain)':>16}")
    for i, (a, b) in enumerate(zip(baseline["losses"], ssdtrain["losses"])):
        print(f"{i:>4} {a:>12.4f} {b:>16.4f}")

    reduction = 1 - ssdtrain["peak"] / baseline["peak"]
    print(f"\nactivation memory peak: {baseline['peak'] / 1e6:.2f} MB -> "
          f"{ssdtrain['peak'] / 1e6:.2f} MB  ({reduction:.0%} reduction)")
    print(f"bytes offloaded to '{target}': {ssdtrain['offloaded'] / 1e6:.2f} MB")
    stats = ssdtrain["tier_stats"]
    if stats is not None:
        print(f"tier traffic: cpu={stats.cpu_stored_bytes / 1e6:.2f} MB "
              f"ssd={stats.ssd_stored_bytes / 1e6:.2f} MB "
              f"demoted={stats.demoted_bytes / 1e6:.2f} MB "
              f"promoted={stats.promoted_bytes / 1e6:.2f} MB")
    sched = ssdtrain["sched_stats"]
    if sched is not None:
        print(f"I/O scheduler: {sched.submitted} requests "
              f"({sched.cancelled} cancelled, {sched.promotions} promoted, "
              f"{sched.coalesced_requests} coalesced)")
    dataplane = ssdtrain["dataplane"]
    if dataplane is not None:
        per_step = dataplane.copies / STEPS
        print(f"data plane: {dataplane.copies} copies "
              f"({dataplane.bytes_copied / 1e6:.2f} MB, {per_step:.1f} copies/step), "
              f"{dataplane.allocs_avoided} allocs avoided, "
              f"arena hit rate {dataplane.arena_hit_rate:.0%}")
    engine_stats = ssdtrain["engine_stats"]
    if engine_stats is not None and engine_stats.io_lanes:
        for lane, ls in sorted(engine_stats.io_lanes.items()):
            if not ls.batches:
                continue
            line = (f"io backend [{engine_stats.io_backend}] lane {lane}: "
                    f"{ls.syscalls} syscalls over {ls.batches} batches "
                    f"({ls.batched_requests} requests batched)")
            if ls.bounce_copies or ls.bounce_copies_skipped:
                line += (f", bounce copies {ls.bounce_copies} "
                         f"(skipped {ls.bounce_copies_skipped})")
            print(line)
    tracer = ssdtrain["tracer"]
    if tracer is not None:
        overlap = tracer.stats()
        print(f"trace: store busy {overlap.store_busy_s * 1e3:.0f} ms, "
              f"load busy {overlap.load_busy_s * 1e3:.0f} ms, "
              f"{overlap.cancelled_stores} stores cancelled before the SSD, "
              f"{overlap.promoted_loads} loads promoted")
        print(tracer.render_ascii(width=72))
    assert all(
        abs(a - b) < 1e-4 for a, b in zip(baseline["losses"], ssdtrain["losses"])
    ), "offloaded training must match the baseline exactly"
    if sched is not None and not fifo_io:
        # The scheduler must visibly work on this workload: obsolete
        # stores are cancelled before they hit the SSD (trace 'x' marks).
        assert sched.cancelled >= 1, "expected >=1 cancelled store per quickstart run"
    if dataplane is not None and not legacy_dataplane:
        # The pooled data plane must visibly work too: the streaming
        # writer / arena must have skipped real allocations this run.
        assert dataplane.allocs_avoided > 0, "expected the data plane to avoid allocs"
    print("losses identical: offloading is transparent to training. ✓")


if __name__ == "__main__":
    main()
