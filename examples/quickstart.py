"""Quickstart: train a small GPT with SSDTrain activation offloading.

Runs the same training twice — activations kept in (simulated) GPU memory
vs offloaded through the tensor cache to a local directory standing in for
the NVMe array — and shows that losses match exactly while the activation
memory peak drops.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import GPU
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer

CONFIG = ModelConfig(
    arch="gpt", hidden=128, num_layers=4, vocab_size=211, seq_len=64, head_dim=32
)
STEPS = 5


def run(offload: bool) -> dict:
    gpu = GPU()
    model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
    optimizer = SGD(model.parameters(), lr=5e-3)

    cache = None
    if offload:
        # The "few lines added to the existing script" (paper Sec. III-A):
        # build a cache over an SSD-backed offloader; the Trainer registers
        # the weights, attaches the hooks, and wires the scheduler hints.
        store_dir = tempfile.mkdtemp(prefix="ssdtrain-quickstart-")
        cache = TensorCache(
            SSDOffloader(store_dir),
            policy=OffloadPolicy(PolicyConfig(min_offload_numel=1024)),
        )

    trainer = Trainer(
        model,
        optimizer,
        gpu,
        strategy=PlacementStrategy.OFFLOAD if offload else PlacementStrategy.KEEP,
        cache=cache,
    )
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=7),
        batch_size=4,
        seq_len=CONFIG.seq_len,
        device=gpu,
    )

    losses, peaks, offloaded = [], [], 0
    try:
        for _ in range(STEPS):
            result = trainer.train_step([loader.next_batch()])
            losses.append(result.loss)
            peaks.append(result.activation_peak_bytes)
            offloaded += result.offloaded_bytes
    finally:
        trainer.close()
    return {"losses": losses, "peak": max(peaks[1:] or peaks), "offloaded": offloaded}


def main() -> None:
    print(f"Training GPT (H={CONFIG.hidden}, L={CONFIG.num_layers}) for {STEPS} steps\n")
    baseline = run(offload=False)
    ssdtrain = run(offload=True)

    print(f"{'step':>4} {'loss (keep)':>12} {'loss (SSDTrain)':>16}")
    for i, (a, b) in enumerate(zip(baseline["losses"], ssdtrain["losses"])):
        print(f"{i:>4} {a:>12.4f} {b:>16.4f}")

    reduction = 1 - ssdtrain["peak"] / baseline["peak"]
    print(f"\nactivation memory peak: {baseline['peak'] / 1e6:.2f} MB -> "
          f"{ssdtrain['peak'] / 1e6:.2f} MB  ({reduction:.0%} reduction)")
    print(f"bytes offloaded to 'SSD': {ssdtrain['offloaded'] / 1e6:.2f} MB")
    assert all(
        abs(a - b) < 1e-4 for a, b in zip(baseline["losses"], ssdtrain["losses"])
    ), "offloaded training must match the baseline exactly"
    print("losses identical: offloading is transparent to training. ✓")


if __name__ == "__main__":
    main()
