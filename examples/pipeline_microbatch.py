"""Pipeline bubbles, accumulation overhead, and the memory cap SSDTrain lifts.

Sec. IV-D: pipeline-parallel training keeps the micro-batch *count* high to
shrink bubbles, so the micro-batch *size* is set small (1 or 2 in BLOOM /
Paxml) — but "weight update and gradient accumulation cost is inversely
proportional to the micro-batch size".  Growing the micro-batch size at a
fixed count amortizes those overheads and raises GEMM efficiency, yet each
1F1B stage must then hold proportionally more activation memory — the cap
that SSDTrain's offloading removes.

Usage::

    python examples/pipeline_microbatch.py
"""

from __future__ import annotations

from repro.analysis.perf_model import model_step_perf
from repro.device.gpu import A100_PCIE_40GB
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig
from repro.train.pipeline import (
    ScheduleKind,
    ideal_bubble_fraction,
    max_resident_microbatches,
    simulate_pipeline,
)

MODEL = ModelConfig(arch="gpt", hidden=12288, num_layers=96, seq_len=2048)
PAR = ParallelismConfig(tp=8, pp=12, sequence_parallel=True)
NUM_MICROBATCHES = 32  # fixed count -> fixed bubble fraction
HBM_ACTIVATION_BUDGET = 18e9  # bytes per stage left for activations on a 40 GB A100


def main() -> None:
    stages = PAR.pp
    bubble = ideal_bubble_fraction(stages, NUM_MICROBATCHES)
    print(f"GPT-175B-like model, TP{PAR.tp} x PP{stages}, {NUM_MICROBATCHES} micro-batches "
          f"(bubble fixed at {bubble:.1%})\n")
    print(f"{'mb size':>7} {'throughput':>11} {'overhead':>9} {'1F1B stage memory':>18}  feasibility")

    resident_mb = max_resident_microbatches(ScheduleKind.ONE_F_ONE_B, stages, NUM_MICROBATCHES)
    rows = []
    for size in (1, 2, 4, 8):
        perf = model_step_perf(MODEL, size, A100_PCIE_40GB, PAR, num_microbatches=NUM_MICROBATCHES)
        overhead = (
            perf.weight_update_time_s + perf.accumulation_time_s
        ) / perf.step_time_s
        # 1F1B keeps up to `resident_mb` micro-batches of activations live
        # per stage.
        stage_memory = perf.activation_bytes_per_microbatch * resident_mb
        fits = stage_memory <= HBM_ACTIVATION_BUDGET
        rows.append((size, perf, stage_memory, fits))
        tag = "fits in HBM" if fits else "exceeds HBM -> needs SSDTrain"
        print(f"{size:>7} {perf.model_throughput_tflops():>8.1f} TF {overhead:>8.1%} "
              f"{stage_memory / 1e9:>15.1f} GB  {tag}")

    feasible = [r for r in rows if r[3]]
    best_overall = max(rows, key=lambda r: r[1].model_throughput_tflops())
    if feasible:
        best_no_offload = max(feasible, key=lambda r: r[1].model_throughput_tflops())
        gain = (
            best_overall[1].model_throughput_tflops()
            / best_no_offload[1].model_throughput_tflops()
            - 1
        )
        print(f"\nbest without offloading: micro-batch {best_no_offload[0]} "
              f"({best_no_offload[1].model_throughput_tflops():.1f} TF/s)")
        print(f"best with SSDTrain:      micro-batch {best_overall[0]} "
              f"({best_overall[1].model_throughput_tflops():.1f} TF/s)  -> +{gain:.1%}")
    else:
        print("\nno micro-batch size fits in HBM at all without offloading "
              "(this stage depth needs recompute or SSDTrain even at size 1)")
    small = rows[0][1].model_throughput_tflops()
    big = best_overall[1].model_throughput_tflops()
    print(f"BLOOM-style micro-batch 1 vs SSDTrain-enabled {best_overall[0]}: "
          f"+{big / small - 1:.1%} throughput")

    print("\nwhy 1F1B (and not GPipe) is the baseline schedule:")
    for kind in ScheduleKind:
        sched = simulate_pipeline(stages, NUM_MICROBATCHES, 1.0, 2.0, kind)
        resident = max_resident_microbatches(kind, stages, NUM_MICROBATCHES)
        print(f"  {kind.value:<6} step={sched.step_time:6.1f}  bubble={sched.bubble_fraction:5.1%}  "
              f"stage-0 activation inventory: {resident} micro-batches")


if __name__ == "__main__":
    main()
