"""Deployment planner: is activation offloading viable on YOUR cluster?

The Sec. III-D methodology as a tool: given a model, a parallelism layout,
and an SSD provisioning plan, project the required per-GPU PCIe write
bandwidth, the SSD lifespan, and the per-step activation volume — the three
numbers that decide whether SSDTrain deployment is sustainable.

Usage::

    python examples/deployment_planner.py
"""

from __future__ import annotations

from repro.analysis.configs import FIG5_CONFIGS, Fig5Config
from repro.analysis.ssd_model import project_deployment
from repro.device.ssd import SAMSUNG_980_PRO_1TB, SSDEnduranceModel, SSDSpec
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig


def plan(
    name: str,
    model: ModelConfig,
    parallelism: ParallelismConfig,
    microbatch_size: int,
    num_microbatches: int,
    ssd: SSDSpec = SAMSUNG_980_PRO_1TB,
    ssds_per_gpu: int = 4,
) -> None:
    config = Fig5Config(
        label=name,
        model=model,
        parallelism=parallelism,
        microbatch_size=microbatch_size,
        num_microbatches=num_microbatches,
        efficiency_derate=0.7,  # locked-clock calibration (see configs.py)
    )
    projection = project_deployment(config, ssd=ssd, ssds_per_gpu=ssds_per_gpu)
    array_bw = ssds_per_gpu * ssd.write_bw / 1e9
    headroom = array_bw / projection.required_write_bw_gbps
    verdict = "viable" if projection.lifespan_years > 2 and headroom > 1 else "NOT viable"
    print(f"{name}")
    print(f"  GPUs: {projection.num_gpus}   step time: {projection.step_time_s:.1f} s")
    print(f"  activations/GPU/step: {projection.activation_bytes_per_step / 1e9:.0f} GB")
    print(f"  required write BW:    {projection.required_write_bw_gbps:.1f} GB/s "
          f"(array provides {array_bw:.1f} GB/s, {headroom:.1f}x headroom)")
    print(f"  projected lifespan:   {projection.lifespan_years:.1f} years "
          f"({ssds_per_gpu}x {ssd.name})")
    print(f"  SSD capacity needed:  {projection.max_activation_bytes_per_gpu / 1e12:.2f} TB/GPU")
    print(f"  -> {verdict}\n")


def main() -> None:
    print("=== Fig. 5 configurations (paper's viability table) ===\n")
    for config in FIG5_CONFIGS[:3]:
        projection = project_deployment(config)
        print(projection.as_row())
    print("\n=== Custom plans ===\n")

    # A 70B-class model on a modest cluster.
    llama70b = ModelConfig(arch="gpt", hidden=8192, num_layers=80, seq_len=4096)
    plan(
        "70B on 64 GPUs (TP8 x PP8), micro-batch 4",
        llama70b,
        ParallelismConfig(tp=8, pp=8, dp=1),
        microbatch_size=4,
        num_microbatches=16,
    )

    # Same model with cheap low-endurance SSDs: lifespan collapses.
    consumer_ssd = SSDSpec(
        name="budget-QLC-1TB",
        capacity_bytes=10**12,
        write_bw_gbps=2.0,
        read_bw_gbps=3.0,
        write_latency_s=80e-6,
        read_latency_s=80e-6,
        rated_writes_bytes=200e12,  # 200 TBW
    )
    plan(
        "70B on 64 GPUs, budget QLC SSDs",
        llama70b,
        ParallelismConfig(tp=8, pp=8, dp=1),
        microbatch_size=4,
        num_microbatches=16,
        ssd=consumer_ssd,
        ssds_per_gpu=2,
    )

    # Endurance sensitivity: what the JESD-vs-sequential and retention
    # relaxation arguments buy (Sec. II-C).
    print("=== Endurance model sensitivity (Megatron 175B @ 384 GPUs) ===\n")
    for label, endurance in (
        ("JESD rating only (pessimistic)", SSDEnduranceModel(jesd_waf=1.0, retention_relaxation=1.0)),
        ("+ sequential-write bonus (WAF 2.5 -> 1)", SSDEnduranceModel(retention_relaxation=1.0)),
        ("+ retention relaxation 86x (paper)", SSDEnduranceModel()),
    ):
        projection = project_deployment(FIG5_CONFIGS[0], endurance=endurance)
        print(f"  {label:<42} lifespan {projection.lifespan_years:8.2f} years")


if __name__ == "__main__":
    main()
