"""Tests for the artifact-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "fig6" in capsys.readouterr().out


def test_fig1_runs(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "gpu_flops" in out and "growth" in out


def test_fig5_runs(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "Megatron 175B" in out and "ZeRO3" in out


def test_fig7_respects_hidden_flag(capsys):
    assert main(["fig7", "--hidden", "8192"]) == 0
    out = capsys.readouterr().out
    assert "offload" in out and "recompute" in out


def test_fig8a_runs(capsys):
    assert main(["fig8a"]) == 0
    assert "update" in capsys.readouterr().out


def test_fig8b_runs(capsys):
    assert main(["fig8b"]) == 0
    assert "reference" in capsys.readouterr().out


def test_table3_runs(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "offloaded" in out and "estimate" in out


def test_memory_zero_stages(capsys):
    assert main(["memory", "--zero", "3", "--layers", "4", "--hidden", "1024"]) == 0
    out = capsys.readouterr().out
    assert "optimizer" in out and "activations" in out


def test_fig2_renders_timeline(capsys):
    assert main(["fig2", "--hidden", "8192"]) == 0
    out = capsys.readouterr().out
    assert "gpu" in out and "store" in out


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["not-a-figure"])


def test_tiers_sweeps_cpu_pool(capsys):
    assert main(["tiers", "--hidden", "8192"]) == 0
    out = capsys.readouterr().out
    assert "CPU pool" in out and "SSD BW req" in out


def test_tiers_single_pool_row(capsys):
    assert main(["tiers", "--hidden", "8192", "--cpu-pool-bytes", str(4 * 2**30)]) == 0
    assert out_has_one_data_row(capsys.readouterr().out)


def out_has_one_data_row(out: str) -> bool:
    rows = [l for l in out.splitlines() if l.strip().endswith("GB/s")]
    return len(rows) == 1


def test_parser_accepts_offload_target_axes():
    parser = build_parser()
    args = parser.parse_args(
        ["quickstart", "--target", "tiered",
         "--cpu-pool-bytes", "262144", "--chunk-bytes", "65536"]
    )
    assert args.target == "tiered"
    assert args.cpu_pool_bytes == 262144
    assert args.chunk_bytes == 65536
    with pytest.raises(SystemExit):
        parser.parse_args(["quickstart", "--target", "tape"])


def test_quickstart_three_tier_run(capsys):
    """Acceptance: a GPU/CPU/SSD run is drivable straight from the CLI."""
    assert main(
        ["quickstart", "--target", "tiered",
         "--cpu-pool-bytes", "262144", "--chunk-bytes", "65536"]
    ) == 0
    out = capsys.readouterr().out
    assert "tier traffic" in out
    assert "losses identical" in out


def test_autotune_step_drop_ab(capsys):
    """The controller A/B is drivable from the CLI and visibly beats the
    static budget after the drift."""
    assert main(["autotune", "--hidden", "8192", "--steps", "10", "--drift-step", "5"]) == 0
    out = capsys.readouterr().out
    assert "one-shot budget" in out
    assert "retuned" in out
    assert "post-drift backward stall" in out


def test_autotune_scenario_axes(capsys):
    parser = build_parser()
    args = parser.parse_args(["autotune", "--scenario", "ramp", "--factor", "0.4"])
    assert args.scenario == "ramp" and args.factor == 0.4
    with pytest.raises(SystemExit):
        parser.parse_args(["autotune", "--scenario", "spike"])
    assert main(["autotune", "--hidden", "8192", "--scenario", "microbatch",
                 "--steps", "8", "--drift-step", "4"]) == 0
    assert "scenario: microbatch" in capsys.readouterr().out


def test_serve_parser_args():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--steps", "6", "--kill-step", "2", "--budget-step", "-1",
         "--seed", "7"]
    )
    assert (args.steps, args.kill_step, args.budget_step) == (6, 2, -1)
    assert args.seed == 7 and args.store_dir is None


def test_serve_command_runs_the_supervised_demo(tmp_path, capsys):
    assert main(
        ["serve", "--steps", "6", "--kill-step", "2", "--budget-step", "4",
         "--store-dir", str(tmp_path / "store")]
    ) == 0
    out = capsys.readouterr().out
    assert "supervised restarts: 1" in out
    assert "manifest records replayed" in out
    assert "bit-exact" in out and "✓" in out
