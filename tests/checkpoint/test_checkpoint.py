"""Tests for activation checkpointing (the recomputation baseline)."""

import gc

import numpy as np
import pytest

from repro.checkpoint import checkpoint, checkpoint_sequential
from repro.device import MemoryTag
from repro.nn.transformer import TransformerLayer
from repro.tensor import no_grad, ops
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


def _layers(n=3, hidden=16, seed=0):
    return [
        TransformerLayer(hidden, 4, rng=np.random.default_rng(seed + i))
        for i in range(n)
    ]


def _x(gpu=None, shape=(2, 8, 16), seed=1):
    data = np.random.default_rng(seed).standard_normal(shape).astype(np.float32)
    if gpu is None:
        return Tensor(data, requires_grad=True)
    return Tensor(data, device=gpu, requires_grad=True)


def test_checkpoint_matches_plain_execution():
    layers = _layers()
    x_plain = _x()
    out_plain = x_plain
    for layer in layers:
        out_plain = layer(out_plain)
    out_plain.sum().backward()

    x_ck = _x()
    out_ck = checkpoint_sequential(layers2 := _layers(), x_ck)
    out_ck.sum().backward()

    assert np.allclose(out_plain.data, out_ck.data, atol=1e-5)
    assert np.allclose(x_plain.grad.data, x_ck.grad.data, atol=1e-5)
    for (n1, p1), (n2, p2) in zip(
        _named(layers), _named(layers2)
    ):
        assert np.allclose(p1.grad.data, p2.grad.data, atol=1e-5), n1


def _named(layers):
    for i, layer in enumerate(layers):
        for name, p in layer.named_parameters():
            yield f"{i}.{name}", p


def test_checkpoint_reduces_activation_memory(gpu):
    def run(ck):
        gpu.ledger.reset_peak()
        layers = [
            TransformerLayer(32, 4, rng=np.random.default_rng(i)).to(gpu)
            for i in range(4)
        ]
        x = _x(gpu, (4, 16, 32))
        out = checkpoint_sequential(layers, x) if ck else _chain(layers, x)
        out.sum().backward()
        gc.collect()
        return gpu.ledger.peak(MemoryTag.ACTIVATIONS)

    assert run(True) < 0.7 * run(False)


def _chain(layers, x):
    for layer in layers:
        x = layer(x)
    return x


def test_checkpoint_executed_flops_double_not_algorithmic(gpu):
    layers = [TransformerLayer(16, 4, rng=np.random.default_rng(0)).to(gpu)]
    x = _x(gpu)
    gpu.reset_counters()
    checkpoint_sequential(layers, x).sum().backward()
    # fwd (1x) + recompute (1x) + bwd (2x) executed; algorithmic = 3x fwd.
    assert gpu.flops_executed > 1.2 * gpu.algorithmic_flops


def test_checkpoint_under_no_grad_is_plain_call():
    layer = TransformerLayer(16, 4, rng=np.random.default_rng(0))
    with no_grad():
        out = checkpoint(layer, _x())
    assert out.grad_fn is None


def test_checkpoint_with_non_tensor_args():
    def fn(x, scale):
        return ops.scale(ops.gelu(x), scale)

    x = _x()
    out = checkpoint(fn, x, 2.0)
    out.sum().backward()
    assert x.grad is not None


def test_checkpoint_rejects_non_tensor_output():
    with pytest.raises(TypeError):
        checkpoint(lambda x: (x, x), _x())


def test_nested_checkpoint_grads_correct():
    """Checkpoint inside checkpoint (recompute within recompute)."""
    inner_layer = TransformerLayer(16, 4, rng=np.random.default_rng(0))
    outer_layer = TransformerLayer(16, 4, rng=np.random.default_rng(1))

    def inner(x):
        return checkpoint(inner_layer, x)

    def outer(x):
        return outer_layer(inner(x))

    x1 = _x()
    checkpoint(outer, x1).sum().backward()

    x2 = _x()
    outer_plain = outer_layer(inner_layer(x2))
    outer_plain.sum().backward()
    assert np.allclose(x1.grad.data, x2.grad.data, atol=1e-5)


def test_checkpoint_plus_offload_cache(gpu, make_cache):
    """Recompute + offload combine: recomputed activations are kept (the
    Alg. 1 in-backward condition), while checkpoint inputs offload."""
    layers = [
        TransformerLayer(32, 4, rng=np.random.default_rng(i)).to(gpu)
        for i in range(3)
    ]
    cache = make_cache()
    holder = Module()
    for i, l in enumerate(layers):
        holder.register_module(str(i), l)
    cache.register_weights(holder)
    cache.attach(holder)
    x = _x(gpu, (4, 32, 32))
    with cache:
        out = checkpoint_sequential(layers, x)
        loss = out.sum()
        cache.on_backward_begin()
        loss.backward()
        cache.on_backward_end()
    cache.on_step_end()
    assert x.grad is not None
    # Recomputed tensors were kept, not stored twice.
    assert cache.stats.kept_tensors > 0
