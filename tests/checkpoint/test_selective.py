"""Tests for selective checkpointing and the Sec. IV-C FlashAttention claim."""

import gc

import numpy as np
import pytest

from repro.checkpoint.selective import (
    attention_intermediate_bytes,
    selective_checkpoint_attention,
    selective_checkpoint_savings,
)
from repro.device import MemoryTag
from repro.nn.attention import MultiHeadAttention
from repro.tensor.tensor import Tensor


def _run_attention(gpu, selective, seed=0):
    attn = MultiHeadAttention(32, 4, causal=True, rng=np.random.default_rng(seed)).to(gpu)
    if selective:
        selective_checkpoint_attention(attn)
    x = Tensor(
        np.random.default_rng(1).standard_normal((2, 16, 32)).astype(np.float32),
        device=gpu,
        requires_grad=True,
    )
    gpu.ledger.reset_peak()
    attn(x).sum().backward()
    gc.collect()
    grads = {n: p.grad.data.copy() for n, p in attn.named_parameters()}
    return x.grad.data.copy(), grads, gpu.ledger.peak(MemoryTag.ACTIVATIONS)


def test_selective_checkpoint_preserves_gradients(gpu):
    xg0, g0, _ = _run_attention(gpu, selective=False)
    xg1, g1, _ = _run_attention(gpu, selective=True)
    assert np.allclose(xg0, xg1, atol=1e-5)
    for name in g0:
        assert np.allclose(g0[name], g1[name], atol=1e-5), name


def test_selective_with_flash_changes_little(gpu):
    """Sec. IV-C: with FlashAttention the core attention saves only Q/K/V,
    so selective checkpointing reclaims (almost) nothing."""
    _, _, peak_plain = _run_attention(gpu, selective=False)
    _, _, peak_selective = _run_attention(gpu, selective=True)
    assert abs(peak_selective - peak_plain) / peak_plain < 0.15


def test_intermediate_bytes_fused_vs_unfused():
    fused = attention_intermediate_bytes(8, 16, 2048, 128, fused=True)
    unfused = attention_intermediate_bytes(8, 16, 2048, 128, fused=False)
    # Unfused adds two (B, H, S, S) tensors, dominating at long sequences.
    assert unfused > 3 * fused
    assert fused == 3 * 8 * 16 * 2048 * 128 * 2


def test_savings_fraction():
    assert selective_checkpoint_savings(8, 16, 2048, 128, fused=True) == 0.0
    unfused = selective_checkpoint_savings(8, 16, 2048, 128, fused=False)
    assert 0.8 < unfused < 1.0
    # Savings grow with sequence length (the S^2 term).
    shorter = selective_checkpoint_savings(8, 16, 256, 128, fused=False)
    assert unfused > shorter


def test_validation():
    with pytest.raises(ValueError):
        attention_intermediate_bytes(0, 1, 1, 1)
