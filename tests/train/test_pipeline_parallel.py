"""Tests for pipeline schedules and parallelism cost models."""

import pytest

from repro.train.parallel import ParallelismConfig, ZeroStage
from repro.train.pipeline import (
    ScheduleKind,
    ideal_bubble_fraction,
    max_resident_microbatches,
    simulate_pipeline,
)


# -------------------------------------------------------------------- pipeline
def test_single_stage_has_no_bubble():
    sched = simulate_pipeline(1, 4, 1.0, 2.0)
    assert sched.bubble_time == pytest.approx(0.0, abs=1e-9)
    assert sched.step_time == pytest.approx(12.0)


def test_gpipe_matches_closed_form():
    p, m, tf, tb = 4, 8, 1.0, 2.0
    sched = simulate_pipeline(p, m, tf, tb, ScheduleKind.GPIPE)
    # T = (m + p - 1) * (tf + tb)
    assert sched.step_time == pytest.approx((m + p - 1) * (tf + tb))
    assert sched.bubble_fraction == pytest.approx(ideal_bubble_fraction(p, m))


def test_1f1b_matches_closed_form():
    p, m, tf, tb = 4, 8, 1.0, 2.0
    sched = simulate_pipeline(p, m, tf, tb, ScheduleKind.ONE_F_ONE_B)
    assert sched.step_time == pytest.approx((m + p - 1) * (tf + tb))


def test_bubble_shrinks_with_more_microbatches():
    fracs = [
        simulate_pipeline(4, m, 1.0, 2.0, ScheduleKind.ONE_F_ONE_B).bubble_fraction
        for m in (1, 2, 4, 8, 16)
    ]
    assert all(a > b for a, b in zip(fracs, fracs[1:]))


def test_paper_bloom_bubble_example():
    """Sec. IV-D: BLOOM-style setup — mini-batch of 32 per DP rank; with
    micro-batch size >= 4 (i.e. <= 8 micro-batches), the ideal bubble is
    >= 11.5% for the BLOOM pipeline depth (12 stages)."""
    assert ideal_bubble_fraction(12, 8) >= 0.115


def test_1f1b_bounds_resident_microbatches():
    """The reason 1F1B is preferred: stage 0 of GPipe holds all m
    micro-batches' activations, 1F1B at most p."""
    assert max_resident_microbatches(ScheduleKind.GPIPE, 4, 16) == 16
    assert max_resident_microbatches(ScheduleKind.ONE_F_ONE_B, 4, 16) == 4
    assert max_resident_microbatches(ScheduleKind.ONE_F_ONE_B, 4, 2) == 2


def test_pipeline_task_dependencies_hold():
    sched = simulate_pipeline(3, 4, 1.0, 2.0, ScheduleKind.ONE_F_ONE_B)
    f_end = {}
    b_end = {}
    for t in sched.tasks:
        if t.kind == "F":
            f_end[(t.stage, t.microbatch)] = t.end
        else:
            b_end[(t.stage, t.microbatch)] = t.end
    for (s, m), end in f_end.items():
        if s > 0:
            assert f_end[(s - 1, m)] <= end - 1.0 + 1e-9  # F dep
    for (s, m), end in b_end.items():
        assert f_end[(s, m)] <= end - 2.0 + 1e-9
        if s < 2:
            assert b_end[(s + 1, m)] <= end - 2.0 + 1e-9


def test_pipeline_no_stage_overlap():
    sched = simulate_pipeline(3, 5, 1.0, 2.0, ScheduleKind.ONE_F_ONE_B)
    by_stage = {}
    for t in sched.tasks:
        by_stage.setdefault(t.stage, []).append((t.start, t.end))
    for intervals in by_stage.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9


def test_pipeline_validation():
    with pytest.raises(ValueError):
        simulate_pipeline(0, 1, 1.0, 1.0)
    with pytest.raises(ValueError):
        simulate_pipeline(1, 1, 0.0, 1.0)
    with pytest.raises(ValueError):
        ideal_bubble_fraction(0, 1)


# ------------------------------------------------------------------- parallel
def test_num_gpus():
    par = ParallelismConfig(tp=8, pp=12, dp=4)
    assert par.num_gpus == 384  # the Megatron 175B config


def test_params_sharding():
    par = ParallelismConfig(tp=8, pp=12, dp=4)
    assert par.params_per_gpu(96e9) == pytest.approx(1e9)
    zero3 = ParallelismConfig(tp=8, dp=48, zero_stage=ZeroStage.WEIGHTS)
    assert zero3.params_per_gpu(384e9) == pytest.approx(1e9)


def test_layers_per_stage_ceil():
    assert ParallelismConfig(pp=4).layers_per_gpu(10) == 3


def test_tp_comm_zero_without_tp():
    par = ParallelismConfig(tp=1)
    assert par.tp_comm_time_per_layer(8, 1024, 4096) == 0.0


def test_tp_comm_positive_and_scales_with_payload():
    par = ParallelismConfig(tp=4)
    small = par.tp_comm_time_per_layer(1, 1024, 4096)
    big = par.tp_comm_time_per_layer(8, 1024, 4096)
    assert 0 < small < big


def test_zero_comm_requires_stage3_and_dp():
    no_zero = ParallelismConfig(dp=8)
    assert no_zero.zero_comm_time_per_layer(1e9) == 0.0
    zero3_dp1 = ParallelismConfig(dp=1, zero_stage=ZeroStage.WEIGHTS)
    assert zero3_dp1.zero_comm_time_per_layer(1e9) == 0.0
    zero3 = ParallelismConfig(dp=8, zero_stage=ZeroStage.WEIGHTS)
    assert zero3.zero_comm_time_per_layer(1e9) > 0


def test_optimizer_state_sharding():
    assert ParallelismConfig(dp=4).optimizer_state_factor() == 1.0
    assert (
        ParallelismConfig(dp=4, zero_stage=ZeroStage.OPTIMIZER).optimizer_state_factor()
        == 0.25
    )


def test_parallel_validation():
    with pytest.raises(ValueError):
        ParallelismConfig(tp=0)
