"""Tests for the trainer and the three placement strategies."""

import numpy as np
import pytest

from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer


def _trainer(gpu, config, strategy, tmp_path=None, num_microbatches=1):
    model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
    opt = SGD(model.parameters(), lr=1e-3)
    cache = None
    if strategy is PlacementStrategy.OFFLOAD:
        cache = TensorCache(
            SSDOffloader(tmp_path / "trainer"),
            policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
        )
    return Trainer(
        model, opt, gpu, strategy=strategy, cache=cache, num_microbatches=num_microbatches
    )


def _batches(gpu, config, n, seed=0):
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=config.vocab_size, seed=seed),
        batch_size=2,
        seq_len=config.seq_len,
        device=gpu,
    )
    return [loader.next_batch() for _ in range(n)]


def test_keep_strategy_step(gpu, tiny_gpt_config):
    trainer = _trainer(gpu, tiny_gpt_config, PlacementStrategy.KEEP)
    result = trainer.train_step(_batches(gpu, tiny_gpt_config, 1))
    assert np.isfinite(result.loss)
    assert result.step_time_s > 0
    assert result.activation_peak_bytes > 0
    assert result.algorithmic_flops > 0
    assert result.offloaded_bytes == 0


def test_offload_strategy_step(gpu, tiny_gpt_config, tmp_path):
    trainer = _trainer(gpu, tiny_gpt_config, PlacementStrategy.OFFLOAD, tmp_path)
    try:
        result = trainer.train_step(_batches(gpu, tiny_gpt_config, 1))
        assert result.offloaded_bytes > 0
        assert np.isfinite(result.loss)
    finally:
        trainer.close()


def test_recompute_strategy_executes_more_flops(gpu, tiny_gpt_config):
    keep = _trainer(gpu, tiny_gpt_config, PlacementStrategy.KEEP)
    r_keep = keep.train_step(_batches(gpu, tiny_gpt_config, 1))
    rec_cfg = tiny_gpt_config.scaled(recompute=True)
    rec = _trainer(gpu, rec_cfg, PlacementStrategy.RECOMPUTE)
    r_rec = rec.train_step(_batches(gpu, rec_cfg, 1))
    assert r_rec.executed_flops > 1.2 * r_keep.executed_flops
    assert r_rec.algorithmic_flops == pytest.approx(r_keep.algorithmic_flops, rel=1e-6)


def test_all_strategies_same_loss(gpu, tiny_gpt_config, tmp_path):
    batches = _batches(gpu, tiny_gpt_config, 1)
    losses = {}
    for strategy in PlacementStrategy:
        config = tiny_gpt_config.scaled(
            recompute=strategy is PlacementStrategy.RECOMPUTE
        )
        trainer = _trainer(gpu, config, strategy, tmp_path)
        try:
            losses[strategy] = trainer.train_step(batches).loss
        finally:
            trainer.close()
    vals = list(losses.values())
    assert all(v == pytest.approx(vals[0], abs=1e-5) for v in vals)


def test_gradient_accumulation_equivalence(gpu, tiny_gpt_config):
    """2 micro-batches with loss/2 each must equal averaging the losses."""
    batches = _batches(gpu, tiny_gpt_config, 2)

    # Accumulated run.
    model_a = GPT(tiny_gpt_config, rng=np.random.default_rng(0)).to(gpu)
    opt_a = SGD(model_a.parameters(), lr=1.0)
    trainer = Trainer(model_a, opt_a, gpu, num_microbatches=2)
    result = trainer.train_step(batches)

    # Manual equivalent.
    model_b = GPT(tiny_gpt_config, rng=np.random.default_rng(0)).to(gpu)
    for tokens, targets in batches:
        (model_b(tokens, targets) * 0.5).backward()
    grads_b = {n: p.grad.data.copy() for n, p in model_b.named_parameters()}
    # trainer applied opt.step() with lr=1: w_after = w_before - grad
    model_c = GPT(tiny_gpt_config, rng=np.random.default_rng(0)).to(gpu)
    for (name_a, p_a), (name_c, p_c) in zip(
        model_a.named_parameters(), model_c.named_parameters()
    ):
        np.testing.assert_allclose(
            p_a.data, p_c.data - grads_b[name_a], rtol=1e-4, atol=1e-5
        )


def test_trainer_validation(gpu, tiny_gpt_config, tmp_path):
    model = GPT(tiny_gpt_config).to(gpu)
    opt = SGD(model.parameters(), lr=1e-3)
    with pytest.raises(ValueError):
        Trainer(model, opt, gpu, strategy=PlacementStrategy.OFFLOAD, cache=None)
    cache = TensorCache(SSDOffloader(tmp_path / "v"))
    try:
        with pytest.raises(ValueError):
            Trainer(model, opt, gpu, strategy=PlacementStrategy.KEEP, cache=cache)
    finally:
        cache.shutdown()


def test_wrong_microbatch_count_rejected(gpu, tiny_gpt_config):
    trainer = _trainer(gpu, tiny_gpt_config, PlacementStrategy.KEEP, num_microbatches=2)
    with pytest.raises(ValueError):
        trainer.train_step(_batches(gpu, tiny_gpt_config, 1))


def test_offload_trainer_multi_step_loss_decreases(gpu, tmp_path):
    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=61, seq_len=16, head_dim=16
    )
    trainer = _trainer(gpu, config, PlacementStrategy.OFFLOAD, tmp_path)
    try:
        losses = [
            trainer.train_step(_batches(gpu, config, 1, seed=s)).loss
            for s in range(6)
        ]
        assert min(losses[3:]) < losses[0]
    finally:
        trainer.close()


def test_offload_trainer_with_microbatches(gpu, tiny_gpt_config, tmp_path):
    trainer = _trainer(
        gpu, tiny_gpt_config, PlacementStrategy.OFFLOAD, tmp_path, num_microbatches=2
    )
    try:
        result = trainer.train_step(_batches(gpu, tiny_gpt_config, 2))
        assert np.isfinite(result.loss)
        assert result.offloaded_bytes > 0
    finally:
        trainer.close()


def test_step_result_throughput(gpu, tiny_gpt_config):
    trainer = _trainer(gpu, tiny_gpt_config, PlacementStrategy.KEEP)
    result = trainer.train_step(_batches(gpu, tiny_gpt_config, 1))
    assert result.model_throughput_tflops() > 0
