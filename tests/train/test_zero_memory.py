"""Tests for the ZeRO memory breakdown model."""

import pytest

from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig, ZeroStage
from repro.train.zero_memory import max_microbatch_size, zero_memory_breakdown

CFG = ModelConfig(arch="gpt", hidden=12288, num_layers=24, seq_len=1024)


def test_breakdown_categories_positive():
    b = zero_memory_breakdown(CFG, 8)
    assert b.parameters > 0 and b.gradients > 0 and b.optimizer > 0
    assert b.activations > 0
    assert b.total == pytest.approx(b.others + b.activations)


def test_zero_stages_shard_progressively():
    par = lambda stage: ParallelismConfig(dp=8, zero_stage=stage)
    none = zero_memory_breakdown(CFG, 8, par(ZeroStage.NONE))
    s1 = zero_memory_breakdown(CFG, 8, par(ZeroStage.OPTIMIZER))
    s2 = zero_memory_breakdown(CFG, 8, par(ZeroStage.GRADS))
    s3 = zero_memory_breakdown(CFG, 8, par(ZeroStage.WEIGHTS))
    # Stage 1 shards optimizer only.
    assert s1.optimizer == pytest.approx(none.optimizer / 8)
    assert s1.gradients == none.gradients
    # Stage 2 adds gradients.
    assert s2.gradients == pytest.approx(none.gradients / 8)
    assert s2.parameters == none.parameters
    # Stage 3 adds parameters.
    assert s3.parameters == pytest.approx(none.parameters / 8)
    # Activations are never sharded by ZeRO.
    assert s3.activations == none.activations


def test_zero_without_dp_is_noop():
    s3 = zero_memory_breakdown(
        CFG, 8, ParallelismConfig(dp=1, zero_stage=ZeroStage.WEIGHTS)
    )
    none = zero_memory_breakdown(CFG, 8)
    assert s3.parameters == none.parameters


def test_tp_pp_shard_everything_resident():
    none = zero_memory_breakdown(CFG, 8)
    sharded = zero_memory_breakdown(CFG, 8, ParallelismConfig(tp=2, pp=2))
    assert sharded.parameters == pytest.approx(none.parameters / 4)
    assert sharded.activations < none.activations  # layers/TP split


def test_activation_dominance_in_recent_llm_configs():
    """Sec. I: "About 80% of the GPU memory used to train recent LLMs
    consists of activations" — holds once optimizer state is ZeRO-sharded
    across the DP group (standard in those systems)."""
    par = ParallelismConfig(tp=8, dp=8, zero_stage=ZeroStage.OPTIMIZER)
    b = zero_memory_breakdown(CFG, 32, par)
    assert b.activation_fraction > 0.7


def test_paper_fp16_sgd_recipe_shrinks_others():
    adam = zero_memory_breakdown(CFG, 8)
    sgd = zero_memory_breakdown(CFG, 8, optimizer_bytes_per_param=0.0)
    assert sgd.others < adam.others
    assert sgd.optimizer == 0.0


def test_offload_fraction_scales_activations():
    full = zero_memory_breakdown(CFG, 8)
    half = zero_memory_breakdown(CFG, 8, offload_fraction=0.5)
    assert half.activations == pytest.approx(full.activations / 2)
    with pytest.raises(ValueError):
        zero_memory_breakdown(CFG, 8, offload_fraction=1.5)


def test_max_microbatch_grows_with_offloading():
    budget = 40 * 1024**3  # one A100
    par = ParallelismConfig(tp=8, dp=8, zero_stage=ZeroStage.OPTIMIZER)
    without = max_microbatch_size(CFG, budget, parallelism=par)
    with_offload = max_microbatch_size(
        CFG, budget, parallelism=par, offload_fraction=0.8
    )
    assert with_offload > without >= 1


def test_max_microbatch_zero_when_weights_dont_fit():
    tiny_budget = 1024**3  # 1 GiB cannot hold a 24-layer 12288 model
    assert max_microbatch_size(CFG, tiny_budget) == 0
    with pytest.raises(ValueError):
        max_microbatch_size(CFG, 0)


def test_as_dict_roundtrip():
    b = zero_memory_breakdown(CFG, 4)
    d = b.as_dict()
    assert set(d) == {"parameters", "gradients", "optimizer", "activations"}
    assert sum(d.values()) == pytest.approx(b.total)
