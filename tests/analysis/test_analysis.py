"""Tests for the analytic models: perf, SSD projections, scaling, microbatch."""

import pytest

from repro.analysis.configs import FIG5_CONFIGS, MEGATRON_175B
from repro.analysis.microbatch import microbatch_breakdown, upscaling_write_bandwidth
from repro.analysis.perf_model import (
    TierTransferModel,
    layer_activation_inventory,
    layer_param_count,
    model_param_count,
    model_step_perf,
    transformer_layer_perf,
    weight_update_time,
)
from repro.analysis.scaling import (
    activation_growth_exponent,
    checkpointed_activation_growth_exponent,
    fig1_series,
    memory_to_compute_growth_ratio,
    others_growth_exponent,
)
from repro.analysis.ssd_model import project_all_fig5, project_deployment
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig


CFG = ModelConfig(arch="bert", hidden=12288, num_layers=3, seq_len=1024)


# ------------------------------------------------------------------ perf model
def test_inventory_totals_32bsh_fp16():
    """Per layer: 16 x bsh elements = 32 bsh bytes in FP16 (tp=1)."""
    inv = layer_activation_inventory(CFG, batch=16)
    bsh = 16 * 1024 * 12288
    assert sum(t.nbytes for t in inv) == 32 * bsh


def test_inventory_tp_shards_internals_only():
    full = layer_activation_inventory(CFG, 16, tp=1)
    tp2 = layer_activation_inventory(CFG, 16, tp=2)
    by_name = {t.name: t.nbytes for t in tp2}
    full_by_name = {t.name: t.nbytes for t in full}
    assert by_name["attn_q"] == full_by_name["attn_q"] // 2
    assert by_name["ln_attn_in"] == full_by_name["ln_attn_in"]  # residual path


def test_inventory_sequence_parallel_shards_everything():
    sp = layer_activation_inventory(CFG, 16, tp=4, sequence_parallel=True)
    full = layer_activation_inventory(CFG, 16, tp=1)
    assert sum(t.nbytes for t in sp) == sum(t.nbytes for t in full) // 4


def test_inventory_cross_attention_adds_tensors():
    plain = layer_activation_inventory(CFG, 16)
    cross = layer_activation_inventory(CFG, 16, cross_attention=True)
    assert len(cross) == len(plain) + 5
    assert sum(t.nbytes for t in cross) > sum(t.nbytes for t in plain)


def test_layer_param_count():
    assert layer_param_count(CFG) == 12 * 12288**2
    assert layer_param_count(CFG, cross_attention=True) == 16 * 12288**2


def test_model_param_count_gpt3_scale():
    params = model_param_count(MEGATRON_175B)
    assert 165e9 < params < 185e9  # ~175B


def test_backward_twice_forward():
    perf = transformer_layer_perf(CFG, 16)
    assert perf.backward_time_s == pytest.approx(2 * perf.forward_time_s, rel=0.05)


def test_step_perf_scales_with_microbatches():
    one = model_step_perf(CFG, 16, num_microbatches=1)
    four = model_step_perf(CFG, 16, num_microbatches=4)
    assert four.activation_bytes_per_step == 4 * one.activation_bytes_per_step
    # Compute scales 4x; update is paid once.
    assert four.compute_time_s == pytest.approx(4 * one.compute_time_s, rel=1e-6)
    assert four.weight_update_time_s == one.weight_update_time_s


def test_step_perf_pp_adds_bubbles():
    flat = model_step_perf(CFG, 16, parallelism=ParallelismConfig(pp=1))
    cfg24 = ModelConfig(arch="bert", hidden=12288, num_layers=24, seq_len=1024)
    piped = model_step_perf(
        cfg24, 16, parallelism=ParallelismConfig(pp=8), num_microbatches=4
    )
    assert flat.bubble_time_s == 0.0
    assert piped.bubble_time_s > 0.0


def test_required_write_bandwidth_definition():
    perf = model_step_perf(CFG, 16)
    bw = perf.required_write_bandwidth()
    assert bw == pytest.approx(
        perf.activation_bytes_per_step / (perf.step_time_s / 2)
    )


def test_weight_update_independent_of_batch():
    # The Fig. 8(a) premise.
    assert weight_update_time(1e9) == weight_update_time(1e9)
    assert weight_update_time(2e9) > weight_update_time(1e9)


def test_table3_estimate_close_to_simulated_offload():
    """Table III: the model estimate tracks the measured offload within ~15%."""
    from repro.sim import build_segments

    par = ParallelismConfig(tp=2)
    for hidden, layers in ((8192, 4), (12288, 3), (16384, 2)):
        cfg = ModelConfig(arch="bert", hidden=hidden, num_layers=layers, seq_len=1024)
        estimate = model_step_perf(cfg, 16, parallelism=par).activation_bytes_per_microbatch
        segments = build_segments(cfg, 16, parallelism=par)
        simulated = sum(s.activation_bytes for s in segments)
        assert abs(estimate - simulated) / simulated < 0.15


# ------------------------------------------------------------------------ fig5
def test_fig5_all_configs_viable():
    """The paper's headline: lifespan > 2 years, write bw bounded, max
    activations within SSD capacity, in every configuration."""
    projections = project_all_fig5()
    assert len(projections) == 12
    for p in projections:
        assert p.lifespan_years > 2.0, p.label
        assert p.required_write_bw_gbps < 20.0, p.label  # 4x SSD array covers
        assert p.max_activation_bytes_per_gpu < 4 * 1e12, p.label  # fits 4TB


def test_fig5_bandwidth_decreases_with_scale():
    """'when the system size ... scales up, the required PCIe write
    bandwidth reduces, and the projected lifespan increases'."""
    projections = project_all_fig5()
    by_family = {}
    for p in projections:
        family = p.label.rsplit("@", 1)[0]
        by_family.setdefault(family, []).append(p)
    for family, points in by_family.items():
        points.sort(key=lambda p: p.num_gpus)
        bws = [p.required_write_bw_gbps for p in points]
        lifespans = [p.lifespan_years for p in points]
        assert all(a >= b for a, b in zip(bws, bws[1:])), family
        assert all(a <= b for a, b in zip(lifespans, lifespans[1:])), family


def test_fig5_max_activation_range():
    projections = project_all_fig5()
    tb = [p.max_activation_bytes_per_gpu / 1e12 for p in projections]
    # Paper: 0.4 - 1.8 TB; allow a generous band around it.
    assert 0.1 < min(tb) and max(tb) < 2.5


def test_fig5_respects_custom_endurance():
    from repro.device.ssd import SSDEnduranceModel

    harsh = SSDEnduranceModel(retention_relaxation=1.0)
    p_relaxed = project_deployment(FIG5_CONFIGS[0])
    p_harsh = project_deployment(FIG5_CONFIGS[0], endurance=harsh)
    assert p_harsh.lifespan_years < p_relaxed.lifespan_years / 50


# --------------------------------------------------------------------- scaling
def test_fig1_growth_rates():
    series = fig1_series()
    assert series["gpu_flops"]["growth_per_year"] > series["gpu_memory"]["growth_per_year"]
    assert series["llm_size"]["growth_per_year"] > series["gpu_memory"]["growth_per_year"]


def test_memory_grows_at_fraction_of_compute():
    # Paper: ~41%; our database lands in the same regime.
    ratio = memory_to_compute_growth_ratio()
    assert 0.25 < ratio < 0.55


def test_activation_exponent_five_sixths():
    assert activation_growth_exponent() == pytest.approx(5.0 / 6.0)


def test_activations_outgrow_others_even_with_checkpointing():
    # Sec. II-B's closing argument.
    assert activation_growth_exponent() > others_growth_exponent()
    assert checkpointed_activation_growth_exponent() > others_growth_exponent()


# ------------------------------------------------------------------ microbatch
def test_fig8a_update_saving_dominates():
    rows = microbatch_breakdown(CFG, parallelism=ParallelismConfig(tp=2))
    for row in rows:
        assert row.total_improvement > 0
        assert row.update_saving_improvement > row.efficiency_improvement
        assert row.total_improvement == pytest.approx(
            row.update_saving_improvement + row.efficiency_improvement, rel=1e-6
        )


def test_fig8a_improvement_grows_with_batch():
    rows = microbatch_breakdown(CFG, parallelism=ParallelismConfig(tp=2))
    improvements = [r.total_improvement for r in rows]
    assert improvements == sorted(improvements)


def test_fig8b_all_below_reference():
    """'In all projected cases, the write bandwidth per GPU is smaller than
    the original 2-GPU case.'"""
    reference, points = upscaling_write_bandwidth()
    assert reference > 0
    for p in points:
        assert p.write_bandwidth_gbps < reference, p.label


def test_fig8b_pp_reduces_bandwidth():
    _, points = upscaling_write_bandwidth()
    tp8 = [p for p in points if p.tp == 8]
    tp8.sort(key=lambda p: p.pp)
    bws = [p.write_bandwidth_gbps for p in tp8]
    assert all(a >= b for a, b in zip(bws, bws[1:]))


# --------------------------------------------------------- TierTransferModel
def test_tier_transfer_split():
    model = TierTransferModel(cpu_pool_bytes=4 * 10**9, ssd_bandwidth=10e9)
    assert model.split(6 * 10**9) == (4 * 10**9, 2 * 10**9)
    assert model.split(3 * 10**9) == (3 * 10**9, 0)
    assert TierTransferModel(cpu_pool_bytes=0, ssd_bandwidth=10e9).split(5) == (0, 5)


def test_tier_transfer_time_is_slower_channel():
    model = TierTransferModel(
        cpu_pool_bytes=4 * 10**9, ssd_bandwidth=10e9, cpu_bandwidth=20e9
    )
    # 4 GB over CPU at 20 GB/s = 0.2 s; 6 GB over SSD at 10 GB/s = 0.6 s.
    assert model.transfer_time(10 * 10**9) == pytest.approx(0.6)
    # Everything fits the pool: pure CPU-channel time.
    assert model.transfer_time(2 * 10**9) == pytest.approx(0.1)


def test_tier_transfer_effective_bandwidth_exceeds_ssd_alone():
    model = TierTransferModel(cpu_pool_bytes=4 * 10**9, ssd_bandwidth=10e9)
    total = 10 * 10**9
    assert model.effective_bandwidth(total) > model.ssd_bandwidth
    assert model.effective_bandwidth(0) == float("inf")


def test_tier_transfer_required_ssd_bandwidth_shrinks_with_pool():
    total, step = 8 * 10**9, 1.0
    requirements = [
        TierTransferModel(cpu_pool_bytes=pool, ssd_bandwidth=10e9)
        .required_ssd_write_bandwidth(total, step)
        for pool in (0, 2 * 10**9, 8 * 10**9)
    ]
    assert requirements[0] == pytest.approx(16e9)  # Table III definition
    assert all(a > b for a, b in zip(requirements, requirements[1:]))
    assert requirements[-1] == 0.0


def test_tier_transfer_validation():
    with pytest.raises(ValueError):
        TierTransferModel(cpu_pool_bytes=-1, ssd_bandwidth=1e9)
    with pytest.raises(ValueError):
        TierTransferModel(cpu_pool_bytes=0, ssd_bandwidth=0)
