"""Tests for the result-export module."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis.report import rows_from, to_csv, to_json
from repro.analysis.ssd_model import project_all_fig5
from repro.train.trainer import PlacementStrategy


@dataclass
class _Row:
    name: str
    value: float
    tags: list


def test_to_json_roundtrip():
    rows = [_Row("a", 1.5, ["x"]), _Row("b", 2.5, ["y", "z"])]
    payload = json.loads(to_json(rows))
    assert payload[0]["name"] == "a"
    assert payload[1]["tags"] == ["y", "z"]


def test_to_json_writes_file(tmp_path):
    path = tmp_path / "out.json"
    to_json({"k": 1}, path=path)
    assert json.loads(path.read_text()) == {"k": 1}


def test_enum_and_numpy_coercion():
    payload = json.loads(to_json({"strategy": PlacementStrategy.OFFLOAD, "x": np.float32(1.5)}))
    assert payload["strategy"] == "offload"
    assert payload["x"] == 1.5


def test_to_csv_basic(tmp_path):
    rows = [_Row("a", 1.5, []), _Row("b", 2.5, [1, 2])]
    path = tmp_path / "out.csv"
    text = to_csv(rows, path=path)
    lines = text.strip().splitlines()
    assert lines[0] == "name,value,tags"
    assert lines[1].startswith("a,1.5")
    assert path.exists()


def test_to_csv_column_selection():
    rows = [_Row("a", 1.5, [])]
    text = to_csv(rows, columns=["value", "name"])
    assert text.splitlines()[0] == "value,name"


def test_to_csv_rejects_empty():
    with pytest.raises(ValueError):
        to_csv([])


def test_rows_from_rejects_scalars():
    with pytest.raises(TypeError):
        rows_from([42])


def test_fig5_projection_exports():
    """Real experiment results serialize cleanly end to end."""
    projections = project_all_fig5()
    payload = json.loads(to_json(projections))
    assert len(payload) == 12
    assert {"label", "lifespan_years", "required_write_bw_gbps"} <= set(payload[0])
    csv_text = to_csv(projections)
    assert csv_text.count("\n") == 13  # header + 12 rows
