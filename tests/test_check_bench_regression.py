"""Tests for the CI bench-regression guard (scripts/check_bench_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "scripts" / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
guard = importlib.util.module_from_spec(spec)
spec.loader.exec_module(guard)

_MACHINE = {
    "machine": "x86_64",
    "processor": "x86_64",
    "python_version": "3.11.7",
    "system": "Linux",
}


def _payload(stats, machine=_MACHINE):
    return {
        "machine_info": machine,
        "benchmarks": [
            {"fullname": name, "stats": {"min": value, "median": value * 1.1}}
            for name, value in stats.items()
        ],
    }


def _write(tmp_path, name, stats, machine=_MACHINE):
    path = tmp_path / name
    path.write_text(json.dumps(_payload(stats, machine)))
    return str(path)


def test_identical_runs_pass(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_offload_sweep": 0.01})
    assert guard.main(["--baseline", base, "--current", base]) == 0


def test_hot_path_regression_fails(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_scheduler_hot": 0.010})
    cur = _write(tmp_path, "cur.json", {"bench_x::test_scheduler_hot": 0.013})
    assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_slowdown_within_threshold_passes(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_scheduler_hot": 0.010})
    cur = _write(tmp_path, "cur.json", {"bench_x::test_scheduler_hot": 0.0115})
    assert guard.main(["--baseline", base, "--current", cur]) == 0


def test_unguarded_benchmark_may_regress(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_tokenizer_misc": 0.010})
    cur = _write(tmp_path, "cur.json", {"bench_x::test_tokenizer_misc": 0.100})
    assert guard.main(["--baseline", base, "--current", cur]) == 0


def test_custom_pattern_overrides_default(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_tokenizer_misc": 0.010})
    cur = _write(tmp_path, "cur.json", {"bench_x::test_tokenizer_misc": 0.100})
    assert (
        guard.main(
            ["--baseline", base, "--current", cur, "--pattern", "tokenizer"]
        )
        == 1
    )


def test_new_and_retired_benchmarks_never_fail(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_offload_old": 0.010})
    cur = _write(tmp_path, "cur.json", {"bench_x::test_offload_new": 0.010})
    assert guard.main(["--baseline", base, "--current", cur]) == 0


def test_speedup_passes(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_scheduler_hot": 0.010})
    cur = _write(tmp_path, "cur.json", {"bench_x::test_scheduler_hot": 0.001})
    assert guard.main(["--baseline", base, "--current", cur]) == 0


def test_stat_selection(tmp_path):
    """--stat median compares medians (here 10% above min, so a min-level
    regression hides while a median-level one is caught)."""
    base = _write(tmp_path, "base.json", {"bench_x::test_scheduler_hot": 0.010})
    cur = _write(tmp_path, "cur.json", {"bench_x::test_scheduler_hot": 0.013})
    assert (
        guard.main(
            ["--baseline", base, "--current", cur, "--stat", "median"]
        )
        == 1
    )


def test_python_patch_version_does_not_break_comparability(tmp_path):
    """3.11.7 vs 3.11.9 are the same interpreter line: still enforced."""
    patched = dict(_MACHINE, python_version="3.11.9")
    base = _write(
        tmp_path, "base.json", {"bench_x::test_scheduler_hot": 0.010}, patched
    )
    cur = _write(tmp_path, "cur.json", {"bench_x::test_scheduler_hot": 0.100})
    assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_cross_machine_regression_downgrades_to_warning(tmp_path):
    """A baseline recorded on other hardware must not hard-fail CI."""
    other = dict(_MACHINE, processor="arm64", machine="arm64")
    base = _write(tmp_path, "base.json", {"bench_x::test_scheduler_hot": 0.010}, other)
    cur = _write(tmp_path, "cur.json", {"bench_x::test_scheduler_hot": 0.100})
    assert guard.main(["--baseline", base, "--current", cur]) == 0
    # --strict enforces regardless of hardware drift.
    assert guard.main(["--baseline", base, "--current", cur, "--strict"]) == 1


def test_bad_inputs(tmp_path):
    base = _write(tmp_path, "base.json", {"bench_x::test_scheduler_hot": 0.01})
    with pytest.raises(SystemExit):
        guard.main(["--baseline", str(tmp_path / "missing.json"), "--current", base])
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"benchmarks": []}))
    with pytest.raises(SystemExit):
        guard.main(["--baseline", str(empty), "--current", base])
    assert (
        guard.main(["--baseline", base, "--current", base, "--threshold", "-1"]) == 2
    )


def test_committed_baseline_is_loadable():
    """The repo's own baseline must stay parseable and cover hot paths."""
    baseline = Path(__file__).parent.parent / "BENCH_PR2.json"
    payload = guard.load_payload(str(baseline))
    stats = guard.extract_stats(payload, str(baseline), "min")
    assert any("scheduler" in name for name in stats)
    assert all(value > 0 for value in stats.values())
    assert payload.get("machine_info")  # needed for the comparability check


def test_autotune_controller_hot_path_is_guarded(tmp_path):
    """The adaptive controller's per-step cycle is a guarded hot path."""
    base = _write(
        tmp_path, "base.json",
        {"bench_autotune.py::test_autotune_controller_hot_path": 0.010},
    )
    cur = _write(
        tmp_path, "cur.json",
        {"bench_autotune.py::test_autotune_controller_hot_path": 0.013},
    )
    assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_buffers_arena_hot_path_is_guarded_by_default(tmp_path):
    """The arena lease/release cycle (CPU-bound, stable) sits in the
    default wall-clock gate (the PR 5 pattern extension)."""
    name = "bench_dataplane.py::test_dataplane_buffers_arena_lease_hot_path"
    base = _write(tmp_path, "base.json", {name: 0.010})
    cur = _write(tmp_path, "cur.json", {name: 0.013})
    assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_dataplane_guarded_only_by_the_explicit_wide_invocation(tmp_path):
    """The disk-bound dataplane store benches stay OUT of the tight
    default gate (their min wall-clock swings ~2x between identical
    runs) but fail CI's explicit dataplane invocation — the bench-smoke
    job's BENCH_PR5 guard with a wide threshold."""
    name = "bench_dataplane.py::test_dataplane_filestore_store_pooled"
    base = _write(tmp_path, "base.json", {name: 0.010})
    cur = _write(tmp_path, "cur.json", {name: 0.030})  # 3x: catastrophic
    assert guard.main(["--baseline", base, "--current", cur]) == 0  # default gate
    assert (
        guard.main(
            ["--baseline", base, "--current", cur,
             "--threshold", "1.50", "--pattern", "dataplane|buffers"]
        )
        == 1
    )


def test_committed_pr5_baseline_is_loadable():
    """The data-plane baseline must stay parseable and cover its paths."""
    baseline = Path(__file__).parent.parent / "BENCH_PR5.json"
    payload = guard.load_payload(str(baseline))
    stats = guard.extract_stats(payload, str(baseline), "min")
    assert any("dataplane" in name for name in stats)
    assert any("buffers" in name for name in stats)
    assert all(value > 0 for value in stats.values())
    assert payload.get("machine_info")


def test_tenant_benches_are_guarded_by_default(tmp_path):
    """The multi-tenant QoS benches (DRR dequeue, admission hot path)
    sit in the default wall-clock gate (the PR 6 pattern extension)."""
    name = "bench_tenants.py::test_tenant_admission_quota_hot_path"
    base = _write(tmp_path, "base.json", {name: 0.010})
    cur = _write(tmp_path, "cur.json", {name: 0.013})
    assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_kv_serve_benches_are_guarded_by_default(tmp_path):
    """The KV paging front-end's CPU-bound pool benches sit in the
    default wall-clock gate (the PR 7 pattern extension)."""
    for name in (
        "bench_kv.py::test_kv_pool_append_fetch_hot_path",
        "bench_kv.py::test_kv_prefetch_planning_hot_path",
    ):
        base = _write(tmp_path, "base.json", {name: 0.010})
        cur = _write(tmp_path, "cur.json", {name: 0.013})
        assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_uring_backend_benches_are_guarded_by_default(tmp_path):
    """The SQ/CQ backend benches sit in the default wall-clock gate
    (the PR 8 pattern extension)."""
    for name in (
        "bench_uring.py::test_uring_backend_store_round",
        "bench_uring.py::test_thread_backend_store_round",
    ):
        base = _write(tmp_path, "base.json", {name: 0.010})
        cur = _write(tmp_path, "cur.json", {name: 0.013})
        assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_service_manifest_benches_are_guarded_by_default(tmp_path):
    """The service-mode durability benches (manifest replay, compaction
    throughput) sit in the default wall-clock gate (the PR 9 pattern
    extension)."""
    for name in (
        "bench_service.py::test_manifest_replay_small_store",
        "bench_service.py::test_service_compaction_throughput",
    ):
        base = _write(tmp_path, "base.json", {name: 0.010})
        cur = _write(tmp_path, "cur.json", {name: 0.013})
        assert guard.main(["--baseline", base, "--current", cur]) == 1


def test_recovery_benches_are_guarded_by_default(tmp_path):
    """The self-healing benches (breaker cycle, hedge delay derivation,
    failover store path) sit in the default wall-clock gate (the PR 10
    pattern extension)."""
    for name in (
        "bench_recovery.py::test_breaker_trip_probe_close_cycle",
        "bench_recovery.py::test_hedge_delay_derivation_hot_path",
        "bench_recovery.py::test_failover_store_latency_dead_ssd",
    ):
        base = _write(tmp_path, "base.json", {name: 0.010})
        cur = _write(tmp_path, "cur.json", {name: 0.013})
        assert guard.main(["--baseline", base, "--current", cur]) == 1
