"""In-process pub/sub control bus: delivery, containment, history."""

import pytest

from repro.service import ControlBus


def test_publish_delivers_to_topic_subscribers_only():
    bus = ControlBus()
    got_a, got_b = [], []
    bus.subscribe("a", got_a.append)
    bus.subscribe("b", got_b.append)
    assert bus.publish("a", {"n": 1}) == 1
    assert got_a == [{"n": 1}] and got_b == []
    assert bus.published == 1 and bus.delivered == 1


def test_publish_without_subscribers_is_fine():
    bus = ControlBus()
    assert bus.publish("nobody", "hello") == 0
    assert bus.recent("nobody") == ("hello",)  # still recorded


def test_unsubscribe_by_handle():
    bus = ControlBus()
    got = []
    sub = bus.subscribe("t", got.append)
    assert bus.subscriber_count("t") == 1
    assert bus.unsubscribe(sub)
    assert bus.subscriber_count("t") == 0
    bus.publish("t", 1)
    assert got == []
    assert not bus.unsubscribe(sub)  # already gone


def test_subscriber_exception_is_contained():
    """One broken consumer must not starve the others (or the service's
    housekeeping thread, which publishes telemetry on every tick)."""
    bus = ControlBus()
    got = []

    def broken(message):
        raise RuntimeError("boom")

    bus.subscribe("t", broken)
    bus.subscribe("t", got.append)
    assert bus.publish("t", {"n": 1}) == 1  # the healthy one got it
    assert got == [{"n": 1}]
    assert bus.delivery_errors == 1


def test_recent_is_a_bounded_ring():
    bus = ControlBus(history=3)
    for i in range(10):
        bus.publish("t", i)
    assert bus.recent("t") == (7, 8, 9)
    assert bus.recent("t", limit=2) == (8, 9)
    assert bus.recent("untouched") == ()


def test_history_must_be_positive():
    with pytest.raises(ValueError):
        ControlBus(history=0)
