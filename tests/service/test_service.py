"""EngineService + Supervisor: state machine, controls, crash restart."""

import threading
import time

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.service import (
    ControlBus,
    EngineService,
    ServiceState,
    Supervisor,
    SyntheticWorkload,
    TOPIC_CONTROL,
    TOPIC_EVENTS,
    TOPIC_TELEMETRY,
)

TICK = 0.01


def _config(tmp_path, **overrides):
    kwargs = dict(
        target="ssd", store_dir=tmp_path / "store", chunk_bytes=4096, durable=True
    )
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def _service(tmp_path, **overrides):
    return EngineService(
        _config(tmp_path),
        heartbeat_interval_s=TICK,
        gc_interval_s=None,
        **overrides,
    )


def _wait(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise TimeoutError("condition not reached")


# ------------------------------------------------------------- state machine
def test_start_stop_lifecycle(tmp_path):
    service = _service(tmp_path)
    assert service.state is ServiceState.STOPPED and service.engine is None
    threads_before = threading.active_count()
    with service:
        assert service.state is ServiceState.HEALTHY
        assert service.generation == 1
        service.start()  # idempotent: no second engine, no state churn
        assert service.generation == 1
        _wait(lambda: service.heartbeat_age() is not None)
    assert service.state is ServiceState.STOPPED and service.engine is None
    service.stop()  # idempotent
    _wait(lambda: threading.active_count() == threads_before)


def test_state_transitions_are_published(tmp_path):
    bus = ControlBus()
    with _service(tmp_path, bus=bus):
        pass
    transitions = [
        (m["from"], m["to"])
        for m in bus.recent(TOPIC_EVENTS)
        if m.get("event") == "state"
    ]
    assert transitions == [
        ("stopped", "starting"),
        ("starting", "healthy"),
        ("healthy", "stopped"),
    ]


def test_degraded_is_a_healthy_substate(tmp_path):
    with _service(tmp_path) as service:
        service.mark_degraded(reason="dead lanes: ssd")
        assert service.state is ServiceState.DEGRADED
        service.mark_degraded()  # only HEALTHY -> DEGRADED transitions
        service.mark_healthy(reason="recovered")
        assert service.state is ServiceState.HEALTHY
        service.mark_healthy()  # only DEGRADED -> HEALTHY transitions
        assert service.state is ServiceState.HEALTHY


def test_heartbeat_advances_and_telemetry_flows(tmp_path):
    bus = ControlBus()
    with _service(tmp_path, bus=bus) as service:
        _wait(lambda: len(bus.recent(TOPIC_TELEMETRY)) >= 3)
        assert service.heartbeat_age() < 1.0
        snapshot = bus.recent(TOPIC_TELEMETRY)[-1]
        assert snapshot["generation"] == 1
        assert snapshot["stats"].endurance is not None


def test_validation(tmp_path):
    with pytest.raises(ValueError):
        EngineService(_config(tmp_path), heartbeat_interval_s=0)
    with pytest.raises(ValueError):
        Supervisor(_service(tmp_path), heartbeat_timeout_s=0)


# ------------------------------------------------------------------ controls
def test_install_budget_lands_without_restart(tmp_path):
    bus = ControlBus()
    with _service(tmp_path, bus=bus) as service:
        generation = service.generation
        bus.publish(TOPIC_CONTROL, {"cmd": "install_budget", "bytes": 123456})
        _wait(lambda: service.controls_applied == 1)
        assert service.engine.policy.config.offload_budget_bytes == 123456
        assert service.generation == generation  # no restart
        acks = [
            m for m in bus.recent(TOPIC_EVENTS) if m.get("event") == "control"
        ]
        assert acks[-1]["ok"] and acks[-1]["cmd"] == "install_budget"


def test_bad_controls_ack_failure_without_wedging(tmp_path):
    bus = ControlBus()
    with _service(tmp_path, bus=bus) as service:
        bus.publish(TOPIC_CONTROL, {"cmd": "no-such-knob"})
        bus.publish(TOPIC_CONTROL, "not a dict either")  # rejected at subscribe
        bus.publish(TOPIC_CONTROL, {"cmd": "install_budget", "bytes": 42})
        _wait(lambda: service.controls_applied == 1)
        assert service.engine.policy.config.offload_budget_bytes == 42
        acks = [
            m for m in bus.recent(TOPIC_EVENTS) if m.get("event") == "control"
        ]
        assert [a["ok"] for a in acks] == [False, True]
        assert "no-such-knob" in acks[0]["error"]
        assert bus.delivery_errors == 1  # the non-dict message


def test_watermark_and_tenant_controls(tmp_path):
    from repro.io.tenancy import TenantRegistry

    bus = ControlBus()
    config = _config(
        tmp_path, target="tiered", cpu_pool_bytes=1 << 20, tenants=TenantRegistry()
    )
    with EngineService(
        config, bus=bus, heartbeat_interval_s=TICK, gc_interval_s=None
    ) as service:
        bus.publish(TOPIC_CONTROL, {"cmd": "set_free_watermark", "bytes": 4096})
        bus.publish(TOPIC_CONTROL, {"cmd": "set_tenant", "name": "a", "weight": 3})
        _wait(lambda: service.controls_applied == 2)
        assert service.engine.offloader.free_watermark_bytes == 4096
        assert service.engine.tenants.get("a").weight == 3


def test_paging_strategy_swap_control(tmp_path):
    from repro.serve.paging import PagingPolicy

    bus = ControlBus()
    with _service(tmp_path, bus=bus) as service:
        bus.publish(TOPIC_CONTROL, {"cmd": "set_paging_strategy", "name": "lookahead"})
        _wait(
            lambda: any(
                m.get("event") == "control" and not m["ok"]
                for m in bus.recent(TOPIC_EVENTS)
            )
        )  # no policy attached yet -> contained failure
        service.paging_policy = PagingPolicy()
        bus.publish(TOPIC_CONTROL, {"cmd": "set_paging_strategy", "name": "lookahead"})
        _wait(lambda: service.controls_applied == 1)
        assert service.paging_policy.strategy.name.startswith("lookahead")


def test_gc_runs_on_cadence_and_publishes(tmp_path):
    bus = ControlBus()
    service = EngineService(
        _config(tmp_path),
        bus=bus,
        heartbeat_interval_s=TICK,
        gc_interval_s=2 * TICK,
    )
    workload = SyntheticWorkload()
    with service:
        workload.run(service.engine, steps=6)  # leaves half-dead chunks
        _wait(lambda: service.gc_reclaimed_total > 0)
    events = [m for m in bus.recent(TOPIC_EVENTS) if m.get("event") == "gc"]
    assert events and sum(m["reclaimed_bytes"] for m in events) == (
        service.gc_reclaimed_total
    )


# ----------------------------------------------------------- supervised crash
def test_kill_freezes_heartbeat_and_supervisor_restarts(tmp_path):
    bus = ControlBus()
    service = _service(tmp_path, bus=bus)
    supervisor = Supervisor(
        service,
        heartbeat_timeout_s=6 * TICK,
        poll_interval_s=TICK,
        backoff_base_s=TICK,
    )
    with service, supervisor:
        generation = service.generation
        service.kill()
        _wait(lambda: service.restarts == 1)
        _wait(lambda: service.state is ServiceState.HEALTHY)
        assert service.generation == generation + 1
        assert supervisor.restarts_triggered == 1
        # A durable engine replayed its manifest on the way back up.
        assert service.engine.chunk_store is not None
        events = [m.get("event") for m in bus.recent(TOPIC_EVENTS)]
        assert "supervisor-restart" in events
        # Heartbeats resumed: the new housekeeping thread is alive.
        _wait(lambda: service.heartbeat_age() < 6 * TICK)


def test_backoff_doubles_and_caps(tmp_path):
    service = _service(tmp_path)
    supervisor = Supervisor(
        service, backoff_base_s=0.05, backoff_max_s=0.2, backoff_reset_s=60.0
    )
    assert supervisor.next_backoff_s() == 0.05
    supervisor._streak = 1
    assert supervisor.next_backoff_s() == 0.10
    supervisor._streak = 10
    assert supervisor.next_backoff_s() == 0.2  # capped


def test_stop_wins_over_restart(tmp_path):
    """stop() during a supervisor-driven restart must leave the service
    STOPPED with no engine — not resurrect a fresh one."""
    service = _service(tmp_path)
    service.start()
    service.stop()
    service.restart(reason="late supervisor")  # no-op on a stopped service
    assert service.state is ServiceState.STOPPED and service.engine is None


def test_restart_replays_bit_exact_mid_workload(tmp_path):
    """The acceptance loop in miniature: run, kill, restart, resume —
    every loss matches an uninterrupted reference run."""
    workload = SyntheticWorkload(seed=3)
    with EngineService(
        _config(tmp_path, store_dir=tmp_path / "ref"),
        heartbeat_interval_s=TICK,
        gc_interval_s=None,
    ) as ref:
        expected = workload.run(ref.engine, steps=8)

    service = _service(tmp_path)
    supervisor = Supervisor(
        service,
        heartbeat_timeout_s=6 * TICK,
        poll_interval_s=TICK,
        backoff_base_s=TICK,
    )
    losses = []
    with service, supervisor:
        for step in range(8):
            if step == 4:
                service.kill()
                _wait(
                    lambda: service.restarts >= 1
                    and service.state is ServiceState.HEALTHY
                )
                assert service.engine.chunk_store.manifest_records_replayed > 0
            losses.append(workload.run_step(service.engine, step))
    assert losses == expected
