"""Terminal FAILED state, crash-loop escalation, and breaker bus events.

The service half of architecture §12: a persistently-crashing engine
must not be restarted forever (the supervisor escalates to FAILED with
a final bus event), and the engine's circuit-breaker transitions are
published on the control bus — including the housekeeping-driven
probe/resurrect cycle.
"""

import time

import numpy as np
import pytest

from repro.core import OffloadPolicy, PolicyConfig, TensorID
from repro.core.engine import EngineConfig
from repro.io.breaker import BreakerState
from repro.io.faults import FaultPlan, inject_faults
from repro.service import (
    ControlBus,
    EngineService,
    ServiceState,
    Supervisor,
    TOPIC_EVENTS,
)

TICK = 0.01


def _wait(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise TimeoutError("condition not reached")


def _tiered_service(tmp_path, bus=None, **config_overrides):
    kwargs = dict(
        target="tiered",
        store_dir=tmp_path / "store",
        cpu_pool_bytes=64 << 10,
    )
    kwargs.update(config_overrides)
    return EngineService(
        EngineConfig(**kwargs),
        heartbeat_interval_s=TICK,
        gc_interval_s=None,
        bus=bus,
    )


# ----------------------------------------------------------- FAILED state
def test_fail_is_terminal_and_restart_revives(tmp_path):
    service = _tiered_service(tmp_path)
    service.start()
    service.fail(reason="operator says no")
    assert service.state is ServiceState.FAILED
    assert service.engine is None
    service.fail(reason="again")  # idempotent on a failed service
    assert service.state is ServiceState.FAILED
    # FAILED is terminal: restart() refuses to resurrect it, exactly
    # like it refuses on STOPPED — otherwise a racing supervisor could
    # undo the escalation.
    service.restart(reason="supervisor races the escalation")
    assert service.state is ServiceState.FAILED
    # Operator recovery is explicit: stop() acknowledges the failure,
    # then start() brings up a fresh generation.
    service.stop()
    assert service.state is ServiceState.STOPPED
    service.start()
    assert service.state is ServiceState.HEALTHY
    service.stop()
    assert service.state is ServiceState.STOPPED


def test_fail_on_stopped_service_is_noop(tmp_path):
    service = _tiered_service(tmp_path)
    service.fail(reason="never started")
    assert service.state is ServiceState.STOPPED


# ----------------------------------------------------- crash-loop escalation
def test_supervisor_validates_escalation_knobs(tmp_path):
    service = _tiered_service(tmp_path)
    with pytest.raises(ValueError):
        Supervisor(service, max_restarts=0)
    with pytest.raises(ValueError):
        Supervisor(service, max_restarts=3, restart_window_s=0.0)


def test_crash_loop_escalates_to_failed(tmp_path):
    """An engine that dies on every start must not be restarted forever:
    after ``max_restarts`` generations inside the sliding window the
    supervisor publishes a final event and fails the service."""
    bus = ControlBus()
    service = _tiered_service(tmp_path, bus=bus)
    supervisor = Supervisor(
        service,
        heartbeat_timeout_s=6 * TICK,
        poll_interval_s=TICK,
        backoff_base_s=TICK,
        max_restarts=2,
        restart_window_s=60.0,
    )
    with service, supervisor:
        service.kill()
        deadline = time.monotonic() + 15.0
        while (
            service.state is not ServiceState.FAILED
            and time.monotonic() < deadline
        ):
            if service.state is ServiceState.HEALTHY:
                service.kill()  # the engine "dies on every start"
            time.sleep(TICK / 2)
        assert service.state is ServiceState.FAILED
        assert service.engine is None
        assert supervisor.escalations == 1
        assert supervisor.restarts_triggered == 2
        # The supervisor gave up: no further restarts happen.
        time.sleep(10 * TICK)
        assert service.state is ServiceState.FAILED
    events = [m for m in bus.recent(TOPIC_EVENTS) if m.get("event") == "supervisor-escalate"]
    assert len(events) == 1
    assert events[0]["restarts_in_window"] == 2
    assert events[0]["window_s"] == 60.0
    states = [
        (m["from"], m["to"])
        for m in bus.recent(TOPIC_EVENTS)
        if m.get("event") == "state"
    ]
    # The escalation published a transition into FAILED.  (The final
    # event is FAILED -> STOPPED from the with-block teardown: stop()
    # is the one legal exit from the terminal state.)
    assert any(to == "failed" for _from, to in states)
    assert states[-1] == ("failed", "stopped")


def test_slow_crashes_outside_window_keep_restarting(tmp_path):
    """Restarts spaced wider than the window never escalate — the cap is
    a *rate* limit, not a lifetime budget."""
    service = _tiered_service(tmp_path)
    supervisor = Supervisor(
        service,
        heartbeat_timeout_s=6 * TICK,
        poll_interval_s=TICK,
        backoff_base_s=TICK,
        max_restarts=2,
        restart_window_s=0.001,  # every restart immediately ages out
    )
    with service, supervisor:
        for expected in (1, 2, 3):
            service.kill()
            _wait(lambda: service.restarts == expected)
            _wait(lambda: service.state is ServiceState.HEALTHY)
        assert supervisor.escalations == 0
        assert service.state is ServiceState.HEALTHY


# ------------------------------------------------------- breaker bus events
def _breaker_events(bus):
    return [m for m in bus.recent(TOPIC_EVENTS) if m.get("event") == "breaker"]


def test_breaker_transitions_published_on_bus(tmp_path):
    bus = ControlBus()
    service = _tiered_service(tmp_path, bus=bus)
    with service:
        breaker = service.engine.offloader.breaker
        breaker.trip("chaos: device pulled")
        events = _breaker_events(bus)
        assert events, "the trip must be published"
        event = events[-1]
        assert event["name"] == "ssd"
        assert event["from"] == BreakerState.CLOSED
        assert event["to"] == BreakerState.OPEN
        assert event["reason"] == "chaos: device pulled"
        assert event["generation"] == service.generation
        breaker.reset("test cleanup")


def test_housekeeping_probes_resurrect_tier_and_publish(tmp_path):
    """The service's housekeeping loop drives the canary probes: after
    the injector heals, the breaker walks OPEN -> HALF_OPEN -> CLOSED on
    the bus and the tier serves stores again."""
    bus = ControlBus()
    policy = OffloadPolicy(
        PolicyConfig(min_offload_numel=256, cpu_tier_max_tensor_bytes=2048)
    )
    service = _tiered_service(
        tmp_path, bus=bus, policy=policy, probe_backoff_s=0.005
    )
    with service:
        offloader = service.engine.offloader
        injector = inject_faults(offloader, FaultPlan(seed=0))
        injector.kill()
        data = np.arange(1024, dtype=np.float32)
        offloader.store(TensorID(stamp=1, shape=(1024,)), data)  # fails over
        assert offloader.ssd_dead
        injector.heal()
        _wait(lambda: not offloader.ssd_dead)
        assert offloader.stats.resurrections >= 1
        transitions = [(m["from"], m["to"]) for m in _breaker_events(bus)]
        assert (BreakerState.CLOSED, BreakerState.OPEN) in transitions
        assert (BreakerState.OPEN, BreakerState.HALF_OPEN) in transitions
        assert (BreakerState.HALF_OPEN, BreakerState.CLOSED) in transitions
        # The resurrected tier takes new stores.
        tid = TensorID(stamp=2, shape=(1024,))
        offloader.store(tid, data)
        out = offloader.load(tid, data.shape, data.dtype)
        assert np.array_equal(out, data)
