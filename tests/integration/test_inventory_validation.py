"""Cross-validation: the analytic activation inventory vs what the real
engine actually packs (functional-mode Table III).

The paper validates its S_activations formula against measured offload
amounts (Sec. III-D: "We validated the S_activations formula with
experiments"; Table III).  We do the same at tiny scale: run a real model
through the tensor cache and compare the managed byte volume against
``layer_activation_inventory`` evaluated at the same shape.
"""

import numpy as np
import pytest

from repro.analysis.perf_model import (
    embedding_activation_bytes,
    layer_activation_inventory,
    logits_activation_bytes,
)
from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.models import BERT, GPT, ModelConfig
from repro.tensor.tensor import Tensor


def _managed_bytes(model_cls, config, gpu, tmp_path):
    """Bytes the cache manages (offloaded + kept) for one micro-batch."""
    model = model_cls(config, rng=np.random.default_rng(0)).to(gpu)
    cache = TensorCache(
        SSDOffloader(tmp_path / "inv"),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=1)),
    )
    try:
        cache.register_weights(model)
        cache.attach(model)
        rng = np.random.default_rng(1)
        tokens = Tensor(
            rng.integers(0, config.vocab_size, (2, config.seq_len)).astype(np.int64),
            device=gpu,
        )
        targets = Tensor(
            rng.integers(0, config.vocab_size, (2, config.seq_len)).astype(np.int64),
            device=gpu,
        )
        with cache:
            loss = model(tokens, targets)
            cache.on_backward_begin()
            loss.backward()
            cache.on_backward_end()
        managed = cache.accounting.offloaded_bytes + cache.accounting.kept_bytes
        cache.on_step_end()
        return managed
    finally:
        cache.shutdown()


@pytest.mark.parametrize("arch,model_cls", [("bert", BERT), ("gpt", GPT)])
def test_engine_matches_inventory_model(arch, model_cls, gpu, tmp_path):
    """Managed activation bytes track the analytic estimate within 20%.

    The estimate covers the transformer layers + embedding output + logits;
    the engine additionally manages small glue tensors (LN stats are
    excluded by both), hence the tolerance — the same "figures are close"
    standard Table III applies.
    """
    config = ModelConfig(
        arch=arch, hidden=64, num_layers=3, vocab_size=211, seq_len=32,
        head_dim=16, dtype_bytes=4,  # functional engine runs FP32
    )
    batch = 2
    estimate = sum(
        t.nbytes for t in layer_activation_inventory(config, batch)
    ) * config.num_layers
    estimate += embedding_activation_bytes(config, batch)
    estimate += logits_activation_bytes(config, batch)

    measured = _managed_bytes(model_cls, config, gpu, tmp_path)
    assert measured == pytest.approx(estimate, rel=0.20), (
        f"measured {measured} vs estimate {estimate}"
    )


def test_inventory_scales_linearly_with_batch(gpu, tmp_path):
    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=101, seq_len=16,
        head_dim=16, dtype_bytes=4,
    )
    # Analytic inventory is exactly linear in batch; the engine tracks it.
    m1 = _managed_bytes(GPT, config, gpu, tmp_path / "b1")
    # (re-run with doubled batch via a fresh tmp subdir)
    model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
    cache = TensorCache(
        SSDOffloader(tmp_path / "b2"),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=1)),
    )
    try:
        cache.register_weights(model)
        cache.attach(model)
        rng = np.random.default_rng(1)
        tokens = Tensor(rng.integers(0, 101, (4, 16)).astype(np.int64), device=gpu)
        targets = Tensor(rng.integers(0, 101, (4, 16)).astype(np.int64), device=gpu)
        with cache:
            loss = model(tokens, targets)
            cache.on_backward_begin()
            loss.backward()
            cache.on_backward_end()
        m2 = cache.accounting.offloaded_bytes + cache.accounting.kept_bytes
        cache.on_step_end()
    finally:
        cache.shutdown()
    assert m2 == pytest.approx(2 * m1, rel=0.15)
