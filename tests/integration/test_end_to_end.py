"""End-to-end integration: the full SSDTrain stack on real training runs."""

import gc

import numpy as np
import pytest

from repro.core import (
    OffloadPolicy,
    PolicyConfig,
    SSDOffloader,
    TensorCache,
    WorkloadProfile,
    configure_policy,
)
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import MemoryTag
from repro.models import BERT, GPT, ModelConfig, T5
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer


def _loader(gpu, config, seed=0, batch=2):
    return TokenBatchLoader(
        SyntheticCorpus(vocab_size=config.vocab_size, seed=seed),
        batch_size=batch,
        seq_len=config.seq_len,
        device=gpu,
    )


def _offload_trainer(gpu, model, tmp_path, name, lr=1e-3, **policy_kwargs):
    cache = TensorCache(
        SSDOffloader(tmp_path / name),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=64, **policy_kwargs)),
    )
    opt = SGD(model.parameters(), lr=lr)
    return Trainer(model, opt, gpu, strategy=PlacementStrategy.OFFLOAD, cache=cache)


@pytest.mark.parametrize("arch", ["gpt", "bert"])
def test_training_identical_with_and_without_offloading(arch, gpu, tmp_path):
    """Multi-step training: weights after N steps must match exactly."""
    config = ModelConfig(
        arch=arch, hidden=64, num_layers=2, vocab_size=61, seq_len=16, head_dim=16
    )
    cls = GPT if arch == "gpt" else BERT

    def run(offload):
        model = cls(config, rng=np.random.default_rng(3)).to(gpu)
        if offload:
            trainer = _offload_trainer(gpu, model, tmp_path, f"{arch}-run")
        else:
            trainer = Trainer(model, SGD(model.parameters(), lr=1e-3), gpu)
        loader = _loader(gpu, config, seed=11)
        try:
            for _ in range(3):
                trainer.train_step([loader.next_batch()])
        finally:
            trainer.close()
        return {n: p.data.copy() for n, p in model.named_parameters()}

    base = run(False)
    off = run(True)
    for name in base:
        assert np.array_equal(base[name], off[name]), name


def test_t5_with_offloading(gpu, tmp_path):
    config = ModelConfig(
        arch="t5", hidden=64, num_layers=3, vocab_size=61, seq_len=16, head_dim=16
    )
    model = T5(config, rng=np.random.default_rng(0)).to(gpu)
    trainer = _offload_trainer(gpu, model, tmp_path, "t5")
    loader = _loader(gpu, config)
    try:
        src, _ = loader.next_batch()
        tgt, targets = loader.next_batch()
        result = trainer.train_step([(src, tgt, targets)])
        assert np.isfinite(result.loss)
        assert result.offloaded_bytes > 0
    finally:
        trainer.close()


def test_rok_strategies_functional(gpu, tmp_path):
    """Functional mini-ROK: offload matches keep in loss, recompute too;
    memory ordering offload < keep; recompute < keep."""
    config = ModelConfig(
        arch="bert", hidden=64, num_layers=3, vocab_size=61, seq_len=32, head_dim=16
    )
    loader = _loader(gpu, config, seed=5, batch=4)
    batch = loader.next_batch()
    results = {}
    for strategy in PlacementStrategy:
        cfg = config.scaled(recompute=strategy is PlacementStrategy.RECOMPUTE)
        model = BERT(cfg, rng=np.random.default_rng(1)).to(gpu)
        if strategy is PlacementStrategy.OFFLOAD:
            trainer = _offload_trainer(gpu, model, tmp_path, "rok", lr=1e-12)
        else:
            trainer = Trainer(
                model, SGD(model.parameters(), lr=1e-12), gpu, strategy=strategy
            )
        try:
            trainer.train_step([batch])  # warmup/profile
            results[strategy] = trainer.train_step([batch])
        finally:
            trainer.close()
        gc.collect()
    keep = results[PlacementStrategy.KEEP]
    off = results[PlacementStrategy.OFFLOAD]
    rec = results[PlacementStrategy.RECOMPUTE]
    assert off.loss == pytest.approx(keep.loss, abs=1e-5)
    assert rec.loss == pytest.approx(keep.loss, abs=1e-5)
    assert off.activation_peak_bytes < keep.activation_peak_bytes
    assert rec.activation_peak_bytes < keep.activation_peak_bytes


def test_adaptive_budget_from_profiled_step(gpu, tmp_path):
    """Profile step 0, derive the adaptive budget, re-run with it."""
    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=61, seq_len=16, head_dim=16
    )
    model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
    trainer = _offload_trainer(gpu, model, tmp_path, "adaptive")
    loader = _loader(gpu, config)
    try:
        profile_step = trainer.train_step([loader.next_batch()])
        profile = WorkloadProfile(
            activation_bytes_per_step=profile_step.offloaded_bytes,
            forward_time_s=profile_step.step_time_s / 3,
            backward_time_s=2 * profile_step.step_time_s / 3,
        )
        new_config = configure_policy(
            profile,
            write_bandwidth_bytes_per_s=100e6,
            base=trainer.cache.policy.config,
        )
        assert new_config.offload_budget_bytes is not None
        trainer.cache.policy.config = new_config
        result = trainer.train_step([loader.next_batch()])
        assert result.offloaded_bytes <= new_config.offload_budget_bytes + 64 * 1024
    finally:
        trainer.close()


def test_offload_plus_recompute_combined(gpu, tmp_path):
    """The two memory strategies compose (checkpointed layers with the
    cache active): gradients identical to the plain run."""
    base_cfg = ModelConfig(
        arch="gpt", hidden=64, num_layers=3, vocab_size=61, seq_len=16, head_dim=16
    )
    loader = _loader(gpu, base_cfg, seed=9)
    batch = loader.next_batch()

    plain_model = GPT(base_cfg, rng=np.random.default_rng(2)).to(gpu)
    plain_model(*batch).backward()
    plain_grads = {n: p.grad.data.copy() for n, p in plain_model.named_parameters()}

    ck_cfg = base_cfg.scaled(recompute=True)
    model = GPT(ck_cfg, rng=np.random.default_rng(2)).to(gpu)
    cache = TensorCache(
        SSDOffloader(tmp_path / "combo"),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
    )
    try:
        cache.register_weights(model)
        cache.attach(model)
        with cache:
            loss = model(*batch)
            cache.on_backward_begin()
            loss.backward()
            cache.on_backward_end()
        cache.on_step_end()
        for name, p in model.named_parameters():
            assert np.allclose(plain_grads[name], p.grad.data, atol=1e-5), name
        assert cache.stats.kept_tensors > 0  # recomputed tensors kept
    finally:
        cache.shutdown()


def test_long_run_no_leak(gpu, tmp_path):
    """Ledger returns to baseline after each offloaded step (no growth)."""
    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=61, seq_len=16, head_dim=16
    )
    model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
    trainer = _offload_trainer(gpu, model, tmp_path, "leak")
    loader = _loader(gpu, config)
    try:
        residuals = []
        for _ in range(5):
            trainer.train_step([loader.next_batch()])
            gc.collect()
            residuals.append(gpu.ledger.current(MemoryTag.ACTIVATIONS))
        # Residual activation memory must not grow step over step.
        assert residuals[-1] <= residuals[0] + 1024
    finally:
        trainer.close()
