"""Server simulation: seeded determinism and the paging A/B contract."""

import numpy as np
import pytest

from repro.serve import (
    KVServerSim,
    RequestTrace,
    ServerConfig,
    TraceConfig,
    block_payload,
    percentile,
)

TRACE = RequestTrace.generate(TraceConfig(num_requests=16, seed=1234))


# ------------------------------------------------------------------- trace
def test_trace_is_deterministic():
    again = RequestTrace.generate(TraceConfig(num_requests=16, seed=1234))
    assert again.requests == TRACE.requests


def test_trace_seed_changes_trace():
    other = TRACE.with_seed(99)
    assert other.requests != TRACE.requests
    assert len(other) == len(TRACE)


def test_trace_shape():
    arrivals = [r.arrival_s for r in TRACE]
    assert arrivals == sorted(arrivals)
    assert all(r.arrival_s > 0 for r in TRACE)
    assert all(
        TRACE.config.min_context_tokens
        <= r.context_tokens
        <= TRACE.config.max_context_tokens
        for r in TRACE
    )
    assert all(r.decode_tokens >= TRACE.config.min_decode_tokens for r in TRACE)
    assert set(r.user for r in TRACE) == set(TRACE.users)
    assert list(TRACE.users) == sorted(TRACE.users)
    # The log-normal tail: the longest context dwarfs the median knob.
    assert TRACE.max_context_tokens > 2 * TRACE.config.context_tokens_median


def test_trace_validates():
    with pytest.raises(ValueError, match="num_requests"):
        TraceConfig(num_requests=0).validate()
    with pytest.raises(ValueError, match="arrival_rate"):
        TraceConfig(arrival_rate_per_s=0).validate()
    with pytest.raises(ValueError, match="context"):
        TraceConfig(min_context_tokens=0).validate()


# ------------------------------------------------------------------- utils
def test_percentile_nearest_rank():
    vals = [4.0, 1.0, 3.0, 2.0]
    assert percentile(vals, 50.0) == 2.0
    assert percentile(vals, 99.0) == 4.0
    assert percentile([], 50.0) == 0.0


def test_block_payload_keyed_and_deterministic():
    a = block_payload(1, "r1", 0, 0, 64)
    assert np.array_equal(a, block_payload(1, "r1", 0, 0, 64))
    assert not np.array_equal(a, block_payload(1, "r1", 0, 1, 64))
    assert not np.array_equal(a, block_payload(2, "r1", 0, 0, 64))


# --------------------------------------------------------------------- sim
@pytest.fixture(scope="module")
def paged_result():
    return KVServerSim(TRACE, ServerConfig(paged=True)).run()


@pytest.fixture(scope="module")
def baseline_result():
    return KVServerSim(TRACE, ServerConfig(paged=False)).run()


def test_same_seed_identical_percentiles(paged_result):
    replay = KVServerSim(TRACE, ServerConfig(paged=True)).run()
    assert replay.ttft_p50 == paged_result.ttft_p50
    assert replay.ttft_p99 == paged_result.ttft_p99
    assert replay.ttfts == paged_result.ttfts
    assert replay.per_user_ttft_p50 == paged_result.per_user_ttft_p50


def test_paging_beats_hbm_only_at_equal_capacity(paged_result, baseline_result):
    assert paged_result.peak_concurrency > baseline_result.peak_concurrency
    assert paged_result.served >= baseline_result.served
    assert paged_result.rejected <= baseline_result.rejected


def test_kv_bytes_bit_exact_after_migration(paged_result):
    assert paged_result.bit_exact_checked > 0
    assert paged_result.bit_exact_ok


def test_lookahead_prefetch_lands_hits(paged_result):
    stats = paged_result.pool_stats
    assert stats.prefetch_issued > 0
    assert stats.prefetch_hits > 0
    assert paged_result.prefetch_hit_rate > 0


def test_blocks_spill_across_tiers(paged_result):
    census = paged_result.tier_census_peak
    assert census.get("hbm", 0) > 0
    assert census.get("cpu", 0) + census.get("ssd", 0) > 0


def test_every_served_request_has_ttft(paged_result):
    for out in paged_result.requests:
        if out.served:
            assert out.ttft_s > 0
            assert out.finished_s >= out.admitted_s >= out.arrival_s
    assert paged_result.served + paged_result.rejected == len(TRACE)


def test_per_user_books_populated(paged_result):
    assert set(paged_result.per_user_ttft_p50) <= set(TRACE.users)
    tenants = paged_result.engine_stats.tenants
    assert set(TRACE.users) <= set(tenants)


def test_baseline_rejects_oversized_contexts(baseline_result):
    cfg = ServerConfig(paged=False)
    for out in baseline_result.requests:
        if not out.served:
            sim = KVServerSim(TRACE, cfg)
            req = next(r for r in TRACE if r.request_id == out.request_id)
            assert sim._full_kv_bytes(req) > cfg.hbm_capacity_bytes
    assert baseline_result.bit_exact_checked == 0  # no pool, nothing to verify
