"""KV block pool: lifecycle, eviction, prefetch accounting, bit-exactness."""

import numpy as np
import pytest

from repro.core import EngineConfig, build_engine
from repro.serve import (
    BlockKey,
    BlockState,
    KVBlockPool,
    LayerImportance,
    LookAheadBatch,
    PreferHBM,
    SplitToken,
    make_strategy,
)

BLOCK_TOKENS = 8
BLOCK_BYTES = BLOCK_TOKENS * 16  # payload below uses 16 bytes per token


def payload(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=BLOCK_BYTES, dtype=np.uint8)


@pytest.fixture
def engine(tmp_path):
    eng = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path / "kv",
            cpu_pool_bytes=4 * BLOCK_BYTES,
            promote_on_load=False,
        )
    )
    yield eng
    eng.shutdown()


def make_pool(engine, *, blocks_in_hbm=4, strategy=None, sync_mode=True, **kw):
    return KVBlockPool(
        engine,
        block_tokens=BLOCK_TOKENS,
        num_layers=2,
        hbm_capacity_bytes=blocks_in_hbm * BLOCK_BYTES,
        strategy=strategy,
        sync_mode=sync_mode,
        **kw,
    )


# --------------------------------------------------------------- lifecycle
def test_block_lifecycle_append_fetch_release(engine):
    pool = make_pool(engine)
    pool.begin_request("r1", user="alice", context_tokens=2 * BLOCK_TOKENS)
    data = payload(1)
    key = pool.append_block("r1", 0, data)
    assert key == BlockKey("r1", 0, 0)
    assert key.token_range == (0, BLOCK_TOKENS)
    assert pool.block_tier(key) == "hbm"
    assert pool.hbm_used_bytes == BLOCK_BYTES

    out = pool.fetch("r1", 0, 0)
    assert np.array_equal(out, data)
    assert pool.stats.hbm_hits == 1

    assert pool.release_request("r1") == 1
    assert pool.hbm_used_bytes == 0
    assert pool.request_ids() == []
    with pytest.raises(KeyError):
        pool.fetch("r1", 0, 0)


def test_append_validates_layer_and_duplicate_request(engine):
    pool = make_pool(engine)
    pool.begin_request("r1")
    with pytest.raises(ValueError, match="layer"):
        pool.append_block("r1", 9, payload(0))
    with pytest.raises(ValueError, match="already registered"):
        pool.begin_request("r1")
    with pytest.raises(KeyError):
        pool.append_block("ghost", 0, payload(0))


def test_split_token_places_by_position(engine):
    """A 3-block context under SplitToken(1, 1) spans all three tiers."""
    pool = make_pool(
        engine, strategy=SplitToken(hbm_recent_blocks=1, cpu_window_blocks=1)
    )
    pool.begin_request("r1", context_tokens=3 * BLOCK_TOKENS)
    keys = [pool.append_block("r1", 0, payload(i)) for i in range(3)]
    assert pool.block_tier(keys[0]) == "ssd"  # cold prefix
    assert pool.block_tier(keys[1]) == "cpu"  # warm window
    assert pool.block_tier(keys[2]) == "hbm"  # decode tail
    assert pool.tier_census() == {"ssd": 1, "cpu": 1, "hbm": 1}


def test_bit_exact_round_trip_through_each_tier(engine):
    """KV bytes must survive migration through hbm, cpu and ssd."""
    pool = make_pool(
        engine, strategy=SplitToken(hbm_recent_blocks=1, cpu_window_blocks=1)
    )
    pool.begin_request("r1", context_tokens=3 * BLOCK_TOKENS)
    originals = [payload(10 + i) for i in range(3)]
    keys = [pool.append_block("r1", 0, originals[i]) for i in range(3)]
    tiers = [pool.block_tier(k) for k in keys]
    assert sorted(tiers) == ["cpu", "hbm", "ssd"]
    for key, original in zip(keys, originals):
        out = pool.fetch("r1", key.layer, key.index)
        assert np.array_equal(np.asarray(out, dtype=np.uint8).ravel(), original)
    # Fetches re-admit to HBM; pool books must reconcile.
    assert pool.stats.demand_fetches == 2
    assert pool.stats.fetched_bytes == 2 * BLOCK_BYTES


# ---------------------------------------------------------------- eviction
def test_lru_eviction_under_hbm_pressure(engine):
    pool = make_pool(engine, blocks_in_hbm=2, strategy=PreferHBM())
    pool.begin_request("r1", context_tokens=3 * BLOCK_TOKENS)
    k0 = pool.append_block("r1", 0, payload(0))
    k1 = pool.append_block("r1", 0, payload(1))
    pool.fetch("r1", 0, 0)  # touch k0: k1 becomes LRU
    k2 = pool.append_block("r1", 0, payload(2))
    assert pool.block_tier(k0) == "hbm"
    assert pool.block_tier(k1) in ("cpu", "ssd")
    assert pool.block_tier(k2) == "hbm"
    assert pool.stats.evictions == 1


def test_layer_importance_evicts_low_value_layers_first(engine):
    """Layer 0 (lowest importance) leaves first even if most recent."""
    pool = make_pool(engine, blocks_in_hbm=2, strategy=LayerImportance())
    pool.begin_request("r1", context_tokens=2 * BLOCK_TOKENS)
    deep = pool.append_block("r1", 1, payload(0))
    shallow = pool.append_block("r1", 0, payload(1))  # more recent
    pool.append_block("r1", 1, payload(2))  # forces one eviction
    assert pool.block_tier(shallow) in ("cpu", "ssd")
    assert pool.block_tier(deep) == "hbm"


def test_overflow_block_pages_itself_out(engine):
    """With nothing evictable, an oversized append pages out instead."""
    pool = make_pool(engine, blocks_in_hbm=0, strategy=PreferHBM())
    pool.begin_request("r1")
    key = pool.append_block("r1", 0, payload(0))
    assert pool.block_tier(key) in ("cpu", "ssd")
    assert pool.hbm_used_bytes == 0
    assert np.array_equal(pool.fetch("r1", 0, 0), payload(0))


# ---------------------------------------------------------------- prefetch
def test_prefetch_hit_and_miss_accounting(engine):
    strategy = LookAheadBatch(
        base=SplitToken(hbm_recent_blocks=1, cpu_window_blocks=1), depth=1
    )
    pool = make_pool(engine, strategy=strategy, blocks_in_hbm=8)
    for rid in ("r1", "r2"):
        pool.begin_request(rid, context_tokens=3 * BLOCK_TOKENS)
        for i in range(3):
            pool.append_block(rid, 0, payload(hash(rid) % 97 + i))
    assert len(pool.paged_out_keys("r1")) == 2

    # depth=1: only r1's paged-out blocks are planned.
    issued = pool.prefetch(["r1", "r2"])
    assert issued == 2
    assert pool.stats.prefetch_issued == 2
    assert pool.paged_out_keys("r1") == []

    pool.fetch("r1", 0, 0)  # prefetched -> hit
    pool.fetch("r2", 0, 0)  # engine-resident -> demand miss
    assert pool.stats.prefetch_hits == 1
    assert pool.stats.demand_fetches == 1
    assert pool.stats.prefetch_hit_rate == pytest.approx(0.5)

    # Re-prefetching already-resident blocks is a no-op.
    assert pool.prefetch(["r1"]) == 0


def test_eviction_clears_prefetched_flag(engine):
    strategy = LookAheadBatch(base=PreferHBM(), depth=1)
    pool = make_pool(engine, strategy=strategy, blocks_in_hbm=1)
    pool.begin_request("r1", context_tokens=2 * BLOCK_TOKENS)
    k0 = pool.append_block("r1", 0, payload(0))
    pool.append_block("r1", 0, payload(1))  # evicts k0
    assert pool.block_tier(k0) != "hbm"
    pool.prefetch(["r1"])  # brings k0 back (evicting k1)
    pool.append_block("r1", 1, payload(2))  # evicts the prefetched k0 again
    assert pool.block_tier(k0) != "hbm"
    # The flag must not survive the eviction: a second prefetch re-issues.
    assert pool.prefetch(["r1"]) >= 1


# -------------------------------------------------------------- async mode
def test_async_writeback_completes_and_round_trips(engine):
    pool = make_pool(engine, blocks_in_hbm=0, sync_mode=False)
    pool.begin_request("r1")
    data = payload(3)
    key = pool.append_block("r1", 0, data)
    assert pool.drain(timeout=10.0)
    assert pool.block_tier(key) in ("cpu", "ssd")
    assert pool.stats.writebacks == 1
    # The fetch re-admits, overflows the zero-budget HBM, and pages out
    # again — a second writeback.
    assert np.array_equal(pool.fetch("r1", 0, 0), data)
    assert pool.stats.writebacks == 2


def test_async_forwarding_serves_parked_payload(engine):
    """A read during an in-flight writeback is served locally."""
    pool = make_pool(engine, blocks_in_hbm=0, sync_mode=False)
    pool.begin_request("r1")
    data = payload(4)
    pool.append_block("r1", 0, data)
    out = pool.fetch("r1", 0, 0)  # races the writeback: forward either way
    assert np.array_equal(out, data)
    assert pool.stats.forward_hits + pool.stats.hbm_hits + pool.stats.demand_fetches >= 1
    pool.drain(timeout=10.0)


def test_async_prefetch_promotion(engine):
    strategy = LookAheadBatch(base=PreferHBM(), depth=1)
    pool = make_pool(engine, strategy=strategy, blocks_in_hbm=0, sync_mode=False)
    pool.begin_request("r1")
    data = payload(5)
    pool.append_block("r1", 0, data)
    assert pool.drain(timeout=10.0)
    assert pool.prefetch(["r1"]) == 1
    out = pool.fetch("r1", 0, 0)  # may promote the in-flight prefetch
    assert np.array_equal(out, data)
    assert pool.stats.prefetch_hits == 1
    scheduler_stats = engine.stats().scheduler
    assert scheduler_stats.submitted >= 2  # writeback + prefetch at least


def test_async_release_with_inflight_io(engine):
    pool = make_pool(engine, blocks_in_hbm=0, sync_mode=False)
    pool.begin_request("r1")
    for i in range(4):
        pool.append_block("r1", 0, payload(i))
    assert pool.release_request("r1") == 4
    assert pool.drain(timeout=10.0)
    assert pool.tier_census() == {}


# ----------------------------------------------------------------- tenancy
def test_requests_map_to_tenant_books(engine, tmp_path):
    """KV traffic lands in the engine's per-tenant books (PR 6 reuse)."""
    pool = make_pool(
        engine, strategy=SplitToken(hbm_recent_blocks=1, cpu_window_blocks=4)
    )
    pool.begin_request("r1", user="alice", context_tokens=3 * BLOCK_TOKENS)
    for i in range(3):
        pool.append_block("r1", 0, payload(i))
    books = engine.stats().pool
    assert books is not None
    assert books.used_by_tenant.get("alice", 0) > 0
    # A demand fetch rides the scheduler under the same tenant.
    pool.fetch("r1", 0, 0)
    tenants = engine.stats().tenants
    assert "alice" in tenants


def test_make_strategy_names():
    for name in ("prefer-hbm", "split-token", "layer-importance", "lookahead"):
        assert make_strategy(name) is not None
    with pytest.raises(ValueError, match="unknown paging strategy"):
        make_strategy("nope")


def test_pool_validates_construction(engine):
    with pytest.raises(ValueError):
        KVBlockPool(engine, block_tokens=0)
    with pytest.raises(ValueError):
        KVBlockPool(engine, num_layers=0)
    with pytest.raises(ValueError):
        KVBlockPool(engine, hbm_capacity_bytes=-1)


def test_blocks_marked_prefetched_state_transitions(engine):
    pool = make_pool(engine, blocks_in_hbm=0)
    pool.begin_request("r1")
    key = pool.append_block("r1", 0, payload(0))
    meta = pool._table[key]
    assert meta.state is BlockState.ENGINE
    pool.fetch("r1", 0, 0)
    assert meta.state is BlockState.ENGINE  # hbm capacity 0: paged out again
