"""Tests for the GPT/BERT/T5 model zoo."""

import numpy as np
import pytest

from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.models import BERT, GPT, ModelConfig, T5, paper_eval_configs
from repro.models.config import PAPER_EVAL_GRID
from repro.optim import SGD
from repro.tensor.tensor import Tensor


def _batch(gpu, vocab=97, shape=(2, 16), seed=0):
    rng = np.random.default_rng(seed)
    return (
        Tensor(rng.integers(0, vocab, shape).astype(np.int64), device=gpu),
        Tensor(rng.integers(0, vocab, shape).astype(np.int64), device=gpu),
    )


def test_config_validation():
    with pytest.raises(ValueError):
        ModelConfig(arch="rnn", hidden=64, num_layers=1, head_dim=16)
    with pytest.raises(ValueError):
        ModelConfig(arch="gpt", hidden=65, num_layers=1, head_dim=16)
    with pytest.raises(ValueError):
        ModelConfig(arch="gpt", hidden=64, num_layers=0, head_dim=16)


def test_paper_grid_configs():
    configs = paper_eval_configs("bert")
    assert [(c.hidden, c.num_layers) for c in configs] == PAPER_EVAL_GRID
    for c in configs:
        assert c.head_dim == 128  # "attention head dimension is 128"
        assert c.seq_len == 1024


def test_t5_decoder_split():
    # "the number of decoders is half of the total number of layers,
    # rounded down"
    c3 = ModelConfig(arch="t5", hidden=128, num_layers=3)
    assert c3.num_decoder_layers == 1 and c3.num_encoder_layers == 2
    c4 = ModelConfig(arch="t5", hidden=128, num_layers=4)
    assert c4.num_decoder_layers == 2 and c4.num_encoder_layers == 2


def test_arch_mismatch_rejected(tiny_gpt_config):
    with pytest.raises(ValueError):
        BERT(tiny_gpt_config)
    with pytest.raises(ValueError):
        T5(tiny_gpt_config)


def test_gpt_forward_shapes(gpu, tiny_gpt_config):
    model = GPT(tiny_gpt_config).to(gpu)
    tokens, targets = _batch(gpu)
    logits = model(tokens)
    assert logits.shape == (2, 16, 97)
    loss = model(tokens, targets)
    assert loss.numel == 1 and loss.item() > 0


def test_gpt_loss_near_uniform_at_init(gpu, tiny_gpt_config):
    model = GPT(tiny_gpt_config).to(gpu)
    tokens, targets = _batch(gpu)
    loss = model(tokens, targets).item()
    assert abs(loss - np.log(97)) < 1.0


def test_gpt_trains(gpu, tiny_gpt_config):
    model = GPT(tiny_gpt_config).to(gpu)
    loader = TokenBatchLoader(SyntheticCorpus(vocab_size=97, seed=0), 2, 16, device=gpu)
    opt = SGD(model.parameters(), lr=5e-3)
    losses = []
    for _ in range(8):
        tokens, targets = loader.next_batch()
        loss = model(tokens, targets)
        loss.backward()
        opt.step()
        opt.zero_grad()
        losses.append(loss.item())
    assert min(losses[4:]) < losses[0]


def test_gpt_causality(gpu, tiny_gpt_config):
    """Logits at position i must not depend on tokens after i."""
    model = GPT(tiny_gpt_config).to(gpu)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 97, (1, 16)).astype(np.int64)
    logits1 = model(Tensor(ids.copy(), device=gpu)).data
    ids2 = ids.copy()
    ids2[0, -1] = (ids2[0, -1] + 1) % 97
    logits2 = model(Tensor(ids2, device=gpu)).data
    assert np.allclose(logits1[0, :-1], logits2[0, :-1], atol=1e-4)


def test_bert_not_causal(gpu, tiny_bert_config):
    model = BERT(tiny_bert_config).to(gpu)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 97, (1, 16)).astype(np.int64)
    logits1 = model(Tensor(ids.copy(), device=gpu)).data
    ids2 = ids.copy()
    ids2[0, -1] = (ids2[0, -1] + 1) % 97
    logits2 = model(Tensor(ids2, device=gpu)).data
    # Bidirectional: early positions change too.
    assert not np.allclose(logits1[0, 0], logits2[0, 0], atol=1e-5)


def test_bert_forward_and_backward(gpu, tiny_bert_config):
    model = BERT(tiny_bert_config).to(gpu)
    tokens, targets = _batch(gpu)
    loss = model(tokens, targets)
    loss.backward()
    assert all(p.grad is not None for p in model.parameters())


def test_t5_forward_and_backward(gpu, tiny_t5_config):
    model = T5(tiny_t5_config).to(gpu)
    src, _ = _batch(gpu, seed=1)
    tgt, targets = _batch(gpu, seed=2)
    loss = model(src, tgt, targets)
    loss.backward()
    assert all(p.grad is not None for p in model.parameters())


def test_t5_uses_encoder_context(gpu, tiny_t5_config):
    model = T5(tiny_t5_config).to(gpu)
    rng = np.random.default_rng(0)
    src1 = Tensor(rng.integers(0, 97, (1, 16)).astype(np.int64), device=gpu)
    src2 = Tensor(rng.integers(0, 97, (1, 16)).astype(np.int64), device=gpu)
    tgt = Tensor(rng.integers(0, 97, (1, 16)).astype(np.int64), device=gpu)
    out1 = model(src1, tgt).data
    out2 = model(src2, tgt).data
    assert not np.allclose(out1, out2, atol=1e-5)


def test_t5_requires_two_layers():
    with pytest.raises(ValueError):
        T5(ModelConfig(arch="t5", hidden=64, num_layers=1, head_dim=16))


def test_recompute_flag_preserves_results(gpu, tiny_gpt_config):
    tokens_targets = _batch(gpu)
    results = {}
    for recompute in (False, True):
        cfg = tiny_gpt_config.scaled(recompute=recompute)
        model = GPT(cfg, rng=np.random.default_rng(7)).to(gpu)
        loss = model(*tokens_targets)
        loss.backward()
        results[recompute] = (
            loss.item(),
            {n: p.grad.data.copy() for n, p in model.named_parameters()},
        )
    assert results[False][0] == pytest.approx(results[True][0], abs=1e-6)
    for name in results[False][1]:
        assert np.allclose(results[False][1][name], results[True][1][name], atol=1e-5)
