"""Tests for the SSD endurance model and RAID0 arrays (Sec. II-C/III-D)."""

import pytest

from repro.device.ssd import (
    INTEL_OPTANE_P5800X_1600GB,
    RAID0Array,
    SAMSUNG_980_PRO_1TB,
    SSD,
    SSDEnduranceModel,
    SECONDS_PER_YEAR,
)


def test_effective_endurance_includes_sequential_and_retention_bonus():
    model = SSDEnduranceModel(jesd_waf=2.5, workload_waf=1.0, retention_relaxation=86.0)
    eff = model.effective_endurance_bytes(SAMSUNG_980_PRO_1TB)
    # 600 TBW x 2.5 x 86
    assert eff == pytest.approx(600e12 * 2.5 * 86.0)


def test_lifespan_formula():
    model = SSDEnduranceModel()
    # t_life = S_endurance * t_step / S_activations
    years = model.lifespan_years(
        SAMSUNG_980_PRO_1TB,
        activation_bytes_per_step=100e9,
        step_time_s=10.0,
        num_ssds=4,
    )
    endurance = model.effective_endurance_bytes(SAMSUNG_980_PRO_1TB) * 4
    assert years == pytest.approx(endurance * 10.0 / 100e9 / SECONDS_PER_YEAR)


def test_lifespan_zero_writes_is_infinite():
    model = SSDEnduranceModel()
    assert model.lifespan_years(SAMSUNG_980_PRO_1TB, 0, 1.0) == float("inf")


def test_lifespan_monotone_in_step_time():
    model = SSDEnduranceModel()
    slow = model.lifespan_years(SAMSUNG_980_PRO_1TB, 1e9, 10.0)
    fast = model.lifespan_years(SAMSUNG_980_PRO_1TB, 1e9, 1.0)
    assert slow > fast


def test_paper_fig5_assumption_exceeds_two_years():
    """4x 980 PRO per GPU, ~12 GB/s writes -> lifespan > 2 years."""
    model = SSDEnduranceModel()
    step = 30.0
    act_bytes = 12e9 * step / 2  # write bw x half step
    years = model.lifespan_years(SAMSUNG_980_PRO_1TB, act_bytes, step, num_ssds=4)
    assert years > 2.0


def test_wear_tracking():
    ssd = SSD(SAMSUNG_980_PRO_1TB)
    ssd.record_write(10**12)
    assert ssd.host_bytes_written == 10**12
    assert 0 < ssd.wear_fraction() < 1


def test_write_read_time_scale_with_size():
    ssd = SSD(INTEL_OPTANE_P5800X_1600GB)
    assert ssd.write_time(2 * 10**9) > ssd.write_time(10**9)
    assert ssd.read_time(0) == 0.0
    assert ssd.write_time(0) == 0.0


def test_invalid_waf_rejected():
    with pytest.raises(ValueError):
        SSDEnduranceModel(jesd_waf=0)
    with pytest.raises(ValueError):
        SSDEnduranceModel(retention_relaxation=0.5)


def test_raid0_bandwidth_scales_with_members():
    one = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=1)
    four = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=4)
    assert four.write_bw == pytest.approx(4 * one.write_bw)
    assert four.write_time(10**9) < one.write_time(10**9)


def test_raid0_striping_spreads_wear():
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=4)
    array.record_write(4000)
    assert [m.host_bytes_written for m in array.members] == [1000] * 4
    assert array.host_bytes_written == 4000


def test_raid0_stripe_remainder_goes_to_first_member():
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=3)
    array.record_write(10)
    assert array.members[0].host_bytes_written == 3 + 1
    assert array.host_bytes_written == 10


def test_raid0_requires_member():
    with pytest.raises(ValueError):
        RAID0Array(num_ssds=0)


def test_evaluation_machine_arrays():
    """Table II: two arrays, 3x and 4x P5800X."""
    md0 = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=3, name="md0")
    md1 = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=4, name="md1")
    assert md1.write_bw > md0.write_bw
    # Combined write bandwidth comfortably covers the paper's max
    # requirement of ~18 GB/s per GPU (Table III).
    assert md1.write_bw / 1e9 > 18.0
