"""Tests for the GPU device model."""

import pytest

from repro.device.gpu import A100_PCIE_40GB, GPU, KernelTimingModel


def test_efficiency_monotone_in_batch():
    model = KernelTimingModel(A100_PCIE_40GB)
    effs = [model.efficiency(b) for b in (1, 2, 4, 8, 16)]
    assert all(a < b for a, b in zip(effs, effs[1:]))
    assert effs[-1] < model.eff_max


def test_batch_one_already_efficient():
    """Transformer GEMMs carry the full sequence even at B=1."""
    model = KernelTimingModel(A100_PCIE_40GB)
    assert model.efficiency(1) > 0.7 * model.eff_max


def test_kernel_time_roofline():
    model = KernelTimingModel(A100_PCIE_40GB, launch_overhead_s=0.0)
    # Compute-bound: huge flops, no bytes.
    t_compute = model.kernel_time(1e12, 0, batch_size=16)
    # Memory-bound: no flops, huge bytes.
    t_memory = model.kernel_time(0, 1e10, batch_size=16)
    assert t_compute == pytest.approx(
        1e12 / (A100_PCIE_40GB.fp16_flops * model.efficiency(16))
    )
    assert t_memory == pytest.approx(1e10 / A100_PCIE_40GB.mem_bandwidth)


def test_kernel_time_rejects_negative():
    model = KernelTimingModel(A100_PCIE_40GB)
    with pytest.raises(ValueError):
        model.kernel_time(-1, 0)
    with pytest.raises(ValueError):
        model.efficiency(0)


def test_invalid_eff_max():
    with pytest.raises(ValueError):
        KernelTimingModel(A100_PCIE_40GB, eff_max=1.5)


def test_flop_counters_distinguish_recompute():
    gpu = GPU()
    gpu.record_flops(100.0, algorithmic=True)
    gpu.record_flops(50.0, algorithmic=False)  # recomputation
    assert gpu.flops_executed == 150.0
    assert gpu.algorithmic_flops == 100.0


def test_model_throughput_definition():
    gpu = GPU()
    gpu.record_flops(2e12, algorithmic=True)
    gpu.record_flops(2e12, algorithmic=False)
    # Fig. 7: only algorithmic flops count.
    assert gpu.model_throughput_tflops(step_time_s=1.0) == pytest.approx(2.0)


def test_reset_counters():
    gpu = GPU()
    gpu.record_flops(10.0)
    gpu.reset_counters()
    assert gpu.flops_executed == 0.0


def test_capacity_enforcement_optional():
    free = GPU(enforce_capacity=False)
    assert free.ledger.capacity_bytes is None
    capped = GPU(enforce_capacity=True)
    assert capped.ledger.capacity_bytes == A100_PCIE_40GB.memory_bytes


def test_a100_spec_constants():
    assert A100_PCIE_40GB.memory_bytes == 40 * 1024**3
    assert A100_PCIE_40GB.fp16_tflops == 312.0
