"""Tests for the memory ledger."""

import threading

import pytest

from repro.device.memory import MemoryLedger, MemoryTag, OutOfMemoryError


def test_alloc_free_roundtrip():
    ledger = MemoryLedger()
    ledger.alloc(1000, MemoryTag.ACTIVATIONS)
    assert ledger.current(MemoryTag.ACTIVATIONS) == 1000
    ledger.free(1000, MemoryTag.ACTIVATIONS)
    assert ledger.current(MemoryTag.ACTIVATIONS) == 0


def test_peak_tracks_high_watermark():
    ledger = MemoryLedger()
    ledger.alloc(500, MemoryTag.ACTIVATIONS)
    ledger.alloc(700, MemoryTag.ACTIVATIONS)
    ledger.free(1000, MemoryTag.ACTIVATIONS)
    assert ledger.peak(MemoryTag.ACTIVATIONS) == 1200
    assert ledger.current(MemoryTag.ACTIVATIONS) == 200


def test_per_tag_isolation():
    ledger = MemoryLedger()
    ledger.alloc(100, MemoryTag.WEIGHTS)
    ledger.alloc(200, MemoryTag.ACTIVATIONS)
    assert ledger.current(MemoryTag.WEIGHTS) == 100
    assert ledger.current(MemoryTag.ACTIVATIONS) == 200
    assert ledger.current() == 300


def test_total_peak_across_tags():
    ledger = MemoryLedger()
    ledger.alloc(100, MemoryTag.WEIGHTS)
    ledger.alloc(100, MemoryTag.ACTIVATIONS)
    ledger.free(100, MemoryTag.WEIGHTS)
    ledger.alloc(50, MemoryTag.GRADIENTS)
    assert ledger.peak() == 200


def test_overfree_raises():
    ledger = MemoryLedger()
    ledger.alloc(10, MemoryTag.ACTIVATIONS)
    with pytest.raises(ValueError):
        ledger.free(11, MemoryTag.ACTIVATIONS)


def test_negative_alloc_rejected():
    ledger = MemoryLedger()
    with pytest.raises(ValueError):
        ledger.alloc(-1, MemoryTag.ACTIVATIONS)


def test_capacity_enforced():
    ledger = MemoryLedger(capacity_bytes=100)
    ledger.alloc(90, MemoryTag.ACTIVATIONS)
    with pytest.raises(OutOfMemoryError):
        ledger.alloc(11, MemoryTag.ACTIVATIONS)
    # Failed alloc must not corrupt accounting.
    assert ledger.current() == 90


def test_reset_peak_scopes_measurement():
    ledger = MemoryLedger()
    ledger.alloc(1000, MemoryTag.ACTIVATIONS)
    ledger.free(1000, MemoryTag.ACTIVATIONS)
    ledger.reset_peak()
    assert ledger.peak() == 0
    ledger.alloc(10, MemoryTag.ACTIVATIONS)
    assert ledger.peak() == 10


def test_reset_peak_single_tag():
    ledger = MemoryLedger()
    ledger.alloc(100, MemoryTag.ACTIVATIONS)
    ledger.alloc(100, MemoryTag.WEIGHTS)
    ledger.free(100, MemoryTag.ACTIVATIONS)
    ledger.reset_peak(MemoryTag.ACTIVATIONS)
    assert ledger.peak(MemoryTag.ACTIVATIONS) == 0
    assert ledger.peak(MemoryTag.WEIGHTS) == 100


def test_total_allocated_is_cumulative():
    ledger = MemoryLedger()
    for _ in range(5):
        ledger.alloc(10, MemoryTag.ACTIVATIONS)
        ledger.free(10, MemoryTag.ACTIVATIONS)
    assert ledger.total_allocated(MemoryTag.ACTIVATIONS) == 50


def test_snapshot_consistency():
    ledger = MemoryLedger()
    ledger.alloc(123, MemoryTag.OPTIMIZER)
    snap = ledger.snapshot()
    assert snap.current(MemoryTag.OPTIMIZER) == 123
    assert snap.current_total == 123
    ledger.free(123, MemoryTag.OPTIMIZER)
    # Snapshot is a copy, unaffected by later mutation.
    assert snap.current(MemoryTag.OPTIMIZER) == 123


def test_thread_safety_under_contention():
    ledger = MemoryLedger()
    iterations = 2000

    def worker():
        for _ in range(iterations):
            ledger.alloc(8, MemoryTag.ACTIVATIONS)
            ledger.free(8, MemoryTag.ACTIVATIONS)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert ledger.current(MemoryTag.ACTIVATIONS) == 0
