"""Tests for the PCIe link model and virtual clock."""

import pytest

from repro.device.clock import VirtualClock
from repro.device.pcie import (
    GPU_LINK_GEN4_X16,
    PCIeGeneration,
    PCIeLink,
    SSD_LINK_GEN4_X4,
)


def test_gen4_x16_bandwidth_in_expected_range():
    # A100's x16 Gen4 link: ~25-28 GB/s usable.
    assert 24.0 < GPU_LINK_GEN4_X16.bandwidth_gbps < 32.0


def test_bandwidth_scales_with_lanes():
    x4 = PCIeLink(PCIeGeneration.GEN4, lanes=4)
    x16 = PCIeLink(PCIeGeneration.GEN4, lanes=16)
    assert x16.bandwidth == pytest.approx(4 * x4.bandwidth)


def test_gen5_doubles_gen4():
    g4 = PCIeLink(PCIeGeneration.GEN4, lanes=4)
    g5 = PCIeLink(PCIeGeneration.GEN5, lanes=4)
    assert g5.bandwidth == pytest.approx(2 * g4.bandwidth, rel=0.01)


def test_transfer_time_includes_latency():
    link = PCIeLink(latency_s=1e-5)
    assert link.transfer_time(0) == 0.0
    assert link.transfer_time(1) > 1e-5


def test_ssd_link_covers_p5800x():
    # One P5800X writes at ~6.1 GB/s; its x4 Gen4 link must cover that.
    assert SSD_LINK_GEN4_X4.bandwidth_gbps > 6.1


def test_invalid_links_rejected():
    with pytest.raises(ValueError):
        PCIeLink(lanes=0)
    with pytest.raises(ValueError):
        PCIeLink(efficiency=1.5)
    with pytest.raises(ValueError):
        GPU_LINK_GEN4_X16.transfer_time(-1)


def test_clock_advances_monotonically():
    clock = VirtualClock()
    clock.advance_to(5.0)
    clock.advance_by(1.0)
    assert clock.now == 6.0
    with pytest.raises(ValueError):
        clock.advance_to(1.0)
    with pytest.raises(ValueError):
        clock.advance_by(-1.0)


def test_clock_ticks_unique_and_increasing():
    clock = VirtualClock()
    ticks = [clock.next_tick() for _ in range(10)]
    assert ticks == sorted(ticks)
    assert len(set(ticks)) == 10


def test_clock_reset():
    clock = VirtualClock(start=3.0)
    assert clock.now == 3.0
    clock.advance_by(2.0)
    clock.reset()
    assert clock.now == 0.0
