"""Tests for the NN layer library."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, GELU, LayerNorm, Linear, MLP, MultiHeadAttention, TransformerLayer
from repro.tensor.tensor import Tensor


def _x(shape=(2, 5, 16), seed=0):
    return Tensor(
        np.random.default_rng(seed).standard_normal(shape).astype(np.float32),
        requires_grad=True,
    )


def test_linear_shapes_and_transpose_weight():
    layer = Linear(16, 8, rng=np.random.default_rng(0))
    out = layer(_x())
    assert out.shape == (2, 5, 8)
    assert layer.weight.shape == (8, 16)  # (out, in), used transposed


def test_linear_no_bias():
    layer = Linear(4, 4, bias=False, rng=np.random.default_rng(0))
    assert layer.bias is None
    assert len(list(layer.parameters())) == 1


def test_linear_matches_numpy():
    layer = Linear(4, 3, rng=np.random.default_rng(0))
    x = _x((2, 4))
    expected = x.data @ layer.weight.data.T + layer.bias.data
    assert np.allclose(layer(x).data, expected, atol=1e-5)


def test_layernorm_normalizes():
    ln = LayerNorm(16)
    out = ln(_x())
    assert np.abs(out.data.mean(-1)).max() < 1e-4
    assert np.abs(out.data.std(-1) - 1.0).max() < 1e-2


def test_layernorm_affine_params_learnable():
    ln = LayerNorm(8)
    x = _x((3, 8))
    ln(x).sum().backward()
    assert ln.gamma.grad is not None and ln.beta.grad is not None


def test_embedding_lookup():
    emb = Embedding(10, 4, rng=np.random.default_rng(0))
    ids = Tensor(np.array([[1, 1, 2]], dtype=np.int64))
    out = emb(ids)
    assert out.shape == (1, 3, 4)
    assert np.array_equal(out.data[0, 0], out.data[0, 1])


def test_dropout_train_vs_eval():
    d = Dropout(0.5)
    x = _x((64, 64))
    out = d(x)
    assert (out.data == 0).sum() > 0
    d.eval()
    assert d(x) is x


def test_dropout_rejects_bad_p():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_dropout_preserves_expectation():
    d = Dropout(0.3)
    x = Tensor(np.ones((200, 200), dtype=np.float32))
    out = d(x)
    assert abs(out.data.mean() - 1.0) < 0.02


def test_attention_self_shapes():
    attn = MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
    assert attn(_x()).shape == (2, 5, 16)


def test_attention_causal_masks_future():
    """Changing a future token must not change earlier outputs."""
    attn = MultiHeadAttention(16, 4, causal=True, rng=np.random.default_rng(0))
    x1 = _x((1, 5, 16), seed=1)
    x2_data = x1.data.copy()
    x2_data[0, 4] += 10.0  # perturb last position only
    x2 = Tensor(x2_data)
    out1 = attn(x1).data
    out2 = attn(x2).data
    assert np.allclose(out1[0, :4], out2[0, :4], atol=1e-4)
    assert not np.allclose(out1[0, 4], out2[0, 4], atol=1e-4)


def test_attention_bidirectional_sees_future():
    attn = MultiHeadAttention(16, 4, causal=False, rng=np.random.default_rng(0))
    x1 = _x((1, 5, 16), seed=1)
    x2_data = x1.data.copy()
    x2_data[0, 4] += 10.0
    out1 = attn(x1).data
    out2 = attn(Tensor(x2_data)).data
    assert not np.allclose(out1[0, 0], out2[0, 0], atol=1e-4)


def test_cross_attention_uses_context():
    attn = MultiHeadAttention(16, 4, is_cross=True, rng=np.random.default_rng(0))
    x = _x((2, 5, 16))
    ctx = _x((2, 7, 16), seed=9)
    out = attn(x, context=ctx)
    assert out.shape == (2, 5, 16)
    with pytest.raises(ValueError):
        attn(x)


def test_attention_rejects_bad_heads():
    with pytest.raises(ValueError):
        MultiHeadAttention(16, 5)


def test_mlp_expansion():
    mlp = MLP(16, rng=np.random.default_rng(0))
    assert mlp.ffn_hidden == 64
    assert mlp(_x()).shape == (2, 5, 16)


def test_transformer_layer_residual_path():
    """With zeroed projections, the layer must be the identity."""
    layer = TransformerLayer(16, 4, rng=np.random.default_rng(0))
    layer.attn.out_proj.weight.data[:] = 0
    layer.attn.out_proj.bias.data[:] = 0
    layer.mlp.fc_out.weight.data[:] = 0
    layer.mlp.fc_out.bias.data[:] = 0
    x = _x()
    assert np.allclose(layer(x).data, x.data, atol=1e-5)


def test_transformer_layer_gradients_flow_to_all_params():
    layer = TransformerLayer(16, 4, rng=np.random.default_rng(0))
    layer(_x()).sum().backward()
    for name, p in layer.named_parameters():
        assert p.grad is not None, name


def test_decoder_layer_with_cross_attention():
    layer = TransformerLayer(
        16, 4, causal=True, cross_attention=True, rng=np.random.default_rng(0)
    )
    x = _x((2, 5, 16))
    ctx = _x((2, 7, 16), seed=3)
    assert layer(x, context=ctx).shape == (2, 5, 16)
    with pytest.raises(ValueError):
        layer(x)


def test_gelu_module():
    out = GELU()(_x((4, 4)))
    assert out.shape == (4, 4)
