"""Tests for tensor parallelism with per-rank offloading."""

import numpy as np
import pytest

from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.distributed import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    all_reduce,
    shard_columns,
    shard_rows,
)
from repro.nn.linear import Linear
from repro.nn.transformer import MLP
from repro.tensor import ops
from repro.tensor.tensor import Tensor


def _x(shape=(2, 8, 16), seed=1, gpu=None):
    data = np.random.default_rng(seed).standard_normal(shape).astype(np.float32)
    if gpu is None:
        return Tensor(data, requires_grad=True)
    return Tensor(data, device=gpu, requires_grad=True)


# ------------------------------------------------------------------ primitives
def test_all_reduce_sums_and_broadcasts_grad():
    a = _x((4,), seed=1)
    b = _x((4,), seed=2)
    total = all_reduce([a, b])
    assert np.allclose(total.data, a.data + b.data)
    total.sum().backward()
    assert np.all(a.grad.data == 1.0)
    assert np.all(b.grad.data == 1.0)


def test_all_reduce_validation():
    with pytest.raises(ValueError):
        all_reduce([])


def test_shard_helpers():
    w = np.arange(24, dtype=np.float32).reshape(4, 6)
    cols = shard_columns(w, 2)
    assert cols[0].shape == (2, 6) and np.array_equal(np.vstack(cols), w)
    rows = shard_rows(w, 3)
    assert rows[0].shape == (4, 2) and np.array_equal(np.hstack(rows), w)
    with pytest.raises(ValueError):
        shard_columns(w, 3)
    with pytest.raises(ValueError):
        shard_rows(w, 4)


# ---------------------------------------------------------------------- layers
def test_column_parallel_matches_unsharded():
    layer = ColumnParallelLinear(16, 8, world_size=2, rng=np.random.default_rng(0))
    x = _x()
    shards = layer(list([x, x]))
    gathered = layer.gather(shards)
    ref = Linear(16, 8, rng=np.random.default_rng(7))
    ref.weight.data[:] = np.concatenate([r.weight.data for r in layer.ranks], axis=0)
    ref.bias.data[:] = np.concatenate([r.bias.data for r in layer.ranks])
    assert np.allclose(gathered.data, ref(x).data, atol=1e-5)


def test_row_parallel_matches_unsharded():
    layer = RowParallelLinear(16, 8, world_size=2, rng=np.random.default_rng(0))
    x = _x()
    # Row-parallel input: each rank owns one slice of the feature dim.
    x0 = ops.narrow(x, 2, 0, 8)
    x1 = ops.narrow(x, 2, 8, 8)
    out = layer([x0, x1])
    ref = Linear(16, 8, rng=np.random.default_rng(7))
    ref.weight.data[:] = np.concatenate([r.weight.data for r in layer.ranks], axis=1)
    ref.bias.data[:] = layer.bias.data
    assert np.allclose(out.data, ref(x).data, atol=1e-5)


def test_world_size_one_degenerates():
    layer = ColumnParallelLinear(8, 8, world_size=1, rng=np.random.default_rng(0))
    x = _x((2, 8))
    assert layer.gather(layer([x])).shape == (2, 8)


def test_rank_input_count_enforced():
    layer = ColumnParallelLinear(8, 8, world_size=2, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        layer([_x((2, 8))])


# ------------------------------------------------------------------------- MLP
def test_tp_mlp_matches_unsharded_forward_and_grads():
    tp = TensorParallelMLP(16, world_size=2, rng=np.random.default_rng(0))
    w_in, b_in, w_out, b_out = tp.reference_weights()
    ref = MLP(16, rng=np.random.default_rng(9))
    ref.fc_in.weight.data[:] = w_in
    ref.fc_in.bias.data[:] = b_in
    ref.fc_out.weight.data[:] = w_out
    ref.fc_out.bias.data[:] = b_out

    x_tp = _x(seed=3)
    x_ref = _x(seed=3)
    out_tp = tp(x_tp)
    out_ref = ref(x_ref)
    assert np.allclose(out_tp.data, out_ref.data, atol=1e-4)

    out_tp.sum().backward()
    out_ref.sum().backward()
    assert np.allclose(x_tp.grad.data, x_ref.grad.data, atol=1e-4)
    # Per-rank weight grads equal the matching slices of the full grads.
    full_in_grad = ref.fc_in.weight.grad.data
    for r, rank in enumerate(tp.fc_in.ranks):
        expected = full_in_grad[r * 32 : (r + 1) * 32]
        assert np.allclose(rank.weight.grad.data, expected, atol=1e-4), f"rank {r}"
    full_out_grad = ref.fc_out.weight.grad.data
    for r, rank in enumerate(tp.fc_out.ranks):
        expected = full_out_grad[:, r * 32 : (r + 1) * 32]
        assert np.allclose(rank.weight.grad.data, expected, atol=1e-4), f"rank {r}"


def test_tp_mlp_with_per_rank_caches(gpu, tmp_path):
    """The Table II setup: each rank has its own cache and dedicated
    array; both offload their shard's activations, results exact."""
    tp = TensorParallelMLP(32, world_size=2, rng=np.random.default_rng(0))
    tp.to(gpu)
    baseline_x = _x((4, 16, 32), seed=5, gpu=gpu)
    tp(baseline_x).sum().backward()
    baseline_grad = baseline_x.grad.data.copy()
    baseline_wgrads = {n: p.grad.data.copy() for n, p in tp.named_parameters()}
    tp.zero_grad()

    caches = []
    try:
        for r, rank_pair in enumerate(zip(tp.fc_in.ranks, tp.fc_out.ranks)):
            cache = TensorCache(
                SSDOffloader(tmp_path / f"rank{r}"),
                policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
            )
            for module in rank_pair:
                cache.register_weights(module)
                cache.attach(module)
            caches.append(cache)
        # The caches' pack hooks nest: innermost wins per save, and since
        # each rank's modules fire under its own scope stack, each cache
        # manages its own rank's tensors.  For the lockstep single-thread
        # model we run them under one combined hook context.
        x = _x((4, 16, 32), seed=5, gpu=gpu)
        with caches[0]:
            out = tp(x)
            for cache in caches:
                cache.on_backward_begin()
            out.sum().backward()
            for cache in caches:
                cache.on_backward_end()
        for cache in caches:
            cache.on_step_end()
        assert np.allclose(x.grad.data, baseline_grad, atol=1e-5)
        for n, p in tp.named_parameters():
            assert np.allclose(p.grad.data, baseline_wgrads[n], atol=1e-5), n
        # Rank 0's cache did real offloading to its own array.
        assert caches[0].stats.stored_bytes > 0
        assert (tmp_path / "rank0").exists()
    finally:
        for cache in caches:
            cache.shutdown()
