"""Tests for the thread-local execution flags."""

import threading

from repro.tensor import flags


def test_defaults():
    assert flags.grad_enabled()
    assert not flags.in_backward()
    assert not flags.recompute_mode()


def test_no_grad_scopes():
    with flags.no_grad():
        assert not flags.grad_enabled()
        with flags.no_grad():
            assert not flags.grad_enabled()
    assert flags.grad_enabled()


def test_backward_running_scope():
    with flags.backward_running():
        assert flags.in_backward()
    assert not flags.in_backward()


def test_recompute_region_scope():
    with flags.recompute_region():
        assert flags.recompute_mode()
    assert not flags.recompute_mode()


def test_flags_restore_on_exception():
    try:
        with flags.no_grad():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert flags.grad_enabled()


def test_flags_are_thread_local():
    """Offloading threads must never observe the training thread's flags."""
    seen = {}

    def worker():
        seen["grad"] = flags.grad_enabled()
        seen["backward"] = flags.in_backward()

    with flags.no_grad():
        with flags.backward_running():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
    assert seen == {"grad": True, "backward": False}


def test_nested_mixed_flags():
    with flags.backward_running():
        with flags.recompute_region():
            assert flags.in_backward() and flags.recompute_mode()
            with flags.set_flag("grad_enabled", True):
                assert flags.grad_enabled()
        assert flags.in_backward() and not flags.recompute_mode()
