"""Edge cases and error handling for the op library."""

import numpy as np
import pytest

from repro.tensor import ops
from repro.tensor.function import Function, FunctionContext
from repro.tensor.tensor import Tensor


def _t(data, requires_grad=True):
    return Tensor(np.asarray(data, dtype=np.float32), requires_grad=requires_grad)


def test_apply_requires_tensor_input():
    with pytest.raises(TypeError):
        ops.Add.apply(1.0, 2.0)


def test_save_for_backward_twice_rejected():
    ctx = FunctionContext()
    ctx.save_for_backward(_t([1.0]))
    with pytest.raises(RuntimeError):
        ctx.save_for_backward(_t([2.0]))


def test_scale_by_zero_and_negative():
    x = _t([1.0, -2.0])
    assert np.allclose((x * 0.0).data, 0.0)
    y = x * -1.5
    y.backward(Tensor(np.ones(2, dtype=np.float32)))
    assert np.all(x.grad.data == -1.5)


def test_matmul_shape_mismatch_raises():
    with pytest.raises(ValueError):
        _t(np.ones((2, 3))) @ _t(np.ones((4, 2)))


def test_reshape_size_mismatch_raises():
    with pytest.raises(ValueError):
        _t(np.ones((2, 3))).reshape(5)


def test_reshape_with_minus_one():
    x = _t(np.ones((2, 6)))
    assert x.reshape(4, -1).shape == (4, 3)


def test_narrow_bounds():
    x = _t(np.arange(6).reshape(2, 3))
    y = ops.narrow(x, 1, 1, 2)
    assert y.shape == (2, 2)
    assert np.array_equal(y.data, [[1, 2], [4, 5]])


def test_transpose_identity_axes():
    x = _t(np.ones((2, 3)))
    y = ops.transpose(x, 0, 0)
    assert y.shape == (2, 3)
    y.sum().backward()
    assert x.grad.shape == (2, 3)


def test_softmax_extreme_logits_stable():
    x = _t([[1000.0, -1000.0, 0.0]])
    out = ops.softmax(x)
    assert np.isfinite(out.data).all()
    assert out.data[0, 0] == pytest.approx(1.0, abs=1e-5)


def test_cross_entropy_extreme_logits_stable():
    logits = _t(np.array([[[500.0, -500.0]]]))
    targets = Tensor(np.array([[1]], dtype=np.int64))
    loss = ops.cross_entropy(logits, targets)
    assert np.isfinite(loss.item())
    loss.backward()
    assert np.isfinite(logits.grad.data).all()


def test_gelu_extremes():
    x = _t([-100.0, 0.0, 100.0])
    out = ops.gelu(x)
    assert out.data[0] == pytest.approx(0.0, abs=1e-4)
    assert out.data[1] == pytest.approx(0.0, abs=1e-6)
    assert out.data[2] == pytest.approx(100.0, rel=1e-4)


def test_layernorm_constant_row():
    """A constant row has zero variance; eps keeps it finite."""
    x = _t(np.full((2, 4), 3.0))
    gamma = _t(np.ones(4), requires_grad=True)
    beta = _t(np.zeros(4), requires_grad=True)
    out = ops.layernorm(x, gamma, beta)
    assert np.isfinite(out.data).all()
    assert np.abs(out.data).max() < 1e-2


def test_dropout_p_zero_identity():
    x = _t(np.ones(8))
    assert ops.dropout(x, 0.0, seed=1) is x


def test_dropout_rejects_p_one():
    with pytest.raises(ValueError):
        ops.dropout(_t(np.ones(8)), 1.0, seed=1)


def test_flash_attention_rectangular_causal():
    """Cross-length causal masking (s_q != s_k) aligns to the sequence end."""
    rng = np.random.default_rng(0)
    q = _t(rng.standard_normal((1, 1, 2, 4)))
    k = _t(rng.standard_normal((1, 1, 5, 4)))
    v = _t(rng.standard_normal((1, 1, 5, 4)))
    out = ops.flash_attention(q, k, v, causal=True)
    assert out.shape == (1, 1, 2, 4)
    out.sum().backward()
    # The first query (aligned to key position 3) must not receive grad
    # contributions from the final key/value position.
    assert np.allclose(v.grad.data[0, 0, 4], v.grad.data[0, 0, 4])  # finite
    assert np.isfinite(q.grad.data).all()


def test_embedding_out_of_range_raises():
    weight = _t(np.ones((4, 2)))
    ids = Tensor(np.array([[5]], dtype=np.int64))
    with pytest.raises(IndexError):
        ops.embedding(weight, ids)


def test_concat_mismatched_dims_raise():
    with pytest.raises(ValueError):
        ops.concat(_t(np.ones((2, 2))), _t(np.ones((3, 2))), axis=1)


def test_sum_keepdims():
    x = _t(np.ones((2, 3)))
    y = x.sum(axis=1, keepdims=True)
    assert y.shape == (2, 1)
    y.sum().backward()
    assert np.all(x.grad.data == 1.0)


def test_mean_axis_none_scalarish():
    x = _t(np.arange(6).reshape(2, 3))
    m = x.mean()
    assert m.item() == pytest.approx(2.5)


def test_chained_views_backward():
    x = _t(np.arange(24).reshape(2, 3, 4))
    y = x.reshape(6, 4).transpose(0, 1).reshape(-1)
    y.sum().backward()
    assert np.all(x.grad.data == 1.0)


def test_flops_reported_for_matmul(gpu):
    a = Tensor(np.ones((4, 8), dtype=np.float32), device=gpu, requires_grad=True)
    b = Tensor(np.ones((8, 2), dtype=np.float32), device=gpu, requires_grad=True)
    gpu.reset_counters()
    a @ b
    assert gpu.algorithmic_flops == 2 * 4 * 8 * 2


def test_custom_function_integration():
    """Users can define new ops against the Function API."""

    class Square(Function):
        @staticmethod
        def forward(ctx, a):
            ctx.save_for_backward(a.detach())
            return a.data * a.data

        @staticmethod
        def backward(ctx, grad):
            (a,) = ctx.saved_tensors
            return 2.0 * a.data * grad

    x = _t([3.0])
    y = Square.apply(x)
    y.backward(Tensor(np.ones(1, dtype=np.float32)))
    assert y.data[0] == 9.0
    assert x.grad.data[0] == 6.0
