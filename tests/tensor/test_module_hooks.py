"""Tests for the module system and its four hook kinds (Sec. III-B)."""

import numpy as np

from repro.nn.linear import Linear
from repro.tensor import no_grad
from repro.tensor.module import Module, ModuleList
from repro.tensor.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x))


def _x():
    return Tensor(np.ones((2, 4), dtype=np.float32), requires_grad=True)


def test_parameter_registration():
    m = TwoLayer()
    names = dict(m.named_parameters())
    assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}
    assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


def test_modules_iteration():
    m = TwoLayer()
    mods = list(m.modules())
    assert m in mods and m.fc1 in mods and m.fc2 in mods


def test_forward_hook_pair_order():
    m = TwoLayer()
    events = []
    for name, sub in (("root", m), ("fc1", m.fc1), ("fc2", m.fc2)):
        sub.register_forward_pre_hook(lambda mod, inp, n=name: events.append(f"pre:{n}"))
        sub.register_forward_hook(lambda mod, inp, out, n=name: events.append(f"post:{n}"))
    m(_x())
    assert events == ["pre:root", "pre:fc1", "post:fc1", "pre:fc2", "post:fc2", "post:root"]


def test_backward_hooks_fire_in_reverse_module_order():
    m = TwoLayer()
    events = []
    for name, sub in (("fc1", m.fc1), ("fc2", m.fc2)):
        sub.register_full_backward_pre_hook(lambda mod, g, n=name: events.append(f"enter:{n}"))
        sub.register_full_backward_hook(lambda mod, g, n=name: events.append(f"exit:{n}"))
    m(_x()).sum().backward()
    assert events == ["enter:fc2", "exit:fc2", "enter:fc1", "exit:fc1"]


def test_backward_hooks_fire_once_per_call():
    m = Linear(4, 4, rng=np.random.default_rng(0))
    count = [0]
    m.register_full_backward_hook(lambda mod, g: count.__setitem__(0, count[0] + 1))
    m(_x()).sum().backward()
    assert count[0] == 1


def test_hook_removal():
    m = Linear(4, 4, rng=np.random.default_rng(0))
    fired = []
    handle = m.register_forward_pre_hook(lambda mod, inp: fired.append(1))
    m(_x())
    handle.remove()
    m(_x())
    assert len(fired) == 1


def test_no_boundary_nodes_under_no_grad():
    m = Linear(4, 4, rng=np.random.default_rng(0))
    m.register_full_backward_pre_hook(lambda mod, g: None)
    with no_grad():
        out = m(_x())
    assert out.grad_fn is None


def test_boundary_preserves_values_and_grads():
    """Backward hooks must not perturb results."""
    rng = np.random.default_rng(0)
    x_data = rng.standard_normal((2, 4)).astype(np.float32)

    def run(with_hooks):
        m = TwoLayer()
        if with_hooks:
            for sub in m.modules():
                sub.register_full_backward_pre_hook(lambda mod, g: None)
                sub.register_full_backward_hook(lambda mod, g: None)
        x = Tensor(x_data.copy(), requires_grad=True)
        out = m(x)
        out.sum().backward()
        return out.data.copy(), x.grad.data.copy()

    out_plain, grad_plain = run(False)
    out_hooked, grad_hooked = run(True)
    assert np.array_equal(out_plain, out_hooked)
    assert np.array_equal(grad_plain, grad_hooked)


def test_train_eval_propagates():
    m = TwoLayer()
    m.eval()
    assert not m.fc1.training
    m.train()
    assert m.fc2.training


def test_zero_grad():
    m = TwoLayer()
    m(_x()).sum().backward()
    assert any(p.grad is not None for p in m.parameters())
    m.zero_grad()
    assert all(p.grad is None for p in m.parameters())


def test_to_device_moves_parameters(gpu):
    m = TwoLayer().to(gpu)
    assert all(not p.is_cpu for p in m.parameters())
    out = m(Tensor(np.ones((1, 4), dtype=np.float32), device=gpu))
    assert not out.is_cpu


def test_module_list():
    layers = ModuleList(Linear(4, 4, rng=np.random.default_rng(i)) for i in range(3))
    assert len(layers) == 3
    assert layers[1] is list(layers)[1]
    # Parameters visible through the list.
    parent = Module()
    parent.layers = layers
    assert len(list(parent.parameters())) == 6
