"""Tests for the saved-tensor pack/unpack hook mechanism (Alg. 1's base)."""

import numpy as np
import pytest

from repro.tensor import ops
from repro.tensor.saved_tensors import SavedTensor, current_hooks, saved_tensors_hooks
from repro.tensor.tensor import Tensor


def test_identity_hooks_by_default():
    pack, unpack = current_hooks()
    assert pack("x") == "x"
    assert unpack("y") == "y"


def test_pack_called_on_save():
    packed = []

    def pack(t):
        packed.append(t)
        return ("token", t)

    def unpack(obj):
        assert obj[0] == "token"
        return obj[1]

    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    with saved_tensors_hooks(pack, unpack):
        y = ops.gelu(x)  # gelu saves its input
    assert len(packed) == 1
    assert packed[0].storage is x.storage
    y.sum().backward()  # unpack must restore the tensor
    assert x.grad is not None


def test_unpack_hook_captured_at_save_time():
    """The unpack captured when packing is used even after context exit."""
    calls = []

    def pack(t):
        return t

    def unpack(obj):
        calls.append(1)
        return obj

    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    with saved_tensors_hooks(pack, unpack):
        y = ops.gelu(x)
    # Context exited; backward still routes through the captured unpack.
    y.sum().backward()
    assert calls


def test_hooks_nest_innermost_wins():
    order = []

    def outer_pack(t):
        order.append("outer")
        return t

    def inner_pack(t):
        order.append("inner")
        return t

    ident = lambda o: o
    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    with saved_tensors_hooks(outer_pack, ident):
        with saved_tensors_hooks(inner_pack, ident):
            ops.gelu(x)
        ops.gelu(x)
    assert order == ["inner", "outer"]


def test_out_of_order_exit_raises():
    a = saved_tensors_hooks(lambda t: t, lambda o: o)
    b = saved_tensors_hooks(lambda t: t, lambda o: o)
    a.__enter__()
    b.__enter__()
    with pytest.raises(RuntimeError):
        a.__exit__(None, None, None)
    # Clean up the now-corrupt stack for other tests.
    from repro.tensor.saved_tensors import _stack

    _stack().clear()


def test_non_callable_hooks_rejected():
    with pytest.raises(TypeError):
        saved_tensors_hooks(None, lambda o: o)


def test_saved_tensor_cleared_after_use():
    slot = SavedTensor(Tensor(np.ones(2, dtype=np.float32)))
    slot.unpack()
    slot.clear()
    with pytest.raises(RuntimeError):
        slot.unpack()


def test_weights_and_activations_both_pass_through_hooks():
    """Both MatMul operands (input and transposed weight) reach the pack
    hook — the cache's weight exclusion relies on seeing them."""
    seen_shapes = []

    def pack(t):
        seen_shapes.append(tuple(t.shape))
        return t

    x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
    w = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
    with saved_tensors_hooks(pack, lambda o: o):
        x @ w
    assert (2, 3) in seen_shapes and (3, 4) in seen_shapes
