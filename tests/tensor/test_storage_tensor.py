"""Tests for storages, views, device accounting, and tensor basics."""

import gc

import numpy as np
import pytest

from repro.device import MemoryTag
from repro.tensor import ops
from repro.tensor.storage import UntypedStorage, cpu
from repro.tensor.tensor import Parameter, Tensor, randn, tensor, zeros


def test_storage_charges_ledger(gpu):
    t = Tensor(np.zeros((10, 10), dtype=np.float32), device=gpu)
    assert gpu.ledger.current(MemoryTag.ACTIVATIONS) == 400


def test_storage_released_by_refcount(gpu):
    t = Tensor(np.zeros((10, 10), dtype=np.float32), device=gpu)
    del t
    gc.collect()
    assert gpu.ledger.current(MemoryTag.ACTIVATIONS) == 0


def test_release_idempotent(gpu):
    storage = UntypedStorage(np.zeros(10, dtype=np.float32), device=gpu)
    storage.release()
    storage.release()
    assert gpu.ledger.current(MemoryTag.ACTIVATIONS) == 0


def test_cpu_storage_not_tracked(gpu):
    Tensor(np.zeros(10, dtype=np.float32))  # cpu
    assert gpu.ledger.current() == 0


def test_parameter_uses_weights_tag(gpu):
    Parameter(np.zeros((4, 4), dtype=np.float32), device=gpu)
    gc.collect()
    # Parameter was dropped, so nothing live — but the peak registered.
    assert gpu.ledger.peak(MemoryTag.WEIGHTS) == 64


def test_transpose_shares_storage():
    w = Parameter(np.zeros((3, 5), dtype=np.float32))
    assert w.T.storage is w.storage
    assert w.T.shape == (5, 3)


def test_reshape_of_contiguous_shares_storage():
    x = Tensor(np.zeros((4, 6), dtype=np.float32), requires_grad=True)
    y = x.reshape(2, 12)
    assert y.storage is x.storage


def test_view_of_view_shares_root_storage():
    x = Tensor(np.zeros((2, 3, 4), dtype=np.float32), requires_grad=True)
    y = x.reshape(6, 4).transpose(0, 1)
    assert y.storage is x.storage


def test_detach_shares_storage_without_graph():
    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    y = x * 2.0
    d = y.detach()
    assert d.storage is y.storage
    assert d.grad_fn is None


def test_metadata_dict_per_storage():
    x = Tensor(np.zeros(4, dtype=np.float32))
    x.untyped_storage().metadata["k"] = 42
    assert x.reshape(2, 2).untyped_storage().metadata["k"] == 42


def test_size_and_numel():
    x = Tensor(np.zeros((3, 5), dtype=np.float32))
    assert x.size() == (3, 5)
    assert x.numel == 15
    assert x.nbytes == 60


def test_is_cpu_flag(gpu):
    assert Tensor(np.zeros(2, dtype=np.float32)).is_cpu
    assert not Tensor(np.zeros(2, dtype=np.float32), device=gpu).is_cpu


def test_to_device_copies(gpu):
    x = Tensor(np.arange(4, dtype=np.float32))
    y = x.to(gpu)
    assert not y.is_cpu
    y.data[0] = 99
    assert x.data[0] == 0  # independent copy
    assert x.to(cpu) is x  # same-device is a no-op


def test_float64_downcast():
    x = Tensor(np.zeros(3))  # float64 in
    assert x.dtype == np.float32


def test_item_and_errors():
    assert tensor([3.0]).item() == 3.0
    with pytest.raises(ValueError):
        tensor([1.0, 2.0]).item()


def test_factories(gpu):
    assert np.all(zeros((2, 2)).data == 0)
    r = randn((3, 3), device=gpu, rng=np.random.default_rng(0))
    assert r.shape == (3, 3) and not r.is_cpu


def test_op_rejects_cross_device(gpu):
    a = Tensor(np.zeros(3, dtype=np.float32), device=gpu)
    b = Tensor(np.zeros(3, dtype=np.float32))
    with pytest.raises(RuntimeError):
        ops.add(a, b)


def test_fp16_tensors_supported(gpu):
    x = Tensor(np.zeros((4, 4), dtype=np.float16), device=gpu)
    assert x.nbytes == 32  # 2 bytes per element
    y = x + x
    assert y.dtype == np.float16


def test_arithmetic_sugar():
    a = tensor([1.0, 2.0])
    b = tensor([3.0, 4.0])
    assert np.allclose((a + b).data, [4, 6])
    assert np.allclose((b - a).data, [2, 2])
    assert np.allclose((a * b).data, [3, 8])
    assert np.allclose((b / 2).data, [1.5, 2])
    assert np.allclose((2.0 * a).data, [2, 4])
    assert np.allclose((1.0 - a).data, [0, -1])
