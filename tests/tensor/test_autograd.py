"""Gradient checks for every differentiable op against central differences."""

import math

import numpy as np
import pytest

from repro.tensor import ops
from repro.tensor.tensor import Tensor

from tests.conftest import numeric_grad


def _check_unary(op, fn, shape=(3, 4), tol=2e-2, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    x_data = rng.standard_normal(shape).astype(np.float32)
    x = Tensor(x_data.copy(), requires_grad=True)
    op(x).sum().backward()
    num = numeric_grad(lambda xv: fn(xv).sum(), x_data.astype(np.float64))
    assert np.abs(x.grad.data - num).max() < tol


def test_gelu_grad():
    c = math.sqrt(2 / math.pi)
    _check_unary(
        ops.gelu, lambda x: 0.5 * x * (1 + np.tanh(c * (x + 0.044715 * x**3)))
    )


def test_relu_grad():
    _check_unary(ops.relu, lambda x: np.maximum(x, 0), rng_seed=3)


def test_tanh_grad():
    _check_unary(ops.tanh, np.tanh)


def test_softmax_grad():
    def ref(x):
        e = np.exp(x - x.max(axis=-1, keepdims=True))
        p = e / e.sum(axis=-1, keepdims=True)
        return (p * np.arange(x.shape[-1])).sum()

    rng = np.random.default_rng(0)
    x_data = rng.standard_normal((2, 5)).astype(np.float32)
    x = Tensor(x_data.copy(), requires_grad=True)
    weights = Tensor(np.arange(5, dtype=np.float32))
    (ops.softmax(x) * weights).sum().backward()
    num = numeric_grad(ref, x_data.astype(np.float64))
    assert np.abs(x.grad.data - num).max() < 2e-2


def test_matmul_grads_both_inputs():
    rng = np.random.default_rng(0)
    a_data = rng.standard_normal((3, 4)).astype(np.float32)
    b_data = rng.standard_normal((4, 2)).astype(np.float32)
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a @ b).sum().backward()
    num_a = numeric_grad(lambda av: (av @ b_data).sum(), a_data.astype(np.float64))
    num_b = numeric_grad(lambda bv: (a_data @ bv).sum(), b_data.astype(np.float64))
    assert np.abs(a.grad.data - num_a).max() < 2e-2
    assert np.abs(b.grad.data - num_b).max() < 2e-2


def test_batched_matmul_grad_shapes():
    rng = np.random.default_rng(0)
    a = Tensor(rng.standard_normal((2, 3, 4, 5)).astype(np.float32), requires_grad=True)
    b = Tensor(rng.standard_normal((2, 3, 5, 6)).astype(np.float32), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (2, 3, 4, 5)
    assert b.grad.shape == (2, 3, 5, 6)


def test_add_broadcast_grad():
    a = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
    bias = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    (a + bias).sum().backward()
    assert a.grad.shape == (3, 4)
    assert bias.grad.shape == (4,)
    assert np.all(bias.grad.data == 3.0)  # summed over broadcast rows


def test_mul_div_grads():
    rng = np.random.default_rng(0)
    a_data = rng.standard_normal((3, 3)).astype(np.float32)
    b_data = (rng.standard_normal((3, 3)) + 3.0).astype(np.float32)
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    ops.div(ops.mul(a, b), b).sum().backward()
    # d/da (a*b/b) = 1
    assert np.abs(a.grad.data - 1.0).max() < 1e-3


def test_scale_and_neg():
    a = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    (-(a * 3.0)).sum().backward()
    assert np.all(a.grad.data == -3.0)


def test_layernorm_grad():
    rng = np.random.default_rng(0)
    x_data = rng.standard_normal((4, 6)).astype(np.float32)
    g_data = rng.standard_normal(6).astype(np.float32)
    b_data = rng.standard_normal(6).astype(np.float32)
    x = Tensor(x_data.copy(), requires_grad=True)
    gamma = Tensor(g_data.copy(), requires_grad=True)
    beta = Tensor(b_data.copy(), requires_grad=True)
    ops.layernorm(x, gamma, beta).sum().backward()

    def ref(xv):
        m = xv.mean(-1, keepdims=True)
        v = xv.var(-1, keepdims=True)
        return (((xv - m) / np.sqrt(v + 1e-5)) * g_data + b_data).sum()

    num = numeric_grad(ref, x_data.astype(np.float64))
    assert np.abs(x.grad.data - num).max() < 2e-2
    assert gamma.grad.shape == (6,)
    assert beta.grad.shape == (6,)
    assert np.abs(beta.grad.data - 4.0).max() < 1e-4


def test_flash_attention_matches_unfused():
    """Fused attention must equal softmax(QK^T/sqrt(d))V and its grads."""
    rng = np.random.default_rng(0)
    q_data = rng.standard_normal((1, 2, 5, 4)).astype(np.float32)
    k_data = rng.standard_normal((1, 2, 5, 4)).astype(np.float32)
    v_data = rng.standard_normal((1, 2, 5, 4)).astype(np.float32)

    def run(fused: bool, causal: bool):
        q = Tensor(q_data.copy(), requires_grad=True)
        k = Tensor(k_data.copy(), requires_grad=True)
        v = Tensor(v_data.copy(), requires_grad=True)
        if fused:
            out = ops.flash_attention(q, k, v, causal=causal)
        else:
            scale = 1.0 / math.sqrt(4)
            scores = ops.scale(q @ ops.transpose(k, 2, 3), scale)
            if causal:
                mask = np.triu(np.full((5, 5), -1e9, dtype=np.float32), k=1)
                scores = scores + Tensor(mask)
            out = ops.softmax(scores) @ v
        out.sum().backward()
        return out.data, q.grad.data, k.grad.data, v.grad.data

    for causal in (False, True):
        fused = run(True, causal)
        ref = run(False, causal)
        for f, r in zip(fused, ref):
            assert np.abs(f - r).max() < 1e-3, f"causal={causal}"


def test_cross_entropy_grad():
    rng = np.random.default_rng(0)
    logits_data = rng.standard_normal((2, 3, 7)).astype(np.float32)
    targets = Tensor(rng.integers(0, 7, (2, 3)).astype(np.int64))
    logits = Tensor(logits_data.copy(), requires_grad=True)
    loss = ops.cross_entropy(logits, targets)
    loss.backward()

    def ref(lv):
        e = np.exp(lv - lv.max(-1, keepdims=True))
        p = e / e.sum(-1, keepdims=True)
        flat = p.reshape(-1, 7)
        idx = targets.data.reshape(-1)
        return -np.log(flat[np.arange(6), idx]).mean()

    num = numeric_grad(ref, logits_data.astype(np.float64))
    assert np.abs(logits.grad.data - num).max() < 2e-2


def test_embedding_grad_scatter():
    weight = Tensor(np.zeros((5, 3), dtype=np.float32), requires_grad=True)
    ids = Tensor(np.array([[0, 1, 1]], dtype=np.int64))
    ops.embedding(weight, ids).sum().backward()
    # Row 1 used twice, row 0 once, rest never.
    assert np.all(weight.grad.data[0] == 1.0)
    assert np.all(weight.grad.data[1] == 2.0)
    assert np.all(weight.grad.data[2:] == 0.0)


def test_narrow_grad_zero_pads():
    x = Tensor(np.ones((2, 6), dtype=np.float32), requires_grad=True)
    ops.narrow(x, 1, 2, 3).sum().backward()
    expected = np.zeros((2, 6), dtype=np.float32)
    expected[:, 2:5] = 1.0
    assert np.array_equal(x.grad.data, expected)


def test_concat_grad_splits():
    a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    b = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
    (ops.concat(a, b, 1) * 2.0).sum().backward()
    assert np.all(a.grad.data == 2.0)
    assert b.grad.shape == (2, 3)


def test_sum_mean_grads():
    x = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
    x.sum(axis=1).sum().backward()
    assert np.all(x.grad.data == 1.0)
    y = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
    y.mean().backward()
    assert np.abs(y.grad.data - 1 / 12).max() < 1e-7


def test_dropout_mask_consistent_between_fwd_bwd():
    x = Tensor(np.ones((64,), dtype=np.float32), requires_grad=True)
    out = ops.dropout(x, 0.5, seed=7)
    out.sum().backward()
    # grad must be exactly the mask applied in forward
    assert np.array_equal(x.grad.data, out.data)


def test_fanin_accumulation():
    """A tensor consumed by two ops accumulates both gradients."""
    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    y = x * 2.0 + x * 3.0
    y.sum().backward()
    assert np.all(x.grad.data == 5.0)


def test_grad_accumulates_across_backwards():
    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    (x * 2.0).sum().backward()
    (x * 3.0).sum().backward()
    assert np.all(x.grad.data == 5.0)


def test_no_grad_builds_no_graph():
    from repro.tensor import no_grad

    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    with no_grad():
        y = x * 2.0
    assert y.grad_fn is None
    assert not y.requires_grad


def test_backward_on_non_scalar_requires_seed():
    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    y = x * 2.0
    with pytest.raises(RuntimeError):
        y.backward()
    y.backward(Tensor(np.ones(4, dtype=np.float32)))
    assert np.all(x.grad.data == 2.0)


def test_saved_tensors_freed_after_backward():
    """retain_graph is unsupported: second backward must fail."""
    x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    y = (ops.gelu(x)).sum()
    y.backward()
    with pytest.raises(RuntimeError):
        y.backward()
