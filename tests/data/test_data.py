"""Tests for the synthetic corpus and tokenizer."""

import numpy as np
import pytest

from repro.data import SyntheticCorpus, TokenBatchLoader, ToyTokenizer


def test_corpus_shape_and_range():
    corpus = SyntheticCorpus(vocab_size=100, seed=0)
    tokens = corpus.sample_tokens(4, 32)
    assert tokens.shape == (4, 32)
    assert tokens.dtype == np.int64
    assert tokens.min() >= 0 and tokens.max() < 100


def test_corpus_deterministic_per_seed():
    a = SyntheticCorpus(vocab_size=50, seed=7).sample_tokens(2, 8)
    b = SyntheticCorpus(vocab_size=50, seed=7).sample_tokens(2, 8)
    assert np.array_equal(a, b)


def test_corpus_zipfian_skew():
    corpus = SyntheticCorpus(vocab_size=1000, zipf_a=1.5, seed=0)
    tokens = corpus.sample_tokens(10, 1000).reshape(-1)
    counts = np.bincount(tokens, minlength=1000)
    # Rank-0 token dominates rank-500.
    assert counts[0] > 10 * max(counts[500], 1)


def test_corpus_validation():
    with pytest.raises(ValueError):
        SyntheticCorpus(vocab_size=2)
    with pytest.raises(ValueError):
        SyntheticCorpus(vocab_size=100).sample_tokens(0, 5)


def test_loader_targets_are_shifted(gpu):
    loader = TokenBatchLoader(SyntheticCorpus(vocab_size=64, seed=1), 2, 8, device=gpu)
    tokens, targets = loader.next_batch()
    assert tokens.shape == (2, 8) and targets.shape == (2, 8)
    assert np.array_equal(tokens.data[:, 1:], targets.data[:, :-1])
    assert not tokens.is_cpu


def test_loader_iterates(gpu):
    loader = TokenBatchLoader(SyntheticCorpus(vocab_size=64, seed=1), 1, 4, device=gpu)
    it = iter(loader)
    first = next(it)
    second = next(it)
    assert not np.array_equal(first[0].data, second[0].data)


def test_tokenizer_deterministic():
    tok = ToyTokenizer(vocab_size=1000)
    assert tok.encode("hello world") == tok.encode("hello world")


def test_tokenizer_special_tokens():
    tok = ToyTokenizer(vocab_size=1000)
    ids = tok.encode("a b c")
    assert ids[0] == ToyTokenizer.BOS and ids[-1] == ToyTokenizer.EOS
    assert len(tok.encode("a b c", add_special=False)) == 3


def test_tokenizer_ids_in_range():
    tok = ToyTokenizer(vocab_size=128)
    ids = tok.encode("the quick brown fox jumps")
    assert all(0 <= i < 128 for i in ids)
    assert all(i >= 4 for i in tok.encode("x y z", add_special=False))


def test_tokenizer_batch_pads_and_truncates():
    tok = ToyTokenizer(vocab_size=1000)
    batch = tok.encode_batch(["one two", "a much longer sentence " * 10], seq_len=8)
    assert all(len(row) == 8 for row in batch)
    assert batch[0][-1] == ToyTokenizer.PAD


def test_tokenizer_validation():
    with pytest.raises(ValueError):
        ToyTokenizer(vocab_size=4)
