"""Drift scenarios + the static-vs-adaptive A/B (the controller's
acceptance surface).

The headline assertion reproduces the issue's acceptance criteria: under
a 2x mid-run write-bandwidth drop on a shared (fifo) SSD channel, the
online adaptive controller's backward stall is strictly below the
static-budget run, lands within 15% of a static run re-tuned offline for
the degraded bandwidth, and the installed budget converges within 5
steps of the drift event.
"""

import pytest

from repro.core.adaptive import WorkloadProfile, choose_offload_budget
from repro.core.autotune import AutotuneController
from repro.core.policy import OffloadPolicy, PolicyConfig
from repro.models.config import ModelConfig
from repro.sim import DriftScenario, StepSimulator, build_segments, simulate_adaptive_run
from repro.train.parallel import ParallelismConfig
from repro.train.trainer import PlacementStrategy

PAR = ParallelismConfig(tp=2)
WRITE = 6.1e9  # one P5800X: constrained enough that budget sizing matters
READ = 7.2e9
CFG = ModelConfig(arch="bert", hidden=12288, num_layers=3, seq_len=1024)


@pytest.fixture(scope="module")
def segments():
    return build_segments(CFG, 16, parallelism=PAR)


def _one_shot_budget(segments, write_bw, read_bw):
    """The paper's profiling step: size the budget once from assumed
    bandwidth and the profiled forward/backward windows."""
    probe = StepSimulator(
        segments, PlacementStrategy.OFFLOAD, write_bw, read_bw, io_mode="fifo"
    ).run()
    profile = WorkloadProfile(
        activation_bytes_per_step=probe.offloaded_bytes + probe.kept_bytes,
        forward_time_s=probe.forward_time_s,
        backward_time_s=probe.backward_time_s,
    )
    return choose_offload_budget(profile, write_bw, read_bw, safety_factor=0.9)


def _static_policy(budget):
    return OffloadPolicy(PolicyConfig(offload_budget_bytes=budget))


# ------------------------------------------------------------------ scenarios
def test_scenario_validation():
    with pytest.raises(ValueError):
        DriftScenario(steps=0, write_bandwidth=WRITE, read_bandwidth=READ)
    with pytest.raises(ValueError):
        DriftScenario(steps=4, write_bandwidth=0, read_bandwidth=READ)
    with pytest.raises(ValueError):
        DriftScenario(steps=4, write_bandwidth=WRITE, read_bandwidth=READ, kind="spike")
    with pytest.raises(ValueError):
        DriftScenario(
            steps=4, write_bandwidth=WRITE, read_bandwidth=READ, write_factor=0
        )


def test_step_drop_schedule():
    scen = DriftScenario.step_drop(WRITE, READ, steps=8, drift_step=4, write_factor=0.5)
    assert scen.write_bandwidth_at(3) == WRITE
    assert scen.write_bandwidth_at(4) == 0.5 * WRITE
    assert scen.write_bandwidth_at(7) == 0.5 * WRITE
    assert scen.read_bandwidth_at(7) == READ  # read path untouched by default


def test_ramp_schedule_is_gradual():
    scen = DriftScenario.ramp(
        WRITE, READ, steps=10, drift_step=2, ramp_steps=4, write_factor=0.5
    )
    bws = [scen.write_bandwidth_at(s) for s in range(10)]
    assert bws[0] == bws[1] == WRITE
    assert all(a >= b for a, b in zip(bws, bws[1:]))  # monotone decline
    assert bws[5] == pytest.approx(0.5 * WRITE)  # terminal factor reached
    assert bws[9] == pytest.approx(0.5 * WRITE)  # and held
    assert WRITE > bws[2] > 0.5 * WRITE  # the ramp is actually gradual


def test_microbatch_resize_schedule():
    scen = DriftScenario.microbatch_resize(
        WRITE, READ, steps=6, drift_step=3, before=1, after=2
    )
    assert [scen.microbatches_at(s) for s in range(6)] == [1, 1, 1, 2, 2, 2]
    assert scen.write_bandwidth_at(5) == WRITE  # hardware stays put


def test_static_run_holds_budget_and_takes_no_decisions(segments):
    scen = DriftScenario.static(WRITE, READ, steps=3)
    run = simulate_adaptive_run(segments, scen, policy=_static_policy(2 * 2**30))
    assert run.decisions == []
    assert run.budgets == [2 * 2**30] * 3
    assert len(run.results) == 3


# ------------------------------------------------ the acceptance A/B (issue)
def test_step_drop_adaptive_beats_static_and_matches_offline_retune(segments):
    """2x write-bandwidth drop at step 8 of 16, shared fifo channel."""
    drift = 8
    steps = 16
    budget_full = _one_shot_budget(segments, WRITE, READ)
    scen = DriftScenario.step_drop(
        WRITE, READ, steps=steps, drift_step=drift, write_factor=0.5
    )
    static = simulate_adaptive_run(
        segments, scen, policy=_static_policy(budget_full)
    )
    # The offline re-tune: the same one-shot sizing, run against the
    # degraded array — what an operator would install after the incident.
    probe = StepSimulator(
        segments, PlacementStrategy.OFFLOAD, WRITE, READ, io_mode="fifo"
    ).run()
    degraded_budget = choose_offload_budget(
        WorkloadProfile(
            activation_bytes_per_step=probe.offloaded_bytes + probe.kept_bytes,
            forward_time_s=probe.forward_time_s,
            backward_time_s=probe.backward_time_s,
        ),
        0.5 * WRITE,
        READ,
        safety_factor=0.9,
    )
    oracle = simulate_adaptive_run(
        segments, scen, policy=_static_policy(degraded_budget)
    )
    adaptive = simulate_adaptive_run(
        segments,
        scen,
        policy=_static_policy(budget_full),
        controller=AutotuneController(),
    )

    # The drop really hurts the static run: every post-drift step stalls.
    assert static.stall_time_s(drift) > 5 * oracle.stall_time_s(drift) + 1.0
    # Acceptance 1: adaptive post-drift stall strictly below static.
    assert adaptive.stall_time_s(drift) < static.stall_time_s(drift)
    # Acceptance 2: once converged (>= drift+5), the adaptive run's stall
    # is within 15% of the offline re-tuned static run's.
    tail = drift + 5
    assert adaptive.stall_time_s(tail) <= oracle.stall_time_s(tail) * 1.15 + 1e-3
    # Acceptance 3: the installed budget converges within 5 steps of the
    # drift event — in force from step drift+5 on, it moves by at most
    # the controller's probe rate between steps.
    settled = [b for b in adaptive.budgets[tail:]]
    assert all(b is not None and b > 0 for b in settled)
    for a, b in zip(settled, settled[1:]):
        assert abs(b - a) / a <= 0.08, f"budget still moving after drift+5: {settled}"
    # And the converged budget is bandwidth-appropriate: well below the
    # full-bandwidth sizing, in the degraded sizing's neighbourhood.
    assert settled[-1] < 0.6 * budget_full
    assert settled[-1] <= degraded_budget * 1.15


def test_step_drop_adaptive_recovers_memory_savings(segments):
    """The controller must not buy stall-freedom by turning offload off:
    post-drift it still moves a sizeable fraction of what the offline
    re-tune moves."""
    drift, steps = 8, 16
    budget_full = _one_shot_budget(segments, WRITE, READ)
    scen = DriftScenario.step_drop(
        WRITE, READ, steps=steps, drift_step=drift, write_factor=0.5
    )
    adaptive = simulate_adaptive_run(
        segments,
        scen,
        policy=_static_policy(budget_full),
        controller=AutotuneController(),
    )
    post_drift = sum(r.offloaded_bytes for r in adaptive.results[drift:])
    assert post_drift > 0.25 * sum(r.offloaded_bytes for r in adaptive.results[:drift])


def test_adaptive_removes_contention_stall_even_without_drift(segments):
    """The one-shot budget assumes independent store/load pools; on the
    shared fifo channel it stalls every step.  The feedback loop's
    stall-aware trim finds the contention-aware budget online."""
    budget_full = _one_shot_budget(segments, WRITE, READ)
    scen = DriftScenario.static(WRITE, READ, steps=8)
    static = simulate_adaptive_run(segments, scen, policy=_static_policy(budget_full))
    adaptive = simulate_adaptive_run(
        segments,
        scen,
        policy=_static_policy(budget_full),
        controller=AutotuneController(),
    )
    assert static.stall_time_s(4) > 0
    assert adaptive.stall_time_s(4) < 0.25 * static.stall_time_s(4)


def test_ramp_drift_adaptive_tracks_decline(segments):
    scen = DriftScenario.ramp(
        WRITE, READ, steps=16, drift_step=4, ramp_steps=6, write_factor=0.4
    )
    budget_full = _one_shot_budget(segments, WRITE, READ)
    static = simulate_adaptive_run(segments, scen, policy=_static_policy(budget_full))
    adaptive = simulate_adaptive_run(
        segments,
        scen,
        policy=_static_policy(budget_full),
        controller=AutotuneController(),
    )
    assert adaptive.total_stall_s < static.total_stall_s
    # The budget followed the ramp downward.
    assert adaptive.budgets[-1] < 0.7 * adaptive.budgets[0]


def test_microbatch_resize_adaptive_rescales_budget(segments):
    """Mid-run micro-batch shrink (2 -> 1): the per-step activation
    volume and windows halve, so the stale budget — sized for the big
    step — suddenly covers *everything*, including tensors the policy
    should have kept, and the over-committed store backlog stalls
    backward.  The controller re-derives the budget from the observed
    workload and trims the stall away."""
    drift = 6
    scen = DriftScenario.microbatch_resize(
        WRITE, READ, steps=14, drift_step=drift, before=2, after=1
    )
    probe = StepSimulator(
        segments,
        PlacementStrategy.OFFLOAD,
        WRITE,
        READ,
        num_microbatches=2,
        io_mode="fifo",
    ).run()
    stale_budget = choose_offload_budget(
        WorkloadProfile(
            activation_bytes_per_step=probe.offloaded_bytes + probe.kept_bytes,
            forward_time_s=probe.forward_time_s,
            backward_time_s=probe.backward_time_s,
        ),
        WRITE,
        READ,
        safety_factor=0.9,
    )
    static = simulate_adaptive_run(segments, scen, policy=_static_policy(stale_budget))
    adaptive = simulate_adaptive_run(
        segments,
        scen,
        policy=_static_policy(stale_budget),
        controller=AutotuneController(),
    )
    # Post-resize the adaptive budget shrinks toward the smaller step...
    assert adaptive.budgets[-1] < 0.7 * stale_budget
    # ...and the stall the stale budget causes is trimmed away.
    tail = drift + 5
    assert static.stall_time_s(tail) > 0
    assert adaptive.stall_time_s(tail) < 0.25 * static.stall_time_s(tail)
