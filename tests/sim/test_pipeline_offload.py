"""Tests for the pipeline-parallel offload simulator (the Fig. 2 setting)."""

import pytest

from repro.sim.pipeline_offload import StageWorkload, simulate_pipeline_offload
from repro.train.pipeline import ScheduleKind

#: A layer-stack stage sized like one Fig. 6 layer (3.75 GB, ~1 s F+B)
WORK = StageWorkload(forward_time_s=0.25, backward_time_s=0.5, activation_bytes=4 * 10**9)
FAST_BW = 25e9


def _run(offload=True, stages=3, microbatches=4, kind=ScheduleKind.ONE_F_ONE_B, **kw):
    return simulate_pipeline_offload(
        WORK, stages, microbatches, FAST_BW, FAST_BW, kind=kind, offload=offload, **kw
    )


def test_no_offload_matches_ideal_pipeline_time():
    result = _run(offload=False)
    assert result.step_time_s == pytest.approx(result.baseline_step_time_s)
    assert result.total_io_stall_s == 0.0
    assert all(s.offloaded_bytes == 0 for s in result.stages)


def test_offload_zero_overhead_at_full_bandwidth():
    result = _run(offload=True)
    assert result.overhead < 0.01
    assert result.total_io_stall_s < 0.01 * result.step_time_s


def test_stage0_holds_the_1f1b_inventory_without_offload():
    """Stage 0 of a p-stage 1F1B pipeline holds min(p, m) micro-batches."""
    result = _run(offload=False, stages=3, microbatches=4)
    assert result.stages[0].activation_peak_bytes == 3 * WORK.activation_bytes
    # The last stage alternates F/B: one micro-batch resident.
    assert result.stages[-1].activation_peak_bytes == WORK.activation_bytes


def test_offload_cuts_stage0_peak():
    """Deeper pipelines hold more warmup micro-batches on stage 0; the
    offloaded steady state holds only the in-flight working set."""
    keep = _run(offload=False, stages=6, microbatches=12)
    off = _run(offload=True, stages=6, microbatches=12)
    assert keep.stages[0].activation_peak_bytes == 6 * WORK.activation_bytes
    assert (
        off.stages[0].activation_peak_bytes
        < 0.7 * keep.stages[0].activation_peak_bytes
    )


def test_fig2_keep_rule_emerges_from_schedule():
    """The last stage's F is immediately followed by its B (Fig. 2 marker
    4): its activations are kept, never offloaded."""
    result = _run(offload=True, stages=3, microbatches=2)
    last = result.stages[-1]
    assert last.offloaded_bytes == 0
    assert last.kept_bytes == 2 * WORK.activation_bytes
    # Earlier stages do offload their warmup micro-batches.
    assert result.stages[0].offloaded_bytes > 0


def test_gpipe_offloads_more_than_1f1b():
    """GPipe separates every F from its B, so everything offloads; 1F1B's
    steady state keeps the immediately-consumed micro-batches."""
    gpipe = _run(kind=ScheduleKind.GPIPE, stages=3, microbatches=4)
    one_f = _run(kind=ScheduleKind.ONE_F_ONE_B, stages=3, microbatches=4)
    total_gpipe = sum(s.offloaded_bytes for s in gpipe.stages)
    total_1f1b = sum(s.offloaded_bytes for s in one_f.stages)
    assert total_gpipe > total_1f1b


def test_slow_array_forwards_or_stalls():
    slow = simulate_pipeline_offload(WORK, 3, 4, 2e9, 2e9)
    assert (
        sum(s.forwarded_bytes for s in slow.stages) > 0
        or slow.total_io_stall_s > 0
    )


def test_single_stage_degenerates_to_alternating():
    result = _run(stages=1, microbatches=3)
    # Every F is followed by its B: all kept, nothing offloaded.
    assert result.stages[0].offloaded_bytes == 0
    assert result.overhead == pytest.approx(0.0, abs=1e-9)


def test_validation():
    with pytest.raises(ValueError):
        StageWorkload(0, 1, 1)
    with pytest.raises(ValueError):
        simulate_pipeline_offload(WORK, 0, 1, 1e9, 1e9)
    with pytest.raises(ValueError):
        simulate_pipeline_offload(WORK, 1, 1, 0, 1e9)


def test_timeline_lanes_present():
    result = _run()
    lanes = {e.lane for e in result.timeline.events}
    assert "gpu" in lanes and "store" in lanes
