"""Tests for the simulator-side fault model (FaultScenario)."""

import pytest

from repro.models import ModelConfig
from repro.sim import FaultScenario, build_segments, simulate_fault_run
from repro.train.parallel import ParallelismConfig

WRITE_BW = 6.1e9
READ_BW = 7.2e9


@pytest.fixture(scope="module")
def segments():
    config = ModelConfig(arch="bert", hidden=4096, num_layers=2, seq_len=1024)
    return build_segments(config, 8, parallelism=ParallelismConfig(tp=2))


def test_fault_scenario_validation():
    with pytest.raises(ValueError):
        FaultScenario(4, WRITE_BW, READ_BW, kind="gremlins")
    with pytest.raises(ValueError):
        FaultScenario(0, WRITE_BW, READ_BW)
    with pytest.raises(ValueError):
        FaultScenario(4, WRITE_BW, READ_BW, fault_rate=1.5)
    with pytest.raises(ValueError):
        FaultScenario(4, WRITE_BW, READ_BW, kind="lane_death")  # needs death_step
    with pytest.raises(ValueError):
        FaultScenario(4, -1.0, READ_BW)


def test_transient_scenario_derates_bandwidth_deterministically():
    scenario = FaultScenario.transient(WRITE_BW, READ_BW, steps=6, fault_rate=0.1, seed=3)
    twin = FaultScenario.transient(WRITE_BW, READ_BW, steps=6, fault_rate=0.1, seed=3)
    for step in range(6):
        assert scenario.fault_rate_at(step) == twin.fault_rate_at(step)
        assert scenario.write_bandwidth_at(step) < WRITE_BW
        assert scenario.io_latency_at(step, 20e-6) > 20e-6
    other = FaultScenario.transient(WRITE_BW, READ_BW, steps=6, fault_rate=0.1, seed=4)
    assert any(
        scenario.fault_rate_at(s) != other.fault_rate_at(s) for s in range(6)
    )


def test_lane_death_switches_to_failover_bandwidth():
    scenario = FaultScenario.lane_death(
        WRITE_BW, READ_BW, steps=6, death_step=3, failover_bandwidth=20e9
    )
    assert scenario.ssd_alive_at(2) and not scenario.ssd_alive_at(3)
    assert scenario.write_bandwidth_at(2) == WRITE_BW
    assert scenario.write_bandwidth_at(3) == 20e9
    assert scenario.read_bandwidth_at(5) == 20e9


def test_simulate_fault_run_transient_costs_but_completes(segments):
    scenario = FaultScenario.transient(WRITE_BW, READ_BW, steps=4, fault_rate=0.2, seed=0)
    run = simulate_fault_run(segments, scenario)
    assert len(run.results) == len(run.fault_free) == scenario.steps
    assert run.failover_step is None
    # The retry tax is real but bounded: slower than clean, not broken.
    assert run.step_time_overhead > 0
    assert run.step_time_overhead < 0.5
    assert run.total_stall_s >= run.fault_free_stall_s


def test_simulate_fault_run_lane_death_completes_via_failover(segments):
    scenario = FaultScenario.lane_death(WRITE_BW, READ_BW, steps=6, death_step=2)
    run = simulate_fault_run(segments, scenario)
    assert len(run.results) == scenario.steps
    assert run.failover_step == 2
    # Pre-death steps match the clean twin exactly.
    for step in range(2):
        assert run.results[step].step_time_s == run.fault_free[step].step_time_s
    # Post-death steps drain via host memory (PCIe default) and finish.
    assert all(r.step_time_s > 0 for r in run.results[2:])


def test_latency_spike_scenario_adds_op_latency(segments):
    scenario = FaultScenario.latency(
        WRITE_BW, READ_BW, steps=3, fault_rate=0.5, spike_s=0.02, seed=1
    )
    run = simulate_fault_run(segments, scenario)
    assert run.step_time_overhead > 0
    # Bandwidth is untouched by the latency kind.
    assert scenario.write_bandwidth_at(0) == WRITE_BW
