"""Tests for the discrete-event step simulator and its figure invariants."""

import pytest

from repro.core.policy import OffloadPolicy, PolicyConfig
from repro.models.config import ModelConfig
from repro.sim import StepSimulator, build_segments, simulate_strategy
from repro.sim.timeline import Timeline
from repro.train.parallel import ParallelismConfig
from repro.train.trainer import PlacementStrategy

PAR = ParallelismConfig(tp=2)
WRITE = 4 * 6.1e9  # 4x P5800X array
READ = 4 * 7.2e9
CFG = ModelConfig(arch="bert", hidden=12288, num_layers=3, seq_len=1024)


def _sim(cfg=CFG, batch=16, strategy=PlacementStrategy.OFFLOAD, **kw):
    return simulate_strategy(cfg, batch, strategy, WRITE, READ, parallelism=PAR, **kw)


# -------------------------------------------------------------------- timeline
def test_timeline_memory_peak():
    tl = Timeline()
    tl.alloc(0.0, 100)
    tl.alloc(1.0, 200)
    tl.free(2.0, 100)
    tl.alloc(3.0, 50)
    assert tl.memory_peak() == 300


def test_timeline_free_before_alloc_at_same_instant():
    tl = Timeline()
    tl.alloc(0.0, 100)
    tl.free(1.0, 100)
    tl.alloc(1.0, 100)
    assert tl.memory_peak() == 100


def test_timeline_lane_busy_and_render():
    tl = Timeline()
    tl.record("gpu", "F0", 0.0, 1.0)
    tl.record("gpu", "B0", 1.0, 3.0)
    tl.record("store", "s0", 0.5, 1.5)
    assert tl.lane_busy_time("gpu") == pytest.approx(3.0)
    assert tl.end_time() == pytest.approx(3.0)
    art = tl.render_ascii(width=40)
    assert "gpu" in art and "store" in art


def test_timeline_rejects_negative_events():
    tl = Timeline()
    with pytest.raises(ValueError):
        tl.record("gpu", "x", 2.0, 1.0)


# -------------------------------------------------------------------- segments
def test_build_segments_structure():
    segments = build_segments(CFG, 16, parallelism=PAR)
    names = [s.name for s in segments]
    assert names[0] == "embed" and names[-1] == "head"
    assert sum(1 for n in names if n.startswith("layer")) == 3


def test_build_segments_t5_has_decoder_segments():
    cfg = ModelConfig(arch="t5", hidden=12288, num_layers=4, seq_len=1024)
    segments = build_segments(cfg, 16, parallelism=PAR)
    names = [s.name for s in segments]
    assert sum(1 for n in names if n.startswith("declayer")) == 2
    dec = next(s for s in segments if s.name == "declayer0")
    enc = next(s for s in segments if s.name == "layer0")
    assert dec.activation_bytes > enc.activation_bytes  # cross-attention


def test_simulator_validation():
    segments = build_segments(CFG, 16, parallelism=PAR)
    with pytest.raises(ValueError):
        StepSimulator(segments, PlacementStrategy.KEEP, 0, READ)
    with pytest.raises(ValueError):
        StepSimulator(segments, PlacementStrategy.KEEP, WRITE, READ, num_microbatches=0)


# ---------------------------------------------------------------- fig6 shapes
@pytest.mark.parametrize("arch", ["bert", "t5", "gpt"])
@pytest.mark.parametrize("hidden,layers", [(8192, 4), (12288, 3), (16384, 2)])
def test_fig6_overlap_and_reduction(arch, hidden, layers):
    """Fig. 6: SSDTrain matches no-offload step time and cuts the
    activation peak substantially."""
    cfg = ModelConfig(arch=arch, hidden=hidden, num_layers=layers, seq_len=1024)
    keep = _sim(cfg, strategy=PlacementStrategy.KEEP)
    off = _sim(cfg, strategy=PlacementStrategy.OFFLOAD)
    overhead = off.step_time_s / keep.step_time_s - 1
    reduction = 1 - off.activation_peak_bytes / keep.activation_peak_bytes
    assert overhead < 0.01, f"{arch} H{hidden}: overhead {overhead:.1%}"
    assert reduction > 0.15, f"{arch} H{hidden}: reduction {reduction:.1%}"
    assert off.io_stall_time_s < 0.01 * keep.step_time_s


def test_fig6_offload_writes_what_it_promises():
    off = _sim()
    assert off.offloaded_bytes > 0
    # Loads + forwards must cover the offloaded bytes (minus the final
    # micro-batch's tail, which is zero here with keep-last active).
    assert off.loaded_bytes + off.forwarded_bytes == off.offloaded_bytes


# ----------------------------------------------------------------- fig7 shapes
@pytest.mark.parametrize("batch", [4, 8, 16])
def test_fig7_rok_ordering(batch):
    """Fig. 7: offload gets the least memory and keep-level throughput;
    recompute loses throughput and sits between them in memory."""
    keep = _sim(batch=batch, strategy=PlacementStrategy.KEEP)
    off = _sim(batch=batch, strategy=PlacementStrategy.OFFLOAD)
    rec = _sim(batch=batch, strategy=PlacementStrategy.RECOMPUTE)
    assert off.activation_peak_bytes < rec.activation_peak_bytes < keep.activation_peak_bytes
    assert off.model_throughput_tflops() == pytest.approx(
        keep.model_throughput_tflops(), rel=0.01
    )
    assert rec.model_throughput_tflops() < 0.9 * keep.model_throughput_tflops()


def test_fig7_offload_doubles_batch_at_same_budget():
    """'SSDTrain is able to double the batch size with the same
    activations memory budget.'  The doubled-batch offload run must land
    near (within ~25% of) the half-batch keep budget — the same geometry
    the paper's Fig. 6/Fig. 7 peaks imply — and deliver higher throughput.
    """
    keep_b8 = _sim(batch=8, strategy=PlacementStrategy.KEEP)
    off_b16 = _sim(batch=16, strategy=PlacementStrategy.OFFLOAD)
    assert off_b16.activation_peak_bytes <= 1.25 * keep_b8.activation_peak_bytes
    assert off_b16.model_throughput_tflops() > keep_b8.model_throughput_tflops()


def test_recompute_executes_extra_flops_not_algorithmic():
    rec = _sim(strategy=PlacementStrategy.RECOMPUTE)
    keep = _sim(strategy=PlacementStrategy.KEEP)
    assert rec.executed_flops > 1.2 * rec.algorithmic_flops
    assert rec.algorithmic_flops == pytest.approx(keep.algorithmic_flops, rel=1e-9)
    assert rec.step_time_s > 1.2 * keep.step_time_s


# ---------------------------------------------------------------- slow SSD
def test_slow_reads_expose_io_on_critical_path():
    """Fast stores but a crippled read path: loads miss their deadlines and
    the GPU stalls.  (The negative control for the Fig. 6 zero-overhead
    result.)"""
    keep = _sim(strategy=PlacementStrategy.KEEP)
    slow = simulate_strategy(
        CFG, 16, PlacementStrategy.OFFLOAD, WRITE, 1.5e9, parallelism=PAR
    )
    assert slow.step_time_s > 1.2 * keep.step_time_s
    assert slow.io_stall_time_s > 0


def test_slow_stores_degrade_to_forwarding_not_stalls():
    """A crippled *write* path leaves stores in flight when backward
    arrives; data forwarding keeps the step time intact at the cost of the
    memory win — no I/O ever lands on the critical path."""
    keep = _sim(strategy=PlacementStrategy.KEEP)
    slow = simulate_strategy(
        CFG, 16, PlacementStrategy.OFFLOAD, 1e9, READ, parallelism=PAR
    )
    assert slow.step_time_s == pytest.approx(keep.step_time_s, rel=0.02)
    assert slow.forwarded_bytes > 0.5 * slow.offloaded_bytes
    # Memory benefit largely evaporates: forwarded tensors stay resident.
    assert slow.activation_peak_bytes > 0.6 * keep.activation_peak_bytes


def test_forwarding_engages_when_stores_lag():
    """A slower store channel leaves stores in flight when backward
    arrives; forwarding must kick in rather than stalling on loads."""
    result = simulate_strategy(
        CFG, 16, PlacementStrategy.OFFLOAD, 6e9, 4 * 7.2e9, parallelism=PAR
    )
    assert result.forwarded_bytes > 0


# ------------------------------------------------------------------ microbatch
def test_multi_microbatch_accumulates():
    one = _sim()
    two = simulate_strategy(
        CFG, 16, PlacementStrategy.OFFLOAD, WRITE, READ, parallelism=PAR,
        num_microbatches=2,
    )
    assert two.offloaded_bytes == pytest.approx(2 * one.offloaded_bytes, rel=0.01)
    assert two.step_time_s > 1.8 * (one.step_time_s - one.weight_update_time_s)


def test_budget_policy_respected_in_sim():
    budget = 4 * 1024**3
    policy = OffloadPolicy(PolicyConfig(offload_budget_bytes=budget))
    result = simulate_strategy(
        CFG, 16, PlacementStrategy.OFFLOAD, WRITE, READ, parallelism=PAR, policy=policy
    )
    assert result.offloaded_bytes <= budget + 512 * 1024**2  # one-tensor overshoot


def test_table3_bandwidth_band():
    """Table III: required write bandwidth decreases with hidden size and
    stays within the paper's 8-18 GB/s band (keep-last disabled to measure
    the maximal offload, as the paper's Table III does)."""
    bws = []
    for hidden, layers in ((8192, 4), (12288, 3), (16384, 2)):
        cfg = ModelConfig(arch="bert", hidden=hidden, num_layers=layers, seq_len=1024)
        segments = build_segments(cfg, 16, parallelism=PAR)
        from repro.analysis.perf_model import model_param_count, weight_update_time

        update = weight_update_time(PAR.params_per_gpu(model_param_count(cfg)))
        sim = StepSimulator(
            segments, PlacementStrategy.OFFLOAD, WRITE, READ, keep_last_segments=1
        )
        bws.append(sim.run(weight_update_s=update).required_write_bandwidth_gbps())
    assert all(a > b for a, b in zip(bws, bws[1:]))
    assert 6.0 < bws[-1] and bws[0] < 20.0


def test_timeline_records_all_lanes():
    result = _sim()
    lanes = {e.lane for e in result.timeline.events}
    assert lanes == {"gpu", "store", "load"}


# ------------------------------------------------------------------- CPU tier
def test_cpu_tier_absorbs_whole_workload_when_big_enough():
    r = _sim(cpu_pool_bytes=64 * 2**30)
    assert r.offloaded_cpu_bytes == r.offloaded_bytes
    assert r.offloaded_ssd_bytes == 0
    assert r.required_ssd_write_bandwidth_gbps() == 0.0
    lanes = {e.lane for e in r.timeline.events}
    assert "cpu_store" in lanes and "store" not in lanes


def test_cpu_tier_spills_beyond_capacity_to_ssd():
    pool = 2 * 2**30
    r = _sim(cpu_pool_bytes=pool)
    assert r.offloaded_cpu_bytes > 0 and r.offloaded_ssd_bytes > 0
    assert r.offloaded_cpu_bytes + r.offloaded_ssd_bytes == r.offloaded_bytes
    assert r.cpu_pool_peak_bytes <= pool
    lanes = {e.lane for e in r.timeline.events}
    assert "cpu_store" in lanes and "store" in lanes


def test_cpu_tier_reduces_required_ssd_bandwidth_monotonically():
    pools = [None, 2 * 2**30, 4 * 2**30, 8 * 2**30]
    bws = [
        _sim(cpu_pool_bytes=p).required_ssd_write_bandwidth_gbps() for p in pools
    ]
    assert all(a >= b for a, b in zip(bws, bws[1:]))
    assert bws[0] > bws[-1]


def test_cpu_tier_disabled_matches_legacy_behaviour():
    legacy = _sim()
    tiered_off = _sim(cpu_pool_bytes=None)
    assert tiered_off.step_time_s == pytest.approx(legacy.step_time_s)
    assert tiered_off.offloaded_bytes == legacy.offloaded_bytes
    assert tiered_off.offloaded_cpu_bytes == 0


def test_cpu_tier_placement_respects_max_tensor_bytes():
    policy = OffloadPolicy(PolicyConfig(cpu_tier_max_tensor_bytes=1))
    r = _sim(cpu_pool_bytes=64 * 2**30, policy=policy)
    # Every activation is larger than 1 B, so the pool stays cold.
    assert r.offloaded_cpu_bytes == 0
    assert r.offloaded_ssd_bytes == r.offloaded_bytes


# ------------------------------------------------------------ I/O scheduling
def test_io_mode_validation():
    segments = build_segments(CFG, 4, parallelism=PAR)
    with pytest.raises(ValueError):
        StepSimulator(
            segments, PlacementStrategy.OFFLOAD, WRITE, READ, io_mode="strict"
        )


def _sim_mode(io_mode, write_bw=6.1e9, read_bw=7.2e9):
    # One P5800X (not the 4-SSD array): constrained enough that a store
    # backlog exists when backward enters the shared channel.
    return simulate_strategy(
        CFG, 16, PlacementStrategy.OFFLOAD, write_bw, read_bw,
        parallelism=PAR, io_mode=io_mode,
    )


def test_priority_io_mode_cuts_blocking_load_latency_vs_fifo():
    """Acceptance: at equal (constrained) bandwidth, the priority-channel
    mode strictly beats FIFO on backward-blocking load latency."""
    fifo = _sim_mode("fifo")
    priority = _sim_mode("priority")
    assert fifo.io_stall_time_s > 0  # the backlog really blocks backward
    assert priority.io_stall_time_s < fifo.io_stall_time_s
    assert priority.step_time_s < fifo.step_time_s
    # Equal bandwidth, equal traffic: only the dequeue order differs.
    assert priority.offloaded_bytes == fifo.offloaded_bytes


def test_priority_io_mode_recovers_duplex_overlap():
    """Letting blocking loads overtake the store backlog recovers the
    paper's idealised two-pool overlap on this workload."""
    duplex = _sim_mode("duplex")
    priority = _sim_mode("priority")
    assert priority.io_stall_time_s == pytest.approx(
        duplex.io_stall_time_s, abs=1e-6
    )


def test_fifo_io_mode_never_faster_than_priority_across_bandwidths():
    for n_ssd in (1, 2, 4):
        fifo = _sim_mode("fifo", write_bw=n_ssd * 6.1e9, read_bw=n_ssd * 7.2e9)
        priority = _sim_mode(
            "priority", write_bw=n_ssd * 6.1e9, read_bw=n_ssd * 7.2e9
        )
        assert priority.io_stall_time_s <= fifo.io_stall_time_s
        assert priority.step_time_s <= fifo.step_time_s


def test_io_mode_default_is_duplex_legacy():
    assert _sim().io_stall_time_s == _sim_mode("duplex", WRITE, READ).io_stall_time_s
