"""Tests for the crc-framed append-only journal (service-mode durability)."""

import struct
import zlib

import pytest

from repro.io.manifest import (
    JOURNAL_MAGIC,
    MAX_RECORD_BYTES,
    JournalWriter,
    frame_record,
    read_journal,
)

_HEADER = struct.Struct("<4sII")


# ------------------------------------------------------------------ framing
def test_frame_round_trip(tmp_path):
    path = tmp_path / "j.log"
    records = [
        {"op": "flush", "chunk": 0, "entries": [["t1", 0, 16, 99]]},
        {"op": "delete", "tid": "t1"},
        {"op": "clear"},
    ]
    with JournalWriter(path) as writer:
        for record in records:
            writer.append(record)
        assert writer.records_appended == len(records)
    assert read_journal(path) == (records, False)


def test_frame_record_layout():
    frame = frame_record({"op": "x"})
    magic, length, crc = _HEADER.unpack_from(frame)
    payload = frame[_HEADER.size :]
    assert magic == JOURNAL_MAGIC
    assert length == len(payload)
    assert crc == zlib.crc32(payload)


def test_missing_file_is_empty_journal(tmp_path):
    assert read_journal(tmp_path / "never-written.log") == ([], False)


def test_appends_accumulate_across_reopens(tmp_path):
    path = tmp_path / "j.log"
    with JournalWriter(path) as writer:
        writer.append({"n": 1})
    with JournalWriter(path) as writer:
        writer.append({"n": 2})
    assert read_journal(path) == ([{"n": 1}, {"n": 2}], False)


# ---------------------------------------------------------------- torn tails
def _write_intact_then(path, tail: bytes):
    path.write_bytes(frame_record({"n": 1}) + frame_record({"n": 2}) + tail)


@pytest.mark.parametrize(
    "tail",
    [
        frame_record({"n": 3})[:5],  # torn mid-header
        frame_record({"n": 3})[:-4],  # torn mid-payload
        b"XXXX" + frame_record({"n": 3})[4:],  # bad magic
        _HEADER.pack(JOURNAL_MAGIC, MAX_RECORD_BYTES + 1, 0),  # absurd length
    ],
    ids=["torn-header", "torn-payload", "bad-magic", "oversized"],
)
def test_torn_tail_keeps_intact_prefix(tmp_path, tail):
    path = tmp_path / "j.log"
    _write_intact_then(path, tail)
    assert read_journal(path) == ([{"n": 1}, {"n": 2}], True)


def test_crc_mismatch_ends_replay(tmp_path):
    path = tmp_path / "j.log"
    bad = bytearray(frame_record({"n": 3}))
    bad[-1] ^= 0xFF  # flip a payload bit; header crc no longer matches
    _write_intact_then(path, bytes(bad))
    assert read_journal(path) == ([{"n": 1}, {"n": 2}], True)


def test_crc_valid_but_not_json_ends_replay(tmp_path):
    payload = b"not json"
    tail = _HEADER.pack(JOURNAL_MAGIC, len(payload), zlib.crc32(payload)) + payload
    path = tmp_path / "j.log"
    _write_intact_then(path, tail)
    assert read_journal(path) == ([{"n": 1}, {"n": 2}], True)


def test_records_behind_a_tear_are_not_trusted(tmp_path):
    """Frame lengths chain: a good frame after a bad one is unreachable."""
    path = tmp_path / "j.log"
    _write_intact_then(path, b"\x00" * 12 + frame_record({"n": 99}))
    records, torn = read_journal(path)
    assert torn and {"n": 99} not in records


# ------------------------------------------------------------ writer lifecycle
def test_append_after_close_raises(tmp_path):
    writer = JournalWriter(tmp_path / "j.log")
    writer.append({"n": 1})
    writer.close()
    assert writer.closed
    with pytest.raises(ValueError):
        writer.append({"n": 2})


def test_close_and_sync_idempotent(tmp_path):
    writer = JournalWriter(tmp_path / "j.log")
    writer.append({"n": 1})
    writer.sync()
    writer.close()
    writer.close()
    writer.sync()  # no-op on a closed journal, not an error
    assert read_journal(writer.path) == ([{"n": 1}], False)


def test_each_append_is_durable_without_close(tmp_path):
    """The crash model: records must be readable while the writer is
    still open (the process may die at any moment)."""
    writer = JournalWriter(tmp_path / "j.log")
    writer.append({"n": 1})
    assert read_journal(writer.path) == ([{"n": 1}], False)
    writer.close()
