"""Tests for the batched SQ/CQ I/O backend (:mod:`repro.io.uring`).

Covers the layers bottom-up: the vectored-syscall helpers, the LRU FD
table (O_DIRECT grant/fallback/demotion), the stores' vectored entry
points (bit-identical frames, torn-write taxonomy, strictly fewer
syscalls), the backend under a live scheduler (books reconcile, reap
lag recorded), backend equivalence on real training (losses bit-exact
across thread/uring/gds-sim), and chaos on the uring backend (seeded
transient faults heal to bit-exact results; whole-batch failures leave
every worker alive).
"""

import mmap
import os

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    EngineConfigError,
    OffloadPolicy,
    PolicyConfig,
    TensorCache,
    build_engine,
    make_offloader,
)
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import GPU
from repro.io import (
    BufferArena,
    ChunkedTensorStore,
    FDTable,
    GDSRegistry,
    GDSSimBackend,
    IOContext,
    IORequest,
    IOScheduler,
    Priority,
    TensorFileStore,
    UringBackend,
    io_context,
)
from repro.io.aio import syscall_tape
from repro.io.errors import IntegrityError
from repro.io.faults import FaultPlan, inject_faults
from repro.io.filestore import frame_payload
from repro.io.uring import preadv_full, pwritev_full
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer


# ------------------------------------------------------------ vectored helpers
def test_pwritev_preadv_roundtrip(tmp_path):
    path = str(tmp_path / "v.bin")
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        head = b"header--"
        body = np.arange(64, dtype=np.float32)
        assert pwritev_full(fd, [head, body]) == len(head) + body.nbytes
        back_head = bytearray(len(head))
        back_body = np.empty_like(body)
        got = preadv_full(fd, [back_head, memoryview(back_body)])
        assert got == len(head) + body.nbytes
        assert bytes(back_head) == head
        assert np.array_equal(back_body, body)
        # EOF shortfall: the probe buffer stays unfilled, got reports it.
        probe = bytearray(4)
        assert preadv_full(fd, [probe], offset=got) == 0
    finally:
        os.close(fd)


def test_vectored_helpers_count_syscalls(tmp_path):
    fd = os.open(str(tmp_path / "t.bin"), os.O_RDWR | os.O_CREAT, 0o644)
    try:
        tape = syscall_tape()
        with tape:
            pwritev_full(fd, [b"abc", b"def"])
            preadv_full(fd, [bytearray(6)])
        # One pwritev + one preadv in the common (no-short-I/O) case.
        assert tape.count == 2
    finally:
        os.close(fd)


# ------------------------------------------------------------------- FD table
def test_fdtable_caches_descriptors(tmp_path):
    table = FDTable(max_open=8)
    path = str(tmp_path / "a.bin")
    fd, direct, cached, fell_back = table.acquire_write(path)
    assert not direct and not cached and not fell_back
    os.write(fd, b"x")
    fd2, _, cached2, _ = table.acquire_write(path)
    assert fd2 == fd and cached2
    assert table.acquire_read(path) == fd  # buffered entry is shared
    assert table.opens == 1
    table.close_all()
    assert len(table) == 0
    assert table.closes == 1


def test_fdtable_lru_eviction(tmp_path):
    table = FDTable(max_open=2)
    paths = [str(tmp_path / f"{i}.bin") for i in range(3)]
    fds = [table.acquire_write(p)[0] for p in paths]
    assert len(table) == 2
    assert table.closes == 1  # paths[0] evicted (least recently used)
    # The evicted path transparently reopens (O_TRUNC: fresh file).
    fd0, _, cached, _ = table.acquire_write(paths[0])
    assert not cached
    assert table.opens == 4
    del fds, fd0
    table.close_all()


def test_fdtable_invalidate_forgets_deleted_paths(tmp_path):
    table = FDTable()
    path = str(tmp_path / "gone.bin")
    table.acquire_write(path)
    os.unlink(path)
    table.invalidate(path)
    with pytest.raises(FileNotFoundError):
        table.acquire_read(path)
    table.invalidate(path)  # idempotent on unknown paths
    table.close_all()


def test_fdtable_read_demotes_direct_descriptors(tmp_path):
    table = FDTable(direct=True)
    path = str(tmp_path / "d.bin")
    fd, direct, _, fell_back = table.acquire_write(path)
    if not direct:
        assert fell_back or not table.direct  # refused: fallback was counted
        table.close_all()
        pytest.skip("filesystem refused O_DIRECT")
    # O_DIRECT demands an aligned source; an anonymous mmap page is.
    page = mmap.mmap(-1, 4096)
    os.pwrite(fd, page, 0)
    # Loads need a buffered descriptor (unaligned destination arrays):
    # the direct entry is closed and replaced by a fresh buffered open.
    rfd = table.acquire_read(path)
    assert (table.opens, table.closes) == (2, 1)
    assert os.pread(rfd, 4, 0) == b"\0" * 4
    # And the buffered entry replaced the direct one in the table.
    assert table.acquire_write(path) == (rfd, False, True, False)
    table.close_all()


def test_fdtable_validation():
    with pytest.raises(ValueError):
        FDTable(max_open=0)


# ----------------------------------------------- stores: vectored entry points
def _ctx(tmp_path, direct=False, arena=None, gds=None):
    return IOContext(
        fds=FDTable(direct=direct), lane="ssd", arena=arena, gds=gds
    )


def test_filestore_vectored_bit_identical_and_fewer_syscalls(tmp_path):
    data = np.random.default_rng(0).standard_normal((32, 8)).astype(np.float32)
    classic = TensorFileStore(tmp_path / "classic")
    classic.write("t", data)
    vectored = TensorFileStore(tmp_path / "vectored")
    ctx = _ctx(tmp_path)
    with io_context(ctx):
        vectored.write("t", data)
        back = vectored.read("t", data.shape, data.dtype)
    assert np.array_equal(back, data)
    # Same checksum frame, byte for byte.
    assert (
        vectored.path_for("t").read_bytes() == classic.path_for("t").read_bytes()
    )
    # Strictly fewer kernel round-trips than the classic buffered path
    # (write: open+write+close -> pwritev on a table descriptor).
    classic.read("t", data.shape, data.dtype)
    assert vectored.write_syscalls < classic.write_syscalls
    assert vectored.read_syscalls < classic.read_syscalls
    ctx.fds.close_all()


def test_filestore_vectored_detects_torn_write(tmp_path):
    store = TensorFileStore(tmp_path)
    data = np.ones(64, dtype=np.float32)
    ctx = _ctx(tmp_path)
    with io_context(ctx):
        store.write("t", data)
    path = store.path_for("t")
    framed = path.read_bytes()
    path.write_bytes(framed[:-8])  # tear the tail off
    ctx.fds.invalidate(str(path))  # descriptor cache must not mask the tear
    with io_context(ctx):
        with pytest.raises(IntegrityError):
            store.read("t", (64,), np.float32)
    ctx.fds.close_all()


def test_filestore_vectored_shape_mismatch_is_caller_error(tmp_path):
    store = TensorFileStore(tmp_path)
    ctx = _ctx(tmp_path)
    with io_context(ctx):
        store.write("t", np.ones(64, dtype=np.float32))
        with pytest.raises(ValueError):
            store.read("t", (32,), np.float32)  # fewer bytes than on disk
        with pytest.raises(ValueError):
            store.read("t", (128,), np.float32)  # more bytes than on disk
    ctx.fds.close_all()


def test_filestore_vectored_missing_tensor(tmp_path):
    store = TensorFileStore(tmp_path)
    with io_context(_ctx(tmp_path)):
        with pytest.raises(FileNotFoundError):
            store.read("nope", (1,), np.float32)


def test_filestore_odirect_write_bit_identical(tmp_path):
    data = np.random.default_rng(1).standard_normal((100,)).astype(np.float32)
    store = TensorFileStore(tmp_path)
    arena = BufferArena()
    ctx = _ctx(tmp_path, direct=True, arena=arena)
    if not ctx.fds.direct:
        pytest.skip("platform has no O_DIRECT")
    with io_context(ctx):
        store.write("t", data)
        back = store.read("t", data.shape, data.dtype)
    if ctx.fds.direct_fallbacks:
        ctx.fds.close_all()
        pytest.skip("filesystem refused O_DIRECT")
    assert np.array_equal(back, data)
    # Aligned staging went through the arena, and every lease came back.
    assert arena.stats().aligned_leases >= 1
    assert arena.stats().outstanding_bytes == 0
    # ftruncate after the padded direct write: the on-disk frame is
    # byte-identical to the buffered path's.
    assert store.path_for("t").read_bytes() == frame_payload(data.tobytes())
    ctx.fds.close_all()


def test_chunkstore_vectored_bit_identical_and_fewer_syscalls(tmp_path):
    data = np.random.default_rng(2).standard_normal((64,)).astype(np.float32)
    classic = ChunkedTensorStore(tmp_path / "classic", chunk_bytes=256)
    vectored = ChunkedTensorStore(tmp_path / "vectored", chunk_bytes=256)
    classic.write("t", data)
    classic.read("t", data.shape, data.dtype)
    ctx = _ctx(tmp_path)
    with io_context(ctx):
        vectored.write("t", data)
        back = vectored.read("t", data.shape, data.dtype)
    assert np.array_equal(back, data)
    assert (
        vectored.path_for("t").read_bytes() == classic.path_for("t").read_bytes()
    )
    assert vectored.write_syscalls < classic.write_syscalls
    assert vectored.read_syscalls < classic.read_syscalls
    ctx.fds.close_all()


# ------------------------------------------------------- backend + scheduler
def _roundtrip(sched, store, n=12):
    data = np.arange(256, dtype=np.float32)
    stores = [
        sched.submit(
            IORequest(
                lambda i=i: store.write(f"t{i}", data),
                kind="store",
                priority=Priority.STORE,
                tensor_id=f"t{i}",
                nbytes=data.nbytes,
            )
        )
        for i in range(n)
    ]
    assert sched.drain(10)
    for req in stores:
        assert req.error is None
    loads = [
        sched.submit(
            IORequest(
                lambda i=i: store.read(f"t{i}", data.shape, data.dtype),
                kind="load",
                priority=Priority.PREFETCH_LOAD,
                tensor_id=f"t{i}",
                nbytes=data.nbytes,
            )
        )
        for i in range(n)
    ]
    assert sched.drain(10)
    for req in loads:
        assert req.error is None
        assert np.array_equal(req.result, data)
    return data.nbytes * n


def test_uring_backend_books_reconcile_and_batch(tmp_path):
    backend = UringBackend()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, backend=backend)
    store = TensorFileStore(tmp_path)
    try:
        _roundtrip(sched, store)
        stats = sched.stats
        assert stats.submitted == stats.executed + stats.failed + stats.cancelled
        assert stats.failed == 0
        lanes = sched.backend_stats_snapshot()
        ssd = lanes["ssd"]
        assert ssd.syscalls > 0
        assert ssd.batches > 0
        # Every claimed request was reaped, and reap lag was measured.
        assert ssd.reaped == stats.executed + stats.failed
        assert ssd.reap_lag_s >= 0.0
        windows = sched.consume_completion_stats()
        assert windows["ssd"]["write"].reap_lag_s >= 0.0
    finally:
        sched.shutdown()
    assert len(backend.fds) == 0  # shutdown closes the FD table


def test_uring_strictly_fewer_syscalls_than_thread(tmp_path):
    counts = {}
    for name, backend in (("thread", None), ("uring", UringBackend())):
        sched = IOScheduler(
            num_store_workers=1, num_load_workers=1, backend=backend
        )
        store = TensorFileStore(tmp_path / name)
        try:
            nbytes = _roundtrip(sched, store)
            counts[name] = (store.write_syscalls + store.read_syscalls, nbytes)
        finally:
            sched.shutdown()
    assert counts["uring"][1] == counts["thread"][1]  # identical bytes
    assert counts["uring"][0] < counts["thread"][0]


def test_gds_sim_routes_registered_tensors_past_the_bounce(tmp_path):
    from repro.tensor.tensor import Tensor

    registry = GDSRegistry()
    backend = GDSSimBackend(registry=registry)
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, backend=backend)
    store = TensorFileStore(tmp_path)
    registered = Tensor(np.arange(64, dtype=np.float32))
    registry.register(registered.untyped_storage())
    unregistered = np.ones(64, dtype=np.float32)
    try:
        for name, payload in (("reg", registered.data), ("unreg", unregistered)):
            sched.submit(
                IORequest(
                    lambda n=name, p=payload: store.write(n, p),
                    kind="store",
                    priority=Priority.STORE,
                    tensor_id=name,
                    nbytes=payload.nbytes,
                )
            )
        assert sched.drain(10)
        lanes = sched.backend_stats_snapshot()
        assert lanes["ssd"].bounce_copies_skipped == 1  # registered: direct
        assert lanes["ssd"].bounce_copies == 1  # unregistered: staged
        # Bounce staging leases all returned to the arena.
        assert backend.arena.stats().outstanding_bytes == 0
        # Both frames are bit-identical to the classic path regardless
        # of routing.
        assert store.path_for("reg").read_bytes() == frame_payload(
            registered.data.tobytes()
        )
        assert store.path_for("unreg").read_bytes() == frame_payload(
            unregistered.tobytes()
        )
    finally:
        sched.shutdown()


# ------------------------------------------------- engine config + end to end
def test_engine_config_validates_io_backend(tmp_path):
    with pytest.raises(EngineConfigError, match="io_backend"):
        EngineConfig(target="ssd", store_dir=tmp_path, io_backend="epoll").validate()
    with pytest.raises(EngineConfigError, match="io_direct"):
        EngineConfig(target="ssd", store_dir=tmp_path, io_direct=True).validate()


def test_engine_builds_selected_backend(tmp_path):
    engine = build_engine(
        EngineConfig(target="ssd", store_dir=tmp_path / "u", io_backend="uring")
    )
    try:
        assert isinstance(engine.scheduler.backend, UringBackend)
        assert engine.stats().io_backend == "uring"
    finally:
        engine.shutdown()
    engine = build_engine(
        EngineConfig(target="ssd", store_dir=tmp_path / "g", io_backend="gds-sim")
    )
    try:
        backend = engine.scheduler.backend
        assert isinstance(backend, GDSSimBackend)
        # The backend consults the offloader's registry: pack-time
        # registration is what routes stores past the bounce buffer.
        assert backend.registry is engine.offloader.gds
    finally:
        engine.shutdown()


CONFIG = ModelConfig(
    arch="gpt", hidden=64, num_layers=2, vocab_size=97, seq_len=32, head_dim=32
)
STEPS = 3


def _train(tmp_path, name, backend=None, plan=None):
    """Train the reference model on ``backend``; mirrors the chaos suite."""
    gpu = GPU()
    model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
    policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
    scheduler = (
        IOScheduler(backend=backend) if backend is not None else None
    )
    cache = TensorCache(
        make_offloader("ssd", store_dir=tmp_path / name, policy=policy),
        policy=policy,
        scheduler=scheduler,
    )
    if isinstance(backend, GDSSimBackend):
        backend.registry = cache.offloader.gds
    injector = inject_faults(cache.offloader, plan) if plan is not None else None
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=1e-3),
        gpu,
        strategy=PlacementStrategy.OFFLOAD,
        cache=cache,
    )
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=5),
        batch_size=2,
        seq_len=CONFIG.seq_len,
        device=gpu,
    )
    losses = []
    try:
        for _ in range(STEPS):
            losses.append(trainer.train_step([loader.next_batch()]).loss)
        stats = cache.scheduler.stats
        assert stats.submitted == stats.executed + stats.failed + stats.cancelled
        assert cache.scheduler.pending() == 0
        for worker in cache.scheduler._workers:
            assert worker.is_alive(), f"worker {worker.name} died"
        lanes = cache.scheduler.backend_stats_snapshot()
    finally:
        trainer.close()
    return losses, stats, lanes, injector


def test_backends_train_bit_exact(tmp_path):
    """The tentpole acceptance: thread/uring/gds-sim produce identical
    losses on real training, with uring issuing strictly fewer syscalls,
    and every backend's request books reconciling exactly."""
    thread_losses, _, _, _ = _train(tmp_path, "thread")
    uring_losses, _, uring_lanes, _ = _train(
        tmp_path, "uring", backend=UringBackend()
    )
    gds_losses, _, gds_lanes, _ = _train(
        tmp_path, "gds", backend=GDSSimBackend()
    )
    assert uring_losses == thread_losses
    assert gds_losses == thread_losses
    assert uring_lanes["ssd"].syscalls > 0
    assert uring_lanes["ssd"].reaped > 0
    # Pack-time registration routes offloaded tensors past the bounce.
    assert gds_lanes["ssd"].bounce_copies_skipped > 0


def test_thread_backend_books_but_never_reaps(tmp_path):
    """The thread backend under the backend seam keeps the classic
    buffered path (its syscall books count the legacy open/write/close
    constants) and has no completion reaper — completions apply inline,
    so ``reaped`` stays zero and no reap lag is ever recorded."""
    _, _, lanes, _ = _train(tmp_path, "thread")
    busy = [ls for ls in lanes.values() if ls.batches]
    assert busy, "the ssd lane must have executed batches"
    assert all(ls.syscalls > 0 for ls in busy)
    assert all(ls.reaped == 0 and ls.reap_lag_s == 0.0 for ls in lanes.values())


@pytest.mark.parametrize("seed", (0, 1))
def test_uring_chaos_transient_faults_heal_bit_exact(tmp_path, seed):
    """PR 4's chaos plan on the uring backend: seeded transient faults
    (whole batches fail at once under SQ/CQ) heal through the retry
    budget to bit-exact losses with all workers alive."""
    clean, _, _, _ = _train(tmp_path, "clean", backend=UringBackend())
    plan = FaultPlan.transient(rate=0.25, seed=seed)
    faulted, stats, _, injector = _train(
        tmp_path, f"faulted{seed}", backend=UringBackend(), plan=plan
    )
    assert injector.fault_stats.injected_transient > 0, "the plan must bite"
    assert stats.retries >= injector.fault_stats.injected_transient
    assert stats.failed == 0, "every transient fault must heal"
    assert faulted == clean, "chaos must not change the numerics"
