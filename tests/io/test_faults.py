"""Unit tests for the failure model: the error taxonomy and retry rule,
checksum framing in both stores, the fault injector's determinism, job
retry-with-backoff, the scheduler's FAILED accounting + worker
survival, and the per-lane health tracker."""

import threading
import warnings

import numpy as np
import pytest

from repro.io import (
    ChunkedTensorStore,
    IORequest,
    IOScheduler,
    LaneHealthTracker,
    Priority,
    TensorFileStore,
)
from repro.io.aio import AsyncIOPool, IOJob, JobState
from repro.io.errors import (
    IntegrityError,
    PermanentIOError,
    TransientIOError,
    is_retryable,
    retry_call,
)
from repro.io.faults import FaultInjector, FaultPlan, inject_faults
from repro.io.filestore import FRAME_HEADER_BYTES, frame_payload, unframe_payload


def _req(fn, kind="store", priority=Priority.STORE, nbytes=0, tid="t", lane="ssd", **kw):
    return IORequest(
        fn, kind=kind, priority=priority, tensor_id=tid, nbytes=nbytes, lane=lane, **kw
    )


# ------------------------------------------------------------------- taxonomy
def test_retry_classification():
    assert is_retryable(TransientIOError("blip"))
    assert is_retryable(IntegrityError("crc"))
    assert is_retryable(TimeoutError())
    assert is_retryable(OSError("EIO"))  # generic device errno: retryable
    assert not is_retryable(PermanentIOError("dead"))
    assert not is_retryable(FileNotFoundError("gone"))
    assert not is_retryable(PermissionError("denied"))
    assert not is_retryable(ValueError("a bug, not a device"))


def test_retry_call_heals_transient_and_fails_fast_on_permanent():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise TransientIOError("blip")
        return "ok"

    assert retry_call(flaky, max_retries=2, backoff_s=0) == "ok"
    assert len(calls) == 3

    dead_calls = []

    def dead():
        dead_calls.append(1)
        raise PermanentIOError("bricked")

    with pytest.raises(PermanentIOError):
        retry_call(dead, max_retries=5, backoff_s=0)
    assert len(dead_calls) == 1  # no pointless retries on a dead device


def test_retry_call_exhausts_budget():
    calls = []

    def always():
        calls.append(1)
        raise TransientIOError("blip")

    with pytest.raises(TransientIOError):
        retry_call(always, max_retries=2, backoff_s=0)
    assert len(calls) == 3  # first try + 2 retries


# ------------------------------------------------------------ checksum frames
def test_frame_roundtrip_and_corruption():
    payload = b"hello tensor bytes"
    framed = frame_payload(payload)
    assert len(framed) == FRAME_HEADER_BYTES + len(payload)
    assert unframe_payload(framed, "t") == payload
    with pytest.raises(IntegrityError):  # torn: shorter than the header
        unframe_payload(framed[:8], "t")
    with pytest.raises(IntegrityError):  # torn: payload truncated
        unframe_payload(framed[:-4], "t")
    flipped = bytearray(framed)
    flipped[-1] ^= 0xFF
    with pytest.raises(IntegrityError):  # bit-rot: crc mismatch
        unframe_payload(bytes(flipped), "t")
    bad_magic = b"XXXX" + framed[4:]
    with pytest.raises(IntegrityError):
        unframe_payload(bad_magic, "t")


def test_filestore_detects_bit_rot_and_torn_writes(tmp_path):
    store = TensorFileStore(tmp_path)
    data = np.arange(64, dtype=np.float32)
    store.write("a", data)
    out = store.read("a", (64,), np.dtype(np.float32))
    assert np.array_equal(out, data)
    # Bit-rot at rest: flip one payload byte on disk.
    path = store.path_for("a")
    raw = bytearray(path.read_bytes())
    raw[FRAME_HEADER_BYTES + 5] ^= 0x01
    path.write_bytes(bytes(raw))
    with pytest.raises(IntegrityError):
        store.read("a", (64,), np.dtype(np.float32))
    # Torn write: a prefix of the file.
    store.write("b", data)
    pb = store.path_for("b")
    pb.write_bytes(pb.read_bytes()[: FRAME_HEADER_BYTES + 10])
    with pytest.raises(IntegrityError):
        store.read("b", (64,), np.dtype(np.float32))


def test_chunkstore_detects_bit_rot_after_flush(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=1 << 20)
    data = np.arange(32, dtype=np.float32)
    store.write("a", data)
    store.write("b", data + 1)
    # Open-chunk reads verify too (and pass on clean bytes).
    assert np.array_equal(store.read("a", (32,), np.dtype(np.float32)), data)
    store.flush()
    path = store.path_for("b")
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # inside b's payload
    path.write_bytes(bytes(raw))
    assert np.array_equal(store.read("a", (32,), np.dtype(np.float32)), data)
    with pytest.raises(IntegrityError):
        store.read("b", (32,), np.dtype(np.float32))
    # Torn chunk: truncation starves the ranged read.
    path.write_bytes(bytes(raw[:16]))
    with pytest.raises(IntegrityError):
        store.read("b", (32,), np.dtype(np.float32))


# ------------------------------------------------------------- fault injector
def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(transient_write_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(transient_repeats=0)
    with pytest.raises(ValueError):
        FaultPlan(dead_after_ops=-1)
    with pytest.raises(ValueError):
        FaultPlan(latency_spike_s=-0.1)


def test_injector_transient_faults_heal_on_retry(tmp_path):
    store = TensorFileStore(tmp_path)
    injector = FaultInjector(store, FaultPlan.transient(rate=1.0, seed=3))
    data = np.ones(16, dtype=np.float32)
    with pytest.raises(TransientIOError):
        injector.write("a", data)
    injector.write("a", data)  # the retry of the same op goes through
    with pytest.raises(TransientIOError):
        injector.read("a", (16,), np.dtype(np.float32))
    out = injector.read("a", (16,), np.dtype(np.float32))
    assert np.array_equal(out, data)
    assert injector.fault_stats.injected_transient == 2
    # Pass-through of the wrapped store's surface.
    assert injector.write_count == 1
    assert injector.path_for("a") == store.path_for("a")


def test_injector_transient_repeats_bound_consecutive_faults(tmp_path):
    injector = FaultInjector(
        TensorFileStore(tmp_path),
        FaultPlan(transient_write_rate=1.0, transient_repeats=2, seed=0),
    )
    data = np.ones(4, dtype=np.float32)
    for _ in range(2):
        with pytest.raises(TransientIOError):
            injector.write("a", data)
    injector.write("a", data)  # third attempt heals


def test_injector_permanent_death(tmp_path):
    injector = FaultInjector(TensorFileStore(tmp_path), FaultPlan.dead(after_ops=1))
    data = np.ones(4, dtype=np.float32)
    injector.write("a", data)  # op 1 is still alive
    with pytest.raises(PermanentIOError):
        injector.write("b", data)
    with pytest.raises(PermanentIOError):  # death is sticky
        injector.read("a", (4,), np.dtype(np.float32))
    assert injector.fault_stats.permanent_failures == 2
    # Programmatic kill as well.
    fresh = FaultInjector(TensorFileStore(tmp_path / "f"), FaultPlan())
    fresh.write("a", data)
    fresh.kill()
    assert fresh.dead
    with pytest.raises(PermanentIOError):
        fresh.write("b", data)


def test_injector_bit_rot_surfaces_as_integrity_error(tmp_path):
    injector = FaultInjector(TensorFileStore(tmp_path), FaultPlan(bit_rot_rate=1.0))
    data = np.arange(32, dtype=np.float32)
    injector.write("a", data)  # write lands, then rots at rest
    assert injector.fault_stats.injected_bit_rot == 1
    with pytest.raises(IntegrityError):
        injector.read("a", (32,), np.dtype(np.float32))


def test_injector_torn_write_surfaces_as_integrity_error(tmp_path):
    injector = FaultInjector(TensorFileStore(tmp_path), FaultPlan(torn_write_rate=1.0))
    data = np.arange(32, dtype=np.float32)
    injector.write("a", data)
    assert injector.fault_stats.injected_torn_writes == 1
    with pytest.raises(IntegrityError):
        injector.read("a", (32,), np.dtype(np.float32))


def test_injector_skips_corrupting_open_chunk(tmp_path):
    """A chunk store's open chunk has no backing file yet; at-rest
    corruption is recorded as skipped, not crashed."""
    injector = FaultInjector(
        ChunkedTensorStore(tmp_path, chunk_bytes=1 << 20), FaultPlan(bit_rot_rate=1.0)
    )
    injector.write("a", np.ones(8, dtype=np.float32))
    assert injector.fault_stats.skipped_corruptions == 1


def test_injector_determinism_same_seed_same_faults(tmp_path):
    def run(seed):
        injector = FaultInjector(
            TensorFileStore(tmp_path / f"s{seed}"),
            FaultPlan.transient(rate=0.5, seed=seed),
        )
        outcomes = []
        for i in range(32):
            try:
                injector.write(f"t{i}", np.ones(4, dtype=np.float32))
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("fault")
        return outcomes

    assert run(7) == run(7)
    assert run(7) != run(8)  # different seed, different schedule


def test_inject_faults_wraps_offloaders(tmp_path):
    from repro.core import SSDOffloader
    from repro.core.tiered import TieredOffloader

    ssd = SSDOffloader(tmp_path / "a")
    injector = inject_faults(ssd, FaultPlan())
    assert ssd.file_store is injector
    tiered = TieredOffloader(tmp_path / "b", cpu_pool_bytes=1 << 20)
    injector = inject_faults(tiered, FaultPlan())
    assert tiered.ssd.file_store is injector
    tiered.shutdown()
    with pytest.raises(TypeError):
        inject_faults(object(), FaultPlan())


# ------------------------------------------------------------------ job retry
def test_iojob_retries_transient_then_succeeds():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise TransientIOError("blip")
        return 42

    job = IOJob(flaky, max_retries=2, retry_backoff_s=0)
    job.run()
    assert job.state is JobState.DONE
    assert job.result == 42
    assert job.attempts == 2


def test_iojob_fails_fast_on_permanent_error():
    calls = []

    def dead():
        calls.append(1)
        raise PermanentIOError("bricked")

    job = IOJob(dead, max_retries=5, retry_backoff_s=0)
    job.run()
    assert job.state is JobState.FAILED
    assert job.attempts == 0
    assert len(calls) == 1


def test_iojob_default_budget_is_zero():
    calls = []

    def flaky():
        calls.append(1)
        raise TransientIOError("blip")

    job = IOJob(flaky)
    job.run()
    assert job.state is JobState.FAILED
    assert len(calls) == 1


def test_pool_jobs_keep_one_shot_semantics():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        pool = AsyncIOPool(1)
    calls = []

    def flaky():
        calls.append(1)
        raise TransientIOError("blip")

    job = pool.submit(flaky)
    assert job.wait(5)
    assert job.state is JobState.FAILED
    assert len(calls) == 1
    pool.shutdown()


# --------------------------------------------------------- scheduler failures
def test_scheduler_retries_transient_requests(tmp_path):
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 2:
            raise TransientIOError("blip")
        return "ok"

    req = sched.submit(_req(flaky, nbytes=64))
    assert req.wait(5)
    assert req.state is JobState.DONE
    assert sched.stats.retries == 1
    assert sched.stats.failed == 0
    assert sched.stats.executed == 1
    sched.shutdown()


def test_scheduler_failed_accounting_reconciles():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, retry_backoff_s=0)

    def boom():
        raise PermanentIOError("bricked")

    ok = sched.submit(_req(lambda: None, tid="ok"))
    bad = sched.submit(_req(boom, nbytes=128, tid="bad"))
    assert sched.drain(5)
    assert ok.state is JobState.DONE
    assert bad.state is JobState.FAILED
    assert isinstance(bad.error, PermanentIOError)
    stats = sched.stats
    assert stats.failed == 1
    assert stats.failed_bytes == 128
    assert stats.submitted == stats.executed + stats.failed + stats.cancelled
    sched.shutdown()


def test_failed_requests_do_not_inflate_bandwidth_windows():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, retry_backoff_s=0)

    def boom():
        raise PermanentIOError("bricked")

    sched.submit(_req(boom, nbytes=1 << 20, tid="bad"))
    sched.submit(_req(lambda: None, nbytes=512, tid="ok"))
    assert sched.drain(5)
    window = sched.consume_completion_stats()["ssd"]["write"]
    assert window.nbytes == 512  # the failed MiB moved no usable bytes
    assert window.count == 1
    sched.shutdown()


def test_worker_survives_raising_done_callback_and_drain_returns():
    """Regression for the original bug class: an exception escaping the
    job (here, from a done callback) must not kill the worker thread —
    the work queued behind it still runs and drain() returns."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    ran = []

    poisoned = _req(lambda: None, tid="poison")
    poisoned.add_done_callback(lambda j: (_ for _ in ()).throw(RuntimeError("cb boom")))
    sched.submit(poisoned)
    for i in range(4):
        sched.submit(_req(lambda i=i: ran.append(i), tid=f"t{i}"))
    assert sched.drain(5), "drain must not hang after a poisoned request"
    assert sorted(ran) == list(range(4))
    for worker in sched._workers:
        assert worker.is_alive()
    sched.shutdown()


def test_worker_survives_raising_listener():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    sched.add_listener(lambda event, req: (_ for _ in ()).throw(ValueError("listener")))
    done = threading.Event()
    sched.submit(_req(done.set, tid="a"))
    assert done.wait(5)
    assert sched.drain(5)
    for worker in sched._workers:
        assert worker.is_alive()
    sched.shutdown()


def test_scheduler_validation_of_retry_knobs():
    with pytest.raises(ValueError):
        IOScheduler(max_retries=-1)
    with pytest.raises(ValueError):
        IOScheduler(retry_backoff_s=-0.1)


def test_explicit_zero_retries_opt_out():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, max_retries=3,
                        retry_backoff_s=0)
    calls = []

    def flaky():
        calls.append(1)
        raise TransientIOError("blip")

    req = sched.submit(_req(flaky, tid="noretry", max_retries=0))
    assert req.wait(5)
    assert req.state is JobState.FAILED
    assert len(calls) == 1
    sched.shutdown()


# ------------------------------------------------------------------ lane health
def test_lane_health_tracker_death_rules():
    health = LaneHealthTracker(death_threshold=3)
    assert not health.is_dead("ssd")
    health.record_failure("ssd")
    health.record_failure("ssd")
    health.record_success("ssd")  # success resets the consecutive count
    health.record_failure("ssd")
    health.record_failure("ssd")
    assert not health.is_dead("ssd")
    health.record_failure("ssd")  # third consecutive
    assert health.is_dead("ssd")
    assert health.dead_lanes() == ("ssd",)
    health.revive("ssd")
    assert not health.is_dead("ssd")
    # One permanent error kills instantly.
    health.record_failure("cpu", permanent=True)
    assert health.is_dead("cpu")
    snap = health.snapshot()
    assert snap["ssd"].failures == 5 and snap["cpu"].dead
    with pytest.raises(ValueError):
        LaneHealthTracker(death_threshold=0)


def test_lane_health_failure_window_consumes():
    health = LaneHealthTracker()
    health.record_failure("ssd")
    health.record_failure("ssd")
    health.record_failure("cpu")
    assert health.consume_failure_window() == {"ssd": 2, "cpu": 1}
    assert health.consume_failure_window() == {}


def test_scheduler_feeds_lane_health():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, retry_backoff_s=0)

    def boom():
        raise PermanentIOError("bricked")

    sched.submit(_req(boom, tid="bad"))
    sched.submit(_req(lambda: None, tid="ok", lane="cpu"))
    assert sched.drain(5)
    assert sched.health.is_dead("ssd")  # permanent error = instant death
    assert not sched.health.is_dead("cpu")
    assert sched.health.consume_failure_window() == {"ssd": 1}
    snap = sched.health.snapshot()
    assert snap["cpu"].successes == 1
    sched.shutdown()


def test_capacity_and_bug_failures_do_not_poison_lane_health():
    """Review regression: a MemoryError (pool capacity spike) or a plain
    bug in a job body is not a device signal — three of them in a row
    must not brick the lane and floor the autotune budget forever."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, retry_backoff_s=0)

    def oom():
        raise MemoryError("pinned pool exhausted")

    def bug():
        raise ValueError("a bug, not a device")

    def gone():
        raise FileNotFoundError("released by a concurrent path")

    for _ in range(3):
        sched.submit(_req(oom, tid="oom", max_retries=0))
        sched.submit(_req(gone, tid="gone", max_retries=0))
    sched.submit(_req(bug, tid="bug", max_retries=0))
    assert sched.drain(5)
    assert sched.stats.failed == 7  # the books still see the failures
    assert not sched.health.is_dead("ssd")
    assert sched.health.consume_failure_window() == {}  # no device signal
    # Real device errors still count.
    sched.submit(_req(lambda: (_ for _ in ()).throw(TransientIOError("x")),
                      tid="dev", max_retries=0))
    assert sched.drain(5)
    assert sched.health.consume_failure_window() == {"ssd": 1}
    sched.shutdown()


def test_done_request_with_health_error_reports_lane_failure():
    """A body that recovered from an I/O failure internally (demotion
    failover) completes DONE but must not launder the lane's record into
    a success."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)

    def recovered_body(req_holder):
        req_holder[0].health_error = TransientIOError("write failed, failed over")
        return None

    holder = []
    req = _req(lambda: recovered_body(holder), kind="demote",
               priority=Priority.DEMOTION, tid="d")
    holder.append(req)
    sched.submit(req)
    assert req.wait(5)
    assert req.state is JobState.DONE
    assert sched.drain(5)
    assert sched.health.consume_failure_window() == {"ssd": 1}
    assert sched.health.snapshot()["ssd"].successes == 0
    sched.shutdown()
