"""Tests for the circuit breaker driving SSD-tier resurrection.

The breaker is a pure state machine (policy lives in the tiered
offloader), so everything here runs against an injected fake clock —
no sleeps, no threads, fully deterministic transitions.
"""

import threading

import pytest

from repro.io.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_breaker(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("backoff_s", 1.0)
    kwargs.setdefault("clock", clock)
    return CircuitBreaker(**kwargs), clock


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(backoff_s=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker(probe_budget=0)


def test_starts_closed():
    breaker, _ = make_breaker()
    assert breaker.state == BreakerState.CLOSED
    assert not breaker.is_open
    # A closed breaker grants no probes: there is nothing to test.
    assert not breaker.allow_probe()


def test_trip_is_idempotent_while_open():
    breaker, _ = make_breaker()
    assert breaker.trip("device died")
    assert breaker.state == BreakerState.OPEN
    assert breaker.is_open
    assert not breaker.trip("again")  # no second transition
    assert breaker.stats.trips == 1


def test_probe_gated_by_backoff():
    breaker, clock = make_breaker(backoff_s=1.0)
    breaker.trip()
    assert not breaker.allow_probe()  # backoff not elapsed
    clock.advance(0.5)
    assert not breaker.allow_probe()
    clock.advance(0.6)
    assert breaker.allow_probe()
    assert breaker.state == BreakerState.HALF_OPEN


def test_probe_single_flight():
    breaker, clock = make_breaker()
    breaker.trip()
    clock.advance(2.0)
    assert breaker.allow_probe()
    # While the first canary is outstanding nobody else probes.
    assert not breaker.allow_probe()
    breaker.record_probe_success()
    # Budget not yet met -> still HALF_OPEN, next probe slot opens.
    assert breaker.state == BreakerState.HALF_OPEN
    assert breaker.allow_probe()


def test_probe_budget_closes_breaker():
    breaker, clock = make_breaker(probe_budget=2)
    breaker.trip()
    clock.advance(2.0)
    assert breaker.allow_probe()
    assert not breaker.record_probe_success()  # 1/2: stays half-open
    assert breaker.allow_probe()
    assert breaker.record_probe_success()  # 2/2: this call closed it
    assert breaker.state == BreakerState.CLOSED
    assert not breaker.is_open
    assert breaker.stats.resurrections == 1
    assert breaker.stats.probe_successes == 2


def test_probe_failure_reopens_with_doubled_backoff():
    breaker, clock = make_breaker(backoff_s=1.0, backoff_max_s=3.0)
    breaker.trip()
    clock.advance(1.5)
    assert breaker.allow_probe()
    breaker.record_probe_failure("still dead")
    assert breaker.state == BreakerState.OPEN
    assert breaker.stats.probe_failures == 1
    # Backoff doubled to 2s: 1.5s is no longer enough.
    clock.advance(1.5)
    assert not breaker.allow_probe()
    clock.advance(0.6)
    assert breaker.allow_probe()
    breaker.record_probe_failure()
    # Doubled again but capped at backoff_max_s=3.
    clock.advance(2.9)
    assert not breaker.allow_probe()
    clock.advance(0.2)
    assert breaker.allow_probe()


def test_close_resets_backoff():
    breaker, clock = make_breaker(backoff_s=1.0, probe_budget=1)
    breaker.trip()
    clock.advance(2.0)
    breaker.allow_probe()
    breaker.record_probe_failure()  # backoff now 2s
    clock.advance(2.1)
    breaker.allow_probe()
    assert breaker.record_probe_success()  # closes (budget=1)
    breaker.trip("second incident")
    # Fresh incident starts from the base backoff, not the doubled one.
    clock.advance(1.1)
    assert breaker.allow_probe()


def test_success_and_failure_ignored_outside_half_open():
    breaker, _ = make_breaker()
    assert not breaker.record_probe_success()
    breaker.record_probe_failure()
    assert breaker.state == BreakerState.CLOSED
    assert breaker.stats.probe_failures == 0


def test_half_open_interrupted_by_trip_resets_probe_round():
    breaker, clock = make_breaker(probe_budget=2)
    breaker.trip()
    clock.advance(2.0)
    breaker.allow_probe()
    breaker.record_probe_success()  # 1/2
    breaker.trip("fresh failure mid-probe-round")
    clock.advance(2.0)
    breaker.allow_probe()
    # The earlier success does not carry across the re-trip.
    assert not breaker.record_probe_success()
    assert breaker.state == BreakerState.HALF_OPEN


def test_reset_force_closes():
    breaker, _ = make_breaker()
    breaker.trip()
    breaker.reset("operator override")
    assert breaker.state == BreakerState.CLOSED
    breaker.reset()  # idempotent while closed
    assert breaker.state == BreakerState.CLOSED


def test_listeners_see_every_transition():
    breaker, clock = make_breaker(probe_budget=1)
    events = []
    breaker.add_listener(lambda name, old, new, why: events.append((name, old, new, why)))
    breaker.trip("dead")
    clock.advance(2.0)
    breaker.allow_probe()
    breaker.record_probe_success()
    assert events == [
        ("ssd", BreakerState.CLOSED, BreakerState.OPEN, "dead"),
        ("ssd", BreakerState.OPEN, BreakerState.HALF_OPEN, "backoff elapsed"),
        ("ssd", BreakerState.HALF_OPEN, BreakerState.CLOSED, "probe budget met"),
    ]


def test_listener_exception_does_not_poison_transitions():
    breaker, _ = make_breaker()

    def bad(*_args):
        raise RuntimeError("listener bug")

    seen = []
    breaker.add_listener(bad)
    breaker.add_listener(lambda *a: seen.append(a))
    breaker.trip()
    assert breaker.state == BreakerState.OPEN
    assert len(seen) == 1


def test_listener_may_reenter_breaker_views():
    """Listeners fire outside the lock, so reading state back is safe."""
    breaker, _ = make_breaker()
    states = []
    breaker.add_listener(lambda *_a: states.append(breaker.state))
    breaker.trip()
    assert states == [BreakerState.OPEN]


def test_concurrent_probe_storm_grants_one_slot():
    breaker, clock = make_breaker()
    breaker.trip()
    clock.advance(2.0)
    grants = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait(5)
        grants.append(breaker.allow_probe())

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    assert sum(grants) == 1
    assert breaker.stats.probes_allowed == 1
