"""Fairness and isolation battery for the multi-tenant QoS layer.

The three headline bars (the PR's acceptance numbers):

- equal-weight tenants under contention split the shared lane with a
  Jain fairness index >= 0.9 (FIFO measurably lower);
- weighted tenants get bandwidth proportional to weight within 20%;
- a byte-quota-capped tenant never executes a byte past its budget.

Plus the supporting unit surface: tenant scopes, registry admission
books, DRR no-starvation, park/unpark conservation, per-tenant
telemetry, tenant-scoped lane health and tiered-SSD death isolation,
per-tenant placement hooks, pool/arena per-tenant accounting, and the
regression guard that the default (single-tenant) path dequeues in
exactly the legacy order.
"""

import threading

import numpy as np
import pytest

from repro.core.ids import TensorID
from repro.core.offloader import CPUOffloader, PinnedMemoryPool
from repro.core.policy import OffloadPolicy, Tier
from repro.core.tiered import TieredOffloader
from repro.io import (
    BufferArena,
    IORequest,
    IOScheduler,
    Priority,
    TenantContext,
    TenantQuotaError,
    TenantRegistry,
    current_tenant,
    jain_index,
    tenant_scope,
)
from repro.io.aio import JobState
from repro.io.errors import PermanentIOError
from repro.io.scheduler import LaneHealthTracker, _FairQueue
from repro.io.tenancy import DEFAULT_TENANT
from repro.sim.step_sim import MultiTenantHarness, TenantJobSpec


def _req(fn, kind="store", priority=Priority.STORE, nbytes=0, tid="t",
         lane="ssd", tenant=None):
    return IORequest(
        fn, kind=kind, priority=priority, tensor_id=tid, nbytes=nbytes,
        lane=lane, tenant=tenant,
    )


def _block_worker(sched, gate, n=2, lane="ssd"):
    """Park the lane's ``n`` workers on ``gate`` so later submissions
    stay queued (same barrier idiom as test_scheduler — the gate jobs
    are blocking loads, which dequeue first and never coalesce)."""
    barrier = threading.Barrier(n + 1)

    def hold():
        barrier.wait(5)
        gate.wait(5)

    reqs = []
    for i in range(n):
        req = _req(hold, kind="load", priority=Priority.BLOCKING_LOAD,
                   tid=f"gate{i}", lane=lane)
        sched.submit(req)
        reqs.append(req)
    barrier.wait(5)
    return reqs


# ---------------------------------------------------------------- scopes


def test_tenant_scope_defaults_and_nesting():
    assert current_tenant() == DEFAULT_TENANT
    with tenant_scope("a"):
        assert current_tenant() == "a"
        with tenant_scope("b"):
            assert current_tenant() == "b"
        assert current_tenant() == "a"
    assert current_tenant() == DEFAULT_TENANT


def test_request_inherits_scope_tenant():
    with tenant_scope("teamX"):
        req = _req(lambda: None)
    assert req.tenant == "teamX"
    assert _req(lambda: None, tenant="explicit").tenant == "explicit"
    assert _req(lambda: None).tenant == DEFAULT_TENANT


def test_worker_executes_in_request_tenant_scope():
    seen = {}
    sched = IOScheduler(
        num_store_workers=1, num_load_workers=1, lanes=("ssd",),
        tenants=TenantRegistry(),
    )
    try:
        sched.submit(_req(lambda: seen.setdefault("t", current_tenant()),
                          tenant="worker-scope"))
        sched.drain()
    finally:
        sched.shutdown()
    assert seen["t"] == "worker-scope"


# -------------------------------------------------------------- registry


def test_registry_register_and_weight():
    reg = TenantRegistry()
    reg.register("a", weight=2.0)
    reg.register(TenantContext(name="b", weight=0.5))
    assert reg.weight("a") == 2.0
    assert reg.weight("b") == 0.5
    assert reg.weight("unknown") == 1.0
    with pytest.raises(ValueError):
        TenantContext(name="bad", weight=0.0)
    with pytest.raises(ValueError):
        TenantContext(name="bad", over_quota="explode")


def test_jain_index_edges():
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)


def test_registry_quota_charge_and_refund_books():
    reg = TenantRegistry()
    reg.register("q", byte_quota=100)
    assert reg.admit("q", 60) == "ok"
    assert reg.admit("q", 60) == "reject"  # over budget
    stats = reg.stats_of("q")
    assert stats.quota_in_use_bytes == 60
    assert stats.rejected == 1 and stats.rejected_bytes == 60
    # Executed work stays charged (the quota is a cumulative admission
    # budget); only cancellations/failures refund.
    reg.note_finished("q", "executed", 60, retries=0)
    assert reg.stats_of("q").quota_in_use_bytes == 60
    assert reg.admit("q", 60) == "reject"
    reg.refund("q", 60)
    assert reg.admit("q", 60) == "ok"


# ------------------------------------------------------- fairness bars


def _equal_jobs(n=4, tensors=24, nbytes=48 << 10):
    return [TenantJobSpec(name=f"job{i}", num_tensors=tensors,
                          tensor_bytes=nbytes) for i in range(n)]


def test_equal_weight_contention_jain_bar():
    """Bar 1: equal tenants split the contended window, Jain >= 0.9."""
    fair = MultiTenantHarness(_equal_jobs(), fair=True).run()
    fifo = MultiTenantHarness(_equal_jobs(), fair=False).run()
    assert fair.contended_jain >= 0.9, fair.contended_jain
    # The naive-FIFO baseline is measurably less fair: sequential bursts
    # serve the first tenant to completion before touching the rest.
    assert fifo.contended_jain < fair.contended_jain - 0.05


def test_weighted_tenants_bandwidth_proportional_bar():
    """Bar 2: contended-window service tracks weight within 20%."""
    jobs = [
        TenantJobSpec(name="heavy", weight=2.0, num_tensors=40,
                      tensor_bytes=32 << 10),
        TenantJobSpec(name="light", weight=1.0, num_tensors=40,
                      tensor_bytes=32 << 10),
    ]
    result = MultiTenantHarness(jobs, fair=True).run()
    shares = {m.name: m.contended_bytes for m in result.tenants.values()}
    ratio = shares["heavy"] / shares["light"]
    assert 2.0 * 0.8 <= ratio <= 2.0 * 1.2, ratio


def test_quota_capped_tenant_never_exceeds_budget_bar():
    """Bar 3: a byte-quota tenant executes at most its budget."""
    quota = 6 * (64 << 10)
    jobs = [
        TenantJobSpec(name="capped", num_tensors=20, tensor_bytes=64 << 10,
                      byte_quota=quota),
        TenantJobSpec(name="free", num_tensors=20, tensor_bytes=64 << 10),
    ]
    result = MultiTenantHarness(jobs, fair=True).run()
    capped = result.tenants["capped"]
    assert capped.executed_bytes <= quota
    assert capped.executed_bytes == quota  # budget fully usable, too
    assert capped.rejected_bytes == 20 * (64 << 10) - quota
    free = result.tenants["free"]
    assert free.executed_bytes == 20 * (64 << 10)  # uncapped tenant whole


# ----------------------------------------------------- DRR mechanics


def test_drr_no_starvation_bounded_wait():
    """A one-request tenant is served within its deficit bound even
    while a heavy tenant floods the same class."""
    reg = TenantRegistry(quantum_bytes=1024)
    reg.register("heavy", weight=1.0)
    reg.register("tiny", weight=1.0)
    queue = _FairQueue(reg)
    for i in range(64):
        queue.push(_req(lambda: None, nbytes=1024, tid=f"h{i}", tenant="heavy"))
    queue.push(_req(lambda: None, nbytes=512, tid="t0", tenant="tiny"))
    order = []
    while True:
        popped = queue.pop()
        if popped is None:
            break
        order.append(popped.tenant)
    served_at = order.index("tiny")
    # One quantum covers the tiny request: it must land within the first
    # ring pass (heavy can burst at most ceil(quantum/1024)=1 ahead of
    # the pointer arrival, plus scheduling slack).
    assert served_at <= 2, order[:8]
    assert len(order) == 65


def test_drr_weighted_byte_shares():
    """Byte shares over one contended drain track weights."""
    reg = TenantRegistry(quantum_bytes=4096)
    reg.register("w2", weight=2.0)
    reg.register("w1", weight=1.0)
    queue = _FairQueue(reg)
    for i in range(60):
        queue.push(_req(lambda: None, nbytes=1024, tid=f"a{i}", tenant="w2"))
        queue.push(_req(lambda: None, nbytes=1024, tid=f"b{i}", tenant="w1"))
    served = {"w2": 0, "w1": 0}
    # Drain only the contended prefix (both queues non-empty).
    for _ in range(90):
        popped = queue.pop()
        served[popped.tenant] += popped.nbytes
    ratio = served["w2"] / served["w1"]
    assert 1.6 <= ratio <= 2.4, served


def test_fair_path_respects_priority_classes():
    """Fairness is intra-class: a blocking load beats every queued store
    regardless of tenant."""
    reg = TenantRegistry()
    queue = _FairQueue(reg)
    for i in range(4):
        queue.push(_req(lambda: None, nbytes=1024, tid=f"s{i}", tenant="bulk"))
    load = _req(lambda: None, kind="load", priority=Priority.BLOCKING_LOAD,
                nbytes=64, tid="urgent", tenant="interactive")
    queue.push(load)
    assert queue.pop() is load


# ------------------------------------------------- park / unpark quota


def test_over_quota_park_then_unpark_on_refund():
    reg = TenantRegistry()
    reg.register("p", byte_quota=100, over_quota="park")
    sched = IOScheduler(num_store_workers=1, num_load_workers=1,
                        lanes=("ssd",), tenants=reg, coalesce_bytes=0)
    events = []
    sched.add_listener(lambda ev, req: events.append((ev, req.tensor_id)))
    gate = threading.Event()
    try:
        _block_worker(sched, gate)
        first = _req(lambda: None, nbytes=80, tid="first", tenant="p")
        sched.submit(first)
        parked = _req(lambda: None, nbytes=80, tid="parked", tenant="p")
        sched.submit(parked)
        assert sched.parked("p") == 1
        assert ("park", "parked") in events
        # Cancelling the admitted request refunds its quota and the
        # parked one is re-admitted automatically, in park order.
        assert sched.cancel(first)
        assert sched.parked("p") == 0
        assert ("unpark", "parked") in events
        gate.set()
        sched.drain()
    finally:
        gate.set()
        sched.shutdown()
    stats = reg.stats_of("p")
    assert stats.parked == 1 and stats.unparked == 1
    assert stats.parked_cancelled == 0
    assert parked.state is JobState.DONE


def test_parked_requests_cancelled_on_shutdown_conservation():
    reg = TenantRegistry()
    reg.register("p", byte_quota=10, over_quota="park")
    sched = IOScheduler(num_store_workers=1, num_load_workers=1,
                        lanes=("ssd",), tenants=reg, coalesce_bytes=0)
    gate = threading.Event()
    try:
        _block_worker(sched, gate)
        sched.submit(_req(lambda: None, nbytes=10, tid="in", tenant="p"))
        held = [_req(lambda: None, nbytes=10, tid=f"held{i}", tenant="p")
                for i in range(3)]
        for req in held:
            sched.submit(req)
        assert sched.parked("p") == 3
    finally:
        gate.set()
        sched.shutdown()
    stats = reg.stats_of("p")
    assert stats.parked == 3
    assert stats.unparked + stats.parked_cancelled == 3
    for req in held:
        assert req.state in (JobState.CANCELLED, JobState.DONE)


def test_reject_policy_raises_quota_error():
    reg = TenantRegistry()
    reg.register("r", byte_quota=10, over_quota="reject")
    sched = IOScheduler(num_store_workers=1, num_load_workers=1,
                        lanes=("ssd",), tenants=reg, coalesce_bytes=0)
    try:
        sched.submit(_req(lambda: None, nbytes=10, tid="ok", tenant="r"))
        with pytest.raises(TenantQuotaError):
            sched.submit(_req(lambda: None, nbytes=1, tid="no", tenant="r"))
        sched.drain()
    finally:
        sched.shutdown()
    assert reg.stats_of("r").rejected == 1


def test_bandwidth_quota_stays_work_conserving():
    """A bandwidth-capped tenant alone on the lane still completes: the
    token bucket paces under contention but never wedges an otherwise
    idle lane (liveness via the forced-admit escape)."""
    reg = TenantRegistry()
    reg.register("slow", bandwidth_quota_bytes_per_s=1.0)  # absurdly low
    sched = IOScheduler(num_store_workers=1, num_load_workers=1,
                        lanes=("ssd",), tenants=reg, coalesce_bytes=0)
    done = []
    try:
        for i in range(8):
            sched.submit(_req(lambda i=i: done.append(i), nbytes=1 << 20,
                              tid=f"s{i}", tenant="slow"))
        assert sched.drain(timeout=10), "bandwidth quota must not deadlock"
    finally:
        sched.shutdown()
    assert len(done) == 8


# ------------------------------------------------- per-tenant telemetry


def test_per_tenant_completion_windows():
    reg = TenantRegistry()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1,
                        lanes=("ssd",), tenants=reg, coalesce_bytes=0)
    try:
        for tenant, nbytes in (("a", 1000), ("a", 1000), ("b", 500)):
            sched.submit(_req(lambda: None, nbytes=nbytes, tenant=tenant))
        sched.drain()
    finally:
        sched.shutdown()
    windows = sched.consume_tenant_completion_stats()
    assert windows["a"]["ssd"]["write"].nbytes == 2000
    assert windows["a"]["ssd"]["write"].count == 2
    assert windows["b"]["ssd"]["write"].nbytes == 500
    # Drained: a second consume starts empty.
    assert sched.consume_tenant_completion_stats() == {}


def test_scheduler_books_reconcile_per_tenant():
    reg = TenantRegistry()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1,
                        lanes=("ssd",), tenants=reg, coalesce_bytes=0)
    gate = threading.Event()
    try:
        _block_worker(sched, gate)
        ok = [_req(lambda: None, nbytes=10, tid=f"ok{i}", tenant="t") for i in range(3)]
        for req in ok:
            sched.submit(req)
        victim = _req(lambda: None, nbytes=10, tid="victim", tenant="t")
        sched.submit(victim)
        assert sched.cancel(victim)
        gate.set()
        sched.drain()
    finally:
        gate.set()
        sched.shutdown()
    stats = reg.stats_of("t")
    assert stats.submitted == 4
    assert stats.executed + stats.failed + stats.cancelled == stats.submitted
    assert stats.cancelled == 1 and stats.executed == 3


# --------------------------------------------- health / tier isolation


def test_lane_health_tenant_scoping():
    health = LaneHealthTracker()
    health.mark_dead("ssd", tenant="a")
    assert health.is_dead("ssd", "a")
    assert not health.is_dead("ssd")
    assert not health.is_dead("ssd", "b")
    assert set(health.dead_tenants("ssd")) == {"a"}
    # Global death covers every tenant; a global revive clears the
    # tenant scopes too (the device came back for everyone).
    health.mark_dead("ssd")
    assert health.is_dead("ssd", "b")
    health.revive("ssd")
    assert not health.is_dead("ssd")
    assert not health.is_dead("ssd", "a")


def test_tiered_tenant_ssd_death_isolated(tmp_path):
    """A permanent SSD failure inside tenant A's store latches degraded
    mode for A only: B keeps the SSD tier, the global latch stays off."""
    policy = OffloadPolicy()
    policy.config.cpu_tier_max_tensor_bytes = 0  # force SSD placement
    off = TieredOffloader(tmp_path, cpu_pool_bytes=1 << 20, policy=policy)
    real_store = off.ssd.store

    def flaky_store(tid, data):
        if current_tenant() == "a":
            raise PermanentIOError("tenant A's namespace bricked")
        return real_store(tid, data)

    off.ssd.store = flaky_store
    data = np.arange(256, dtype=np.float32)
    tid_a = TensorID(stamp=1, shape=data.shape)
    tid_b = TensorID(stamp=2, shape=data.shape)
    try:
        with tenant_scope("a"):
            off.store(tid_a, data)  # fails over to the CPU tier
        assert off.ssd_dead_for("a")
        assert not off.ssd_dead  # global latch untouched
        assert off.tier_of(tid_a) is Tier.CPU
        with tenant_scope("b"):
            off.store(tid_b, data)  # B's SSD placement still works
        assert off.tier_of(tid_b) is Tier.SSD
        assert not off.ssd_dead_for("b")
        with tenant_scope("a"):
            got = off.load(tid_a, data.shape, data.dtype)
        np.testing.assert_array_equal(got, data)
    finally:
        off.ssd.store = real_store
        off.shutdown()


def test_make_room_skips_dead_tenant_victims(tmp_path):
    """Pool pressure never demotes a resident whose tenant's SSD is
    dead — their parked bytes have nowhere to go."""
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2048)
    data = np.zeros(256, dtype=np.float32)  # 1024 bytes
    tid_dead = TensorID(stamp=1, shape=data.shape)
    tid_live = TensorID(stamp=2, shape=data.shape)
    tid_new = TensorID(stamp=3, shape=data.shape)
    try:
        with tenant_scope("doomed"):
            off.store(tid_dead, data)
        with tenant_scope("healthy"):
            off.store(tid_live, data)
        off._mark_ssd_dead("doomed")
        # Pool is full (2 x 1024); the next store must demote exactly the
        # healthy tenant's resident, though doomed's is older (LRU head).
        with tenant_scope("healthy"):
            off.store(tid_new, data)
        assert off.tier_of(tid_dead) is Tier.CPU
        assert off.tier_of(tid_live) is Tier.SSD
        assert off.tier_of(tid_new) is Tier.CPU
    finally:
        off.shutdown()


# ------------------------------------------------- placement hooks


def test_policy_place_for_tenant_hook():
    policy = OffloadPolicy()
    default = policy.place(nbytes=100, cpu_free_bytes=1000)
    assert default is Tier.CPU
    policy.set_tenant_policy("cold", lambda nbytes, free: Tier.SSD)
    assert policy.place_for("cold", nbytes=100, cpu_free_bytes=1000) is Tier.SSD
    assert policy.place_for("other", nbytes=100, cpu_free_bytes=1000) is Tier.CPU
    # A hook may defer with None (fall through to the shared rule).
    policy.set_tenant_policy("picky",
                             lambda nbytes, free: Tier.SSD if nbytes > 500 else None)
    assert policy.place_for("picky", nbytes=100, cpu_free_bytes=1000) is Tier.CPU
    assert policy.place_for("picky", nbytes=600, cpu_free_bytes=1000) is Tier.SSD
    policy.set_tenant_policy("cold", None)  # removal restores the default
    assert policy.place_for("cold", nbytes=100, cpu_free_bytes=1000) is Tier.CPU


def test_tiered_store_honours_tenant_placement_hook(tmp_path):
    off = TieredOffloader(tmp_path, cpu_pool_bytes=1 << 20)
    off.policy.set_tenant_policy("cold", lambda nbytes, free: Tier.SSD)
    data = np.arange(128, dtype=np.float32)
    tid_cold = TensorID(stamp=1, shape=data.shape)
    tid_warm = TensorID(stamp=2, shape=data.shape)
    try:
        with tenant_scope("cold"):
            off.store(tid_cold, data)
        with tenant_scope("warm"):
            off.store(tid_warm, data)
        assert off.tier_of(tid_cold) is Tier.SSD
        assert off.tier_of(tid_warm) is Tier.CPU
        with tenant_scope("cold"):
            assert off.store_lane(tid_cold, data.nbytes) == "ssd"
        assert off.store_lane(tid_cold, data.nbytes) == "cpu"  # default scope
    finally:
        off.shutdown()


# --------------------------------------- pool / arena tenant accounting


def test_pinned_pool_per_tenant_accounting():
    pool = PinnedMemoryPool(capacity_bytes=None)
    pool.alloc(100, tenant="a")
    pool.alloc(50, tenant="b")
    with tenant_scope("a"):
        pool.alloc(10)  # scope-resolved owner
    assert pool.used_by("a") == 110
    assert pool.used_by("b") == 50
    with pytest.raises(ValueError):
        pool.free(60, tenant="b")  # over-free per tenant, global fine
    pool.free(110, tenant="a")
    pool.free(50, tenant="b")
    assert pool.used_by_tenant() == {}
    assert pool.used == 0


def test_arena_per_tenant_outstanding():
    arena = BufferArena()
    with tenant_scope("a"):
        lease_a = arena.lease(4096)
    lease_b = arena.lease(4096, tenant="b")
    snap = arena.stats()
    assert snap.outstanding_by_tenant == {"a": 1, "b": 1}
    assert arena.outstanding_for("a") == 1
    lease_a.release()
    lease_b.release()
    assert arena.stats().outstanding_by_tenant == {}


def test_cpu_offloader_frees_against_owning_tenant():
    off = CPUOffloader(PinnedMemoryPool())
    data = np.zeros(256, dtype=np.float32)
    tid = TensorID(stamp=1, shape=data.shape)
    with tenant_scope("owner"):
        off.store(tid, data)
    assert off.pool.used_by("owner") == data.nbytes
    assert off.owner_of(tid) == "owner"
    # Evicted from a different tenant's thread: the bytes still come off
    # the owner's account, not the evictor's.
    with tenant_scope("other"):
        off.evict(tid)
    assert off.pool.used_by_tenant() == {}
    off.shutdown()


def test_cpu_offloader_shutdown_clears_all_tenants():
    off = CPUOffloader(PinnedMemoryPool())
    data = np.zeros(64, dtype=np.float32)
    for i, tenant in enumerate(("a", "b", "c")):
        with tenant_scope(tenant):
            off.store(TensorID(stamp=i, shape=data.shape), data)
    assert len(off.pool.used_by_tenant()) == 3
    off.shutdown()
    assert off.pool.used_by_tenant() == {}
    assert off.pool.used == 0


# ------------------------------------------------- regression guard


def test_default_tenant_fair_path_matches_legacy_order():
    """The single-tenant fair path dequeues in exactly the legacy heap
    order (priority class, then submission order) — the byte-identical
    guard for pre-tenancy workloads."""

    def run(sched):
        order = []
        gate = threading.Event()
        try:
            _block_worker(sched, gate)
            for i in range(6):
                sched.submit(_req(lambda i=i: order.append(f"s{i}"),
                                  nbytes=1024, tid=f"s{i}"))
            for i in range(3):
                sched.submit(_req(lambda i=i: order.append(f"l{i}"),
                                  kind="load", priority=Priority.PREFETCH_LOAD,
                                  nbytes=512, tid=f"l{i}"))
            sched.submit(_req(lambda: order.append("d0"), kind="demote",
                              priority=Priority.DEMOTION, nbytes=256, tid="d0"))
            gate.set()
            sched.drain()
        finally:
            gate.set()
            sched.shutdown()
        return order

    legacy = run(IOScheduler(num_store_workers=1, num_load_workers=1,
                             lanes=("ssd",), coalesce_bytes=0))
    fair = run(IOScheduler(num_store_workers=1, num_load_workers=1,
                           lanes=("ssd",), coalesce_bytes=0,
                           tenants=TenantRegistry()))
    assert legacy == fair
    assert legacy[:3] == ["l0", "l1", "l2"]  # class order preserved
    assert legacy[3] == "d0"
