"""Tests for the I/O trace recorder."""

import numpy as np
import pytest

from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.io.trace import IOTracer, attach_tracer
from repro.models import GPT, ModelConfig
from repro.tensor.tensor import Tensor


def test_tracer_records_and_stats():
    tracer = IOTracer()
    tracer.record("store", "t1", 1000, 0.0, 1.0)
    tracer.record("store", "t2", 1000, 0.5, 1.5)   # overlaps t1
    tracer.record("load", "t1", 1000, 2.0, 3.0)
    stats = tracer.stats()
    assert stats.store_bytes == 2000
    assert stats.load_bytes == 1000
    assert stats.store_busy_s == pytest.approx(1.5)  # union of [0,1] and [0.5,1.5]
    assert stats.load_busy_s == pytest.approx(1.0)
    assert stats.store_bandwidth == pytest.approx(2000 / 1.5)


def test_tracer_rejects_bad_kind():
    with pytest.raises(ValueError):
        IOTracer().record("flush", "x", 1, 0.0, 1.0)


def test_tracer_reset():
    tracer = IOTracer()
    tracer.record("store", "t", 1, 0.0, 1.0)
    tracer.reset()
    assert tracer.events == []


def test_render_ascii_empty_and_filled():
    tracer = IOTracer()
    assert "no I/O events" in tracer.render_ascii()
    tracer.record("store", "t", 1, 0.0, 1.0)
    art = tracer.render_ascii(width=20)
    assert "store" in art and "s" in art


def test_attach_tracer_captures_real_run(gpu, tmp_path):
    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=61, seq_len=16, head_dim=16
    )
    model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
    cache = TensorCache(
        SSDOffloader(tmp_path / "traced"),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
    )
    try:
        tracer = attach_tracer(cache)
        assert attach_tracer(cache, tracer) is tracer  # idempotent
        cache.register_weights(model)
        cache.attach(model)
        rng = np.random.default_rng(1)
        tokens = Tensor(rng.integers(0, 61, (2, 16)).astype(np.int64), device=gpu)
        targets = Tensor(rng.integers(0, 61, (2, 16)).astype(np.int64), device=gpu)
        with cache:
            loss = model(tokens, targets)
            cache.on_backward_begin()
            loss.backward()
            cache.on_backward_end()
        cache.on_step_end()

        stores = [e for e in tracer.events if e.kind == "store"]
        loads = [e for e in tracer.events if e.kind == "load"]
        assert stores and loads
        assert all(e.end_s >= e.start_s for e in tracer.events)
        stats = tracer.stats()
        # Stores cancelled by forwarding never reach the backend, so the
        # traced bytes are the submitted bytes minus the cancelled ones.
        assert (
            stats.store_bytes
            == cache.stats.stored_bytes - cache.stats.cancelled_store_bytes
        )
        assert stats.load_bytes == cache.stats.loaded_bytes
        assert "s" in tracer.render_ascii()
    finally:
        cache.shutdown()


def test_traced_run_matches_untraced(gpu, tmp_path):
    """Tracing must not perturb results."""
    config = ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=61, seq_len=16, head_dim=16
    )

    def run(traced):
        model = GPT(config, rng=np.random.default_rng(0)).to(gpu)
        cache = TensorCache(
            SSDOffloader(tmp_path / f"t{traced}"),
            policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
        )
        try:
            if traced:
                attach_tracer(cache)
            cache.register_weights(model)
            cache.attach(model)
            rng = np.random.default_rng(1)
            tokens = Tensor(rng.integers(0, 61, (2, 16)).astype(np.int64), device=gpu)
            targets = Tensor(rng.integers(0, 61, (2, 16)).astype(np.int64), device=gpu)
            with cache:
                loss = model(tokens, targets)
                cache.on_backward_begin()
                loss.backward()
                cache.on_backward_end()
            cache.on_step_end()
            return loss.item()
        finally:
            cache.shutdown()

    assert run(False) == pytest.approx(run(True), abs=1e-7)
