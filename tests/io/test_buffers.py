"""Tests for the zero-copy data plane: the buffer arena's lease/release
accounting (including under concurrency and fault interleavings), the
streaming checksum writers' byte-for-byte equivalence with the legacy
copy path, and the conditional-copy bit-exactness fixes."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ids import TensorID
from repro.core.offloader import CPUOffloader, PinnedMemoryPool
from repro.core.policy import Tier
from repro.core.tiered import TieredOffloader
from repro.io.buffers import (
    MIN_SIZE_CLASS,
    BufferArena,
    owned_copy,
    size_class,
)
from repro.io.chunkstore import ChunkedTensorStore
from repro.io.errors import IntegrityError, PermanentIOError
from repro.io.faults import FaultPlan, inject_faults
from repro.io.filestore import FRAME_HEADER_BYTES, TensorFileStore, frame_payload
from repro.io.scheduler import IORequest, IOScheduler, Priority

DATA = np.arange(256, dtype=np.float32)  # 1 KiB


def _tid(i: int) -> TensorID:
    return TensorID(stamp=i, shape=(256,))


# ------------------------------------------------------------------ the arena
def test_size_class_binning():
    assert size_class(0) == MIN_SIZE_CLASS
    assert size_class(1) == MIN_SIZE_CLASS
    assert size_class(MIN_SIZE_CLASS) == MIN_SIZE_CLASS
    assert size_class(MIN_SIZE_CLASS + 1) == 2 * MIN_SIZE_CLASS
    assert size_class(100_000) == 1 << 17
    with pytest.raises(ValueError):
        size_class(-1)


def test_lease_reuse_hits_the_pool():
    arena = BufferArena()
    first = arena.lease(10_000)
    buf = first.array
    first.release()
    second = arena.lease(12_000)  # same 16 KiB class
    assert second.array is buf  # the exact buffer came back
    second.release()
    stats = arena.stats()
    assert stats.leases == 2
    assert stats.releases == 2
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.allocs_avoided == 1
    assert stats.hit_rate == 0.5
    assert stats.outstanding == 0
    assert stats.leaked == 0


def test_lease_view_and_idempotent_release():
    arena = BufferArena()
    lease = arena.lease(DATA.nbytes)
    view = lease.view(DATA.shape, DATA.dtype)
    np.copyto(view, DATA)
    assert view.shape == DATA.shape and view.dtype == DATA.dtype
    np.testing.assert_array_equal(view, DATA)
    with pytest.raises(ValueError):
        lease.view((1 << 20,), np.float64)  # larger than the lease
    lease.release()
    lease.release()  # idempotent: no double-free, books stay exact
    stats = arena.stats()
    assert stats.releases == 1
    assert stats.outstanding == 0


def test_retention_cap_tied_to_pinned_pool():
    pool = PinnedMemoryPool(capacity_bytes=MIN_SIZE_CLASS)
    arena = BufferArena(pool=pool)
    a, b = arena.lease(100), arena.lease(100)
    a.release()
    b.release()  # second buffer exceeds the pool-tied retention cap
    stats = arena.stats()
    assert stats.retained_bytes == MIN_SIZE_CLASS
    assert stats.trimmed_buffers == 1
    # The cap is read live: growing the pool grows the arena with it.
    pool.capacity_bytes = 4 * MIN_SIZE_CLASS
    c, d = arena.lease(100), arena.lease(100)
    c.release()
    d.release()
    assert arena.stats().retained_bytes == 2 * MIN_SIZE_CLASS


def test_trim_drops_free_buffers_only():
    arena = BufferArena()
    held = arena.lease(100)
    batch = [arena.lease(100) for _ in range(3)]
    for lease in batch:
        lease.release()
    assert arena.stats().retained_bytes == 3 * MIN_SIZE_CLASS
    dropped = arena.trim(MIN_SIZE_CLASS)
    assert dropped == 2
    assert arena.stats().retained_bytes == MIN_SIZE_CLASS
    assert arena.stats().outstanding == 1  # the held lease is untouched
    held.release()


def test_concurrent_release_of_one_lease_returns_it_once():
    """release() is advertised as safe without coordination: racing
    releases of the SAME lease must return the buffer exactly once
    (a double return would alias two future leases onto one buffer)."""
    arena = BufferArena()
    for _ in range(50):
        lease = arena.lease(100)
        barrier = threading.Barrier(4)

        def racer():
            barrier.wait()
            lease.release()

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        a, b = arena.lease(100), arena.lease(100)
        assert a.array is not b.array  # never handed out aliased
        a.release()
        b.release()
    stats = arena.stats()
    assert stats.releases == stats.leases
    assert stats.outstanding == 0
    assert stats.leaked == 0


def test_concurrent_lease_release_no_corruption_no_leaks():
    arena = BufferArena()
    errors = []

    def worker(seed: int) -> None:
        rng = np.random.default_rng(seed)
        try:
            for i in range(200):
                nbytes = int(rng.integers(1, 64 * 1024))
                lease = arena.lease(nbytes)
                view = lease.array[:nbytes]
                view[:] = seed % 251
                if not np.all(view == seed % 251):
                    errors.append(f"corrupted lease in thread {seed}")
                lease.release()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = arena.stats()
    assert stats.leases == stats.releases == 8 * 200
    assert stats.outstanding == 0
    assert stats.leaked == 0


# --------------------------------------------------- streaming writer parity
def test_filestore_streaming_bytes_identical_to_legacy_frame(tmp_path):
    data = np.random.default_rng(3).random((31, 17)).astype(np.float32)
    streaming = TensorFileStore(tmp_path / "new")
    legacy = TensorFileStore(tmp_path / "old", legacy_copies=True)
    streaming.write("t", data)
    legacy.write("t", data)
    new_bytes = streaming.path_for("t").read_bytes()
    old_bytes = legacy.path_for("t").read_bytes()
    assert new_bytes == old_bytes
    assert new_bytes == frame_payload(data.tobytes())
    # Cross-reads: either reader accepts either writer's file.
    np.testing.assert_array_equal(
        legacy.read("t", data.shape, data.dtype), data
    )
    np.testing.assert_array_equal(
        streaming.read("t", data.shape, data.dtype), data
    )
    swapped = TensorFileStore(tmp_path / "old")  # streaming reader, legacy file
    np.testing.assert_array_equal(
        swapped.read("t", data.shape, data.dtype), data
    )


def test_filestore_streaming_write_avoids_copies(tmp_path):
    store = TensorFileStore(tmp_path)
    store.write("t", DATA)
    snap = store.copy_stats.snapshot()
    assert snap.copies == 0  # contiguous input: zero Python-level memcpys
    assert snap.allocs_avoided == 2  # tobytes() + header concat
    store.write("t", np.asfortranarray(np.random.random((8, 8))))
    assert store.copy_stats.snapshot().copies == 1  # the contiguity copy


def test_chunkstore_streaming_bytes_identical_to_legacy(tmp_path):
    tensors = {
        f"t{i}": np.random.default_rng(i).random(97 + i).astype(np.float32)
        for i in range(5)
    }
    streaming = ChunkedTensorStore(tmp_path / "new", chunk_bytes=1 << 20)
    legacy = ChunkedTensorStore(
        tmp_path / "old", chunk_bytes=1 << 20, legacy_copies=True
    )
    for name, arr in tensors.items():
        streaming.write(name, arr)
        legacy.write(name, arr)
    streaming.flush()
    legacy.flush()
    assert streaming.path_for("t0").read_bytes() == legacy.path_for("t0").read_bytes()
    for name, arr in tensors.items():
        np.testing.assert_array_equal(
            streaming.read(name, arr.shape, arr.dtype), arr
        )


def test_chunkstore_open_chunk_read_is_an_owned_copy(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=1 << 20)
    store.write("t", DATA)
    first = store.read("t", DATA.shape, DATA.dtype)
    # Growing the staging buffer afterwards must neither raise (a live
    # buffer export would make the bytearray unresizable) nor mutate the
    # returned array.
    store.write("u", np.random.random(4096))
    np.testing.assert_array_equal(first, DATA)


# ----------------------------------------------- torn-write read validation
def test_filestore_rejects_torn_file_before_reading_payload(tmp_path):
    store = TensorFileStore(tmp_path)
    store.write("t", DATA)
    path = store.path_for("t")
    raw = path.read_bytes()
    # (a) shorter than the header
    path.write_bytes(raw[: FRAME_HEADER_BYTES - 4])
    with pytest.raises(IntegrityError, match="shorter than the frame header"):
        store.read("t", DATA.shape, DATA.dtype)
    # (b) truncated payload: the header-vs-file-size check fires without
    # any payload bytes being read
    path.write_bytes(raw[: FRAME_HEADER_BYTES + DATA.nbytes // 2])
    with pytest.raises(IntegrityError, match="torn write"):
        store.read("t", DATA.shape, DATA.dtype)
    # (c) intact file, but the caller asks for the wrong size: a
    # deterministic bug, surfaced fail-fast as a NON-retryable
    # ValueError (retrying a correct file cannot help, and the repeats
    # would count against the lane's health for no device fault)
    path.write_bytes(raw)
    with pytest.raises(ValueError, match="caller expected"):
        store.read("t", (DATA.size * 2,), DATA.dtype)
    # (d) trailing garbage beyond the frame
    path.write_bytes(raw + b"junk")
    with pytest.raises(IntegrityError, match="torn write"):
        store.read("t", DATA.shape, DATA.dtype)


def test_filestore_streaming_detects_bit_rot(tmp_path):
    store = TensorFileStore(tmp_path)
    store.write("t", DATA)
    path = store.path_for("t")
    raw = bytearray(path.read_bytes())
    raw[FRAME_HEADER_BYTES + 13] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(IntegrityError, match="checksum mismatch"):
        store.read("t", DATA.shape, DATA.dtype)


def test_chunkstore_length_checked_before_payload_moves(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=1 << 20)
    store.write("t", DATA)
    # An intact index that disagrees with the caller is a deterministic
    # shape/dtype bug: fail fast, non-retryable, no payload bytes moved.
    with pytest.raises(ValueError, match="caller expects"):
        store.read("t", (DATA.size * 2,), DATA.dtype)  # open chunk
    store.flush()
    with pytest.raises(ValueError, match="caller expects"):
        store.read("t", (DATA.size * 2,), DATA.dtype)  # flushed chunk


# --------------------------------------------------- conditional-copy bugfix
def test_owned_copy_single_copy_both_ways():
    src = np.arange(64, dtype=np.float32)
    same = owned_copy(src, np.float32)
    assert same.dtype == np.float32
    np.testing.assert_array_equal(same, src)
    assert same.base is None and same is not src  # owned, not a view
    converted = owned_copy(src, np.float64)
    assert converted.dtype == np.float64
    np.testing.assert_array_equal(converted, src.astype(np.float64))


def test_cpu_offloader_load_bit_exact_and_owned():
    off = CPUOffloader(PinnedMemoryPool())
    legacy = CPUOffloader(PinnedMemoryPool(), legacy_copies=True)
    data = np.random.default_rng(5).random(256).astype(np.float32)
    off.store(_tid(1), data)
    legacy.store(_tid(1), data)
    for dtype in (np.float32, np.float64):
        pooled = off.load(_tid(1), data.shape, dtype)
        reference = legacy.load(_tid(1), data.shape, dtype)
        assert pooled.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(pooled, reference)
    # Ownership: mutating the resident buffer must not reach the loaded
    # copy (the GPU-reinstate boundary owns its bytes).
    loaded = off.load(_tid(1), data.shape, np.float32)
    off.peek(_tid(1))[:] = 0.0
    np.testing.assert_array_equal(loaded, data)
    off.shutdown()
    legacy.shutdown()


# --------------------------------------------------- CPU offloader + arena
def test_cpu_store_reuses_arena_buffers():
    off = CPUOffloader(PinnedMemoryPool())
    off.store(_tid(1), DATA)
    off.evict(_tid(1))
    off.store(_tid(2), DATA * 2)  # same size class: reuse, not realloc
    stats = off.arena.stats()
    assert stats.hits == 1
    assert stats.outstanding == 1
    np.testing.assert_array_equal(off.load(_tid(2), DATA.shape, DATA.dtype), DATA * 2)
    off.shutdown()
    assert off.arena.stats().outstanding == 0


def test_cpu_store_overwrite_releases_old_lease():
    off = CPUOffloader(PinnedMemoryPool())
    off.store(_tid(1), DATA)
    off.store(_tid(1), DATA * 3)
    stats = off.arena.stats()
    assert stats.outstanding == 1  # the overwritten lease went back
    np.testing.assert_array_equal(off.load(_tid(1), DATA.shape, DATA.dtype), DATA * 3)
    off.shutdown()


def test_pool_exhaustion_leaks_no_lease():
    off = CPUOffloader(PinnedMemoryPool(capacity_bytes=DATA.nbytes))
    off.store(_tid(1), DATA)
    with pytest.raises(MemoryError):
        off.store(_tid(2), DATA)
    stats = off.arena.stats()
    assert stats.outstanding == 1  # only the resident tensor's lease
    assert stats.leaked == 0
    off.shutdown()


# ------------------------------------------- scheduler lease lifecycle rules
def _hold_workers(sched: IOScheduler, lane: str = "ssd"):
    """Park every worker of a lane on a gate so submissions stay PENDING.

    Blockers are ``load``-kind: loads never coalesce, so each of the
    lane's workers claims exactly one and parks on the gate.
    """
    n_workers = 4  # num_store_workers + num_load_workers below
    gate = threading.Event()
    started = threading.Semaphore(0)

    def block():
        started.release()
        gate.wait()

    for _ in range(n_workers):
        sched.submit(
            IORequest(block, kind="load", priority=Priority.BLOCKING_LOAD, lane=lane)
        )
    for _ in range(n_workers):
        assert started.acquire(timeout=5), "lane workers failed to park"
    return gate


def test_scheduler_releases_lease_on_every_terminal_state():
    arena = BufferArena()
    sched = IOScheduler(num_store_workers=2, num_load_workers=2, retry_backoff_s=0.0)
    try:
        done = sched.submit(
            IORequest(
                lambda: None, kind="store", priority=Priority.STORE,
                lane="ssd", lease=arena.lease(100),
            )
        )
        failed = sched.submit(
            IORequest(
                lambda: (_ for _ in ()).throw(PermanentIOError("brick")),
                kind="store", priority=Priority.STORE, lane="ssd",
                max_retries=0, lease=arena.lease(100),
            )
        )
        gate = _hold_workers(sched, "cpu")
        cancelled = sched.submit(
            IORequest(
                lambda: None, kind="store", priority=Priority.STORE,
                lane="cpu", lease=arena.lease(100),
            )
        )
        assert sched.cancel(cancelled)
        gate.set()
        assert sched.drain(10)
        assert done.state.name == "DONE"
        assert failed.state.name == "FAILED"
        assert cancelled.state.name == "CANCELLED"
        stats = arena.stats()
        assert stats.outstanding == 0
        assert stats.leaked == 0
        assert sched.stats.leased_requests == 3
        assert sched.stats.leases_released == 3
    finally:
        sched.shutdown()


def test_detached_lease_is_not_double_released():
    arena = BufferArena()
    sched = IOScheduler(num_store_workers=2, num_load_workers=2)
    try:
        gate = _hold_workers(sched)
        lease = arena.lease(100)
        req = IORequest(
            lambda: None, kind="store", priority=Priority.STORE,
            lane="ssd", lease=lease,
        )
        sched.submit(req)
        taken = req.detach_lease()  # the owner keeps the bytes...
        assert taken is lease
        assert req.detach_lease() is None
        sched.cancel(req)
        gate.set()
        assert sched.drain(10)
        # ...so the scheduler released nothing, but the request still
        # counts as resolved — and the owner's release balances the books.
        assert arena.stats().outstanding == 1
        assert sched.stats.leases_released == 1
        taken.release()
        assert arena.stats().leaked == 0
    finally:
        sched.shutdown()


# ------------------------------------------- tiered demotion lease lifecycle
@pytest.fixture
def sched():
    scheduler = IOScheduler(num_store_workers=2, num_load_workers=2)
    yield scheduler
    scheduler.shutdown()


def _resident_cpu_count(off: TieredOffloader) -> int:
    with off.cpu._lock:
        return len(off.cpu._buffers)


def _assert_arena_exact(off: TieredOffloader) -> None:
    """Every outstanding lease is a live CPU-resident buffer or a parked
    demotion — the 'arena accounting exact' bar."""
    stats = off.arena.stats()
    with off._lock:
        parked = len(off._pending_demotions) + len(off._writing_demotions)
    assert stats.leaked == 0
    assert stats.outstanding == _resident_cpu_count(off) + parked


def test_demotion_transfers_lease_and_releases_on_write(tmp_path, sched):
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2 * DATA.nbytes)
    off.set_scheduler(sched)
    for i in range(4):  # 2 fit, 2 demote
        off.store(_tid(i), DATA + i)
    assert sched.drain(10)
    _assert_arena_exact(off)
    assert off.stats.demotions == 2
    for i in range(4):
        np.testing.assert_array_equal(
            off.load(_tid(i), DATA.shape, DATA.dtype), DATA + i
        )
    assert sched.drain(10)
    for i in range(4):
        off.release(_tid(i))
    assert sched.drain(10)
    assert off.arena.stats().outstanding == 0
    off.shutdown()
    assert off.arena.stats().leaked == 0


def test_cancelled_demotion_hands_lease_back(tmp_path, sched):
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2 * DATA.nbytes)
    off.set_scheduler(sched)
    gate = _hold_workers(sched)  # demotion writes stay queued
    try:
        for i in range(3):
            off.store(_tid(i), DATA + i)
        # tid 0's spill is queued; releasing it cancels the write and
        # returns the parked lease to the arena.
        assert off.stats.demotions == 1
        off.release(_tid(0))
        assert off.stats.cancelled_demotions == 1
    finally:
        gate.set()
    assert sched.drain(10)
    _assert_arena_exact(off)
    off.shutdown()
    assert off.arena.stats().leaked == 0


def test_demotion_forward_promotion_adopts_lease_zero_copy(tmp_path, sched):
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2 * DATA.nbytes)
    off.set_scheduler(sched)
    gate = _hold_workers(sched)
    try:
        for i in range(3):
            off.store(_tid(i), DATA + i)
        assert off.stats.demotions == 1
        # Free room, then re-read the queued victim: the parked buffer
        # (and its lease) re-enter the CPU tier without an SSD round trip.
        off.release(_tid(1))
        loaded = off.load(_tid(0), DATA.shape, DATA.dtype)
        np.testing.assert_array_equal(loaded, DATA)
        assert off.stats.promotions == 1
        assert off.stats.cancelled_demotions == 1
        assert off.tier_of(_tid(0)) is Tier.CPU
    finally:
        gate.set()
    assert sched.drain(10)
    _assert_arena_exact(off)
    off.shutdown()
    assert off.arena.stats().leaked == 0


def test_failed_demotion_reinstates_lease_with_exact_books(tmp_path, sched):
    """PR 4's failover chaos path, re-run under arena accounting: a
    demotion write hitting a dead SSD reinstates the parked buffer (and
    its lease) into the CPU tier — nothing leaks, nothing double-frees."""
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2 * DATA.nbytes)
    off.set_scheduler(sched)
    inject_faults(off, FaultPlan.dead(after_ops=0))
    for i in range(4):
        off.store(_tid(i), DATA + i)
    assert sched.drain(10)
    assert off.ssd_dead
    assert off.stats.failovers >= 1
    _assert_arena_exact(off)
    for i in range(4):  # every tensor survived, bit-exact, via the pool
        np.testing.assert_array_equal(
            off.load(_tid(i), DATA.shape, DATA.dtype), DATA + i
        )
    off.shutdown()
    stats = off.arena.stats()
    assert stats.outstanding == 0
    assert stats.leaked == 0


# ----------------------------------------------------- property: no leaks
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["store", "load", "release", "restore", "watermark"]),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=40,
)


@settings(deadline=None, max_examples=25)
@given(_OPS)
def test_arena_leases_always_reconcile(ops):
    """Random store/load/release/re-store/watermark interleavings over
    the tiered hierarchy: after a drain the arena books must balance —
    ``leased == released + outstanding``, every outstanding lease a live
    resident or parked spill, and shutdown returns everything."""
    import tempfile

    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    with tempfile.TemporaryDirectory() as tmp:
        off = TieredOffloader(tmp, cpu_pool_bytes=3 * DATA.nbytes)
        off.set_scheduler(sched)
        stored = set()
        try:
            for op, i in ops:
                if op in ("store", "restore"):
                    off.store(_tid(i), DATA + i)
                    stored.add(i)
                elif op == "load" and i in stored:
                    np.testing.assert_array_equal(
                        off.load(_tid(i), DATA.shape, DATA.dtype), DATA + i
                    )
                elif op == "release" and i in stored:
                    off.release(_tid(i))
                    stored.discard(i)
                elif op == "watermark":
                    off.set_free_watermark(2 * DATA.nbytes)
                    off.apply_watermark()
            assert sched.drain(10)
            _assert_arena_exact(off)
            assert sched.stats.leased_requests == sched.stats.leases_released
            off.shutdown()
            stats = off.arena.stats()
            assert stats.outstanding == 0
            assert stats.leaked == 0
        finally:
            sched.shutdown()
