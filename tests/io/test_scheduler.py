"""Tests for the priority-aware I/O scheduler.

Covers the three tentpole behaviours end to end at the scheduler level:
priority inversion (a blocking load queued behind N stores completes
first), the store-cancellation race (PENDING cancels, RUNNING does not),
and coalesced-store accounting (adjacent small stores run as one batch
and land in one chunk).
"""

import threading
import time

import numpy as np
import pytest

from repro.io import ChunkedTensorStore, IORequest, IOScheduler, Priority
from repro.io.aio import JobState


def _req(fn, kind="store", priority=Priority.STORE, nbytes=0, tid="t", lane="ssd"):
    return IORequest(
        fn, kind=kind, priority=priority, tensor_id=tid, nbytes=nbytes, lane=lane
    )


def _block_workers(sched, gate, n=2, lane="ssd"):
    """Park ``n`` workers on ``gate`` so later submissions stay queued.

    The gate jobs are blocking loads: they dequeue first and — unlike
    zero-byte stores — can never be coalesced into a batch with the
    requests under test.
    """
    for _ in range(n):
        sched.submit(
            _req(gate.wait, kind="load", priority=Priority.BLOCKING_LOAD, lane=lane)
        )
    time.sleep(0.05)  # let the workers claim the gates


def make_scheduler(**kwargs):
    kwargs.setdefault("num_store_workers", 1)
    kwargs.setdefault("num_load_workers", 1)
    return IOScheduler(**kwargs)


def test_validation():
    with pytest.raises(ValueError):
        IOScheduler(num_store_workers=0)
    with pytest.raises(ValueError):
        IOScheduler(lanes=())
    with pytest.raises(ValueError):
        IOScheduler(coalesce_bytes=-1)
    with pytest.raises(ValueError):
        _req(lambda: None, kind="compact")
    sched = make_scheduler()
    with pytest.raises(ValueError):
        sched.submit(_req(lambda: None, lane="tape"))
    sched.shutdown()


def test_executes_and_drains():
    sched = make_scheduler()
    done = []
    for i in range(8):
        sched.submit(_req(lambda i=i: done.append(i)))
    assert sched.drain(5)
    assert sorted(done) == list(range(8))
    assert sched.pending() == 0
    assert sched.stats.executed == 8
    sched.shutdown()
    with pytest.raises(RuntimeError):
        sched.submit(_req(lambda: None))


# ------------------------------------------------------------------- priority
def test_priority_inversion_blocking_load_overtakes_stores():
    order = []
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    # Occupy both workers so subsequent submissions stay queued.
    _block_workers(sched, gate)
    for i in range(6):
        sched.submit(_req(lambda i=i: order.append(f"s{i}"), nbytes=64, tid=f"s{i}"))
    load = sched.submit(
        _req(
            lambda: order.append("load"),
            kind="load",
            priority=Priority.BLOCKING_LOAD,
            tid="hot",
        )
    )
    gate.set()
    assert sched.drain(5)
    # The blocking load was submitted last but ran before every queued
    # store (priority dequeue), instead of after all of them (FIFO).
    assert order[0] == "load"
    assert load.state is JobState.DONE
    sched.shutdown()


def test_fifo_mode_preserves_submission_order():
    order = []
    gate = threading.Event()
    sched = IOScheduler(
        num_store_workers=1, num_load_workers=1, lanes=("ssd",), fifo=True
    )
    _block_workers(sched, gate)
    for i in range(6):
        sched.submit(_req(lambda i=i: order.append(f"s{i}"), tid=f"s{i}"))
    sched.submit(
        _req(lambda: order.append("load"), kind="load", priority=Priority.BLOCKING_LOAD)
    )
    gate.set()
    assert sched.drain(5)
    assert order[-1] == "load"  # FIFO: the load waits out the backlog
    sched.shutdown()


def test_priority_scheduler_cuts_blocking_load_latency_vs_fifo():
    """The acceptance metric at the scheduler level: same bandwidth
    (same per-op sleep), same backlog — strictly lower load latency."""

    def run(fifo):
        gate = threading.Event()
        # coalesce_bytes=0 isolates the variable under test: with
        # batching on, one worker drains the whole store backlog as a
        # batch and frees the other for the load even in FIFO mode.
        sched = IOScheduler(
            num_store_workers=1,
            num_load_workers=1,
            lanes=("ssd",),
            fifo=fifo,
            coalesce_bytes=0,
        )
        _block_workers(sched, gate)
        for i in range(6):
            sched.submit(_req(lambda: time.sleep(0.02), tid=f"s{i}"))
        t0 = time.monotonic()
        load = sched.submit(
            _req(lambda: None, kind="load", priority=Priority.BLOCKING_LOAD)
        )
        gate.set()
        assert load.wait(5)
        latency = time.monotonic() - t0
        sched.shutdown()
        return latency

    fifo_latency = run(fifo=True)     # waits behind 6 x 20 ms of stores
    priority_latency = run(fifo=False)  # overtakes the whole backlog
    assert priority_latency < fifo_latency
    assert fifo_latency >= 0.05  # sanity: the backlog was real


# --------------------------------------------------------------- cancellation
def test_cancel_pending_store_never_runs():
    ran = []
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    victim = sched.submit(_req(lambda: ran.append("victim"), nbytes=128, tid="v"))
    assert sched.cancel(victim)
    assert victim.state is JobState.CANCELLED
    assert victim.done_event.is_set()
    gate.set()
    assert sched.drain(5)
    assert ran == []  # the cancelled store never touched the backend
    assert sched.stats.cancelled == 1
    assert sched.stats.cancelled_stores == 1
    assert sched.stats.cancelled_bytes == 128
    sched.shutdown()


def test_cancel_running_store_fails():
    started = threading.Event()
    release = threading.Event()
    sched = make_scheduler()

    def slow_store():
        started.set()
        release.wait(5)

    job = sched.submit(_req(slow_store))
    assert started.wait(5)
    assert not sched.cancel(job)  # RUNNING: the write is already in flight
    release.set()
    assert job.wait(5)
    assert job.state is JobState.DONE
    assert sched.stats.cancelled == 0
    sched.shutdown()


def test_cancelled_request_fires_done_callback():
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    seen = []
    job = sched.submit(_req(lambda: None))
    job.add_done_callback(lambda j: seen.append(j.state))
    sched.cancel(job)
    gate.set()
    sched.drain(5)
    assert seen == [JobState.CANCELLED]
    sched.shutdown()


# ------------------------------------------------------------------ promotion
def test_promote_pending_prefetch_overtakes_stores():
    order = []
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    # Demotions sit between loads and stores: a pending prefetch behind a
    # demotion overtakes it once promoted to the blocking class.
    sched.submit(_req(lambda: order.append("demote"), kind="demote", priority=Priority.DEMOTION))
    prefetch = sched.submit(
        _req(lambda: order.append("load"), kind="load", priority=Priority.PREFETCH_LOAD)
    )
    assert sched.promote(prefetch)
    assert prefetch.priority is Priority.BLOCKING_LOAD
    assert sched.stats.promotions == 1
    gate.set()
    assert sched.drain(5)
    assert order == ["load", "demote"]
    sched.shutdown()


def test_promote_noops():
    sched = make_scheduler()
    assert not sched.promote(None)
    job = sched.submit(_req(lambda: None, kind="load", priority=Priority.PREFETCH_LOAD))
    job.wait(5)
    assert not sched.promote(job)  # already finished
    blocking = _req(lambda: None, kind="load", priority=Priority.BLOCKING_LOAD)
    assert not sched.promote(blocking)  # already at the top class
    sched.shutdown()
    fifo = IOScheduler(num_store_workers=1, num_load_workers=1, fifo=True)
    pending = _req(lambda: None, kind="load", priority=Priority.PREFETCH_LOAD)
    assert not fifo.promote(pending)  # FIFO mode ignores priority
    fifo.shutdown()


# ----------------------------------------------------------------- coalescing
def test_small_stores_coalesce_into_one_chunk(tmp_path):
    """Adjacent small stores drain as one batch; with a chunked backend
    they land in one chunk file instead of one write each."""
    store = ChunkedTensorStore(tmp_path / "chunks", chunk_bytes=1 << 20)
    gate = threading.Event()
    sched = IOScheduler(
        num_store_workers=1,
        num_load_workers=1,
        lanes=("ssd",),
        coalesce_bytes=1 << 20,
    )
    _block_workers(sched, gate)
    data = np.ones((256,), dtype=np.float32)  # 1 KiB each
    for i in range(16):
        sched.submit(
            _req(
                lambda i=i: store.write(f"t{i}", data),
                nbytes=data.nbytes,
                tid=f"t{i}",
            )
        )
    gate.set()
    assert sched.drain(5)
    store.flush()
    assert sched.stats.coalesced_batches >= 1
    assert sched.stats.coalesced_requests >= 8
    # 16 tensors, one open chunk: a single physical write on flush.
    assert store.write_count == 1
    sched.shutdown()
    store.clear()


def test_oversized_store_runs_alone(tmp_path):
    gate = threading.Event()
    sched = IOScheduler(
        num_store_workers=1, num_load_workers=1, lanes=("ssd",), coalesce_bytes=1024
    )
    _block_workers(sched, gate)
    sched.submit(_req(lambda: None, nbytes=4096))  # > coalesce_bytes
    sched.submit(_req(lambda: None, nbytes=4096))
    gate.set()
    assert sched.drain(5)
    assert sched.stats.coalesced_batches == 0
    sched.shutdown()


def test_coalescing_disabled():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, coalesce_bytes=0)
    for i in range(8):
        sched.submit(_req(lambda: None, nbytes=16, tid=f"t{i}"))
    sched.drain(5)
    assert sched.stats.coalesced_batches == 0
    sched.shutdown()


# -------------------------------------------------------------------- lanes
def test_lanes_are_independent():
    """A store backlog on the SSD lane never delays the CPU lane."""
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    _block_workers(sched, gate)
    cpu_done = threading.Event()
    sched.submit(_req(cpu_done.set, lane="cpu"))
    assert cpu_done.wait(2)  # ran while the SSD lane was still gated
    assert sched.pending("cpu") == 0
    assert sched.pending("ssd") == 2
    gate.set()
    assert sched.drain(5)
    sched.shutdown()


def test_submitted_by_class_accounting():
    sched = make_scheduler()
    sched.submit(_req(lambda: None, kind="store", priority=Priority.STORE))
    sched.submit(_req(lambda: None, kind="load", priority=Priority.PREFETCH_LOAD))
    sched.submit(_req(lambda: None, kind="load", priority=Priority.BLOCKING_LOAD))
    sched.drain(5)
    assert sched.stats.submitted == 3
    assert sched.stats.submitted_by_class == {
        "STORE": 1,
        "PREFETCH_LOAD": 1,
        "BLOCKING_LOAD": 1,
    }
    sched.shutdown()
