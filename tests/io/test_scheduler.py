"""Tests for the priority-aware I/O scheduler.

Covers the three tentpole behaviours end to end at the scheduler level:
priority inversion (a blocking load queued behind N stores completes
first), the store-cancellation race (PENDING cancels, RUNNING does not),
and coalesced-store accounting (adjacent small stores run as one batch
and land in one chunk).
"""

import threading
import time

import numpy as np
import pytest

from repro.io import ChunkedTensorStore, IORequest, IOScheduler, Priority
from repro.io.aio import JobState


def _req(fn, kind="store", priority=Priority.STORE, nbytes=0, tid="t", lane="ssd"):
    return IORequest(
        fn, kind=kind, priority=priority, tensor_id=tid, nbytes=nbytes, lane=lane
    )


def _block_workers(sched, gate, n=2, lane="ssd"):
    """Park ``n`` workers on ``gate`` so later submissions stay queued.

    The gate jobs are blocking loads: they dequeue first and — unlike
    zero-byte stores — can never be coalesced into a batch with the
    requests under test.  The barrier returns only once every gate job
    is claimed by a worker (no timing guess; a stuck scheduler trips the
    barrier timeout loudly instead of flaking).
    """
    barrier = threading.Barrier(n + 1)

    def hold():
        barrier.wait(5)
        gate.wait(5)

    for _ in range(n):
        sched.submit(
            _req(hold, kind="load", priority=Priority.BLOCKING_LOAD, lane=lane)
        )
    barrier.wait(5)  # every worker is now inside a gate job


def make_scheduler(**kwargs):
    kwargs.setdefault("num_store_workers", 1)
    kwargs.setdefault("num_load_workers", 1)
    return IOScheduler(**kwargs)


def test_validation():
    with pytest.raises(ValueError):
        IOScheduler(num_store_workers=0)
    with pytest.raises(ValueError):
        IOScheduler(lanes=())
    with pytest.raises(ValueError):
        IOScheduler(coalesce_bytes=-1)
    with pytest.raises(ValueError):
        _req(lambda: None, kind="compact")
    sched = make_scheduler()
    with pytest.raises(ValueError):
        sched.submit(_req(lambda: None, lane="tape"))
    sched.shutdown()


def test_executes_and_drains():
    sched = make_scheduler()
    done = []
    for i in range(8):
        sched.submit(_req(lambda i=i: done.append(i)))
    assert sched.drain(5)
    assert sorted(done) == list(range(8))
    assert sched.pending() == 0
    assert sched.stats.executed == 8
    sched.shutdown()
    with pytest.raises(RuntimeError):
        sched.submit(_req(lambda: None))


# ------------------------------------------------------------------- priority
def test_priority_inversion_blocking_load_overtakes_stores():
    order = []
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    # Occupy both workers so subsequent submissions stay queued.
    _block_workers(sched, gate)
    for i in range(6):
        sched.submit(_req(lambda i=i: order.append(f"s{i}"), nbytes=64, tid=f"s{i}"))
    load = sched.submit(
        _req(
            lambda: order.append("load"),
            kind="load",
            priority=Priority.BLOCKING_LOAD,
            tid="hot",
        )
    )
    gate.set()
    assert sched.drain(5)
    # The blocking load was submitted last but ran before every queued
    # store (priority dequeue), instead of after all of them (FIFO).
    assert order[0] == "load"
    assert load.state is JobState.DONE
    sched.shutdown()


def test_fifo_mode_preserves_submission_order():
    order = []
    gate = threading.Event()
    sched = IOScheduler(
        num_store_workers=1, num_load_workers=1, lanes=("ssd",), fifo=True
    )
    _block_workers(sched, gate)
    for i in range(6):
        sched.submit(_req(lambda i=i: order.append(f"s{i}"), tid=f"s{i}"))
    sched.submit(
        _req(lambda: order.append("load"), kind="load", priority=Priority.BLOCKING_LOAD)
    )
    gate.set()
    assert sched.drain(5)
    assert order[-1] == "load"  # FIFO: the load waits out the backlog
    sched.shutdown()


def test_priority_scheduler_cuts_blocking_load_latency_vs_fifo():
    """The acceptance metric at the scheduler level: same bandwidth
    (same per-op sleep), same backlog — strictly lower load latency."""

    def run(fifo):
        gate = threading.Event()
        # coalesce_bytes=0 isolates the variable under test: with
        # batching on, one worker drains the whole store backlog as a
        # batch and frees the other for the load even in FIFO mode.
        sched = IOScheduler(
            num_store_workers=1,
            num_load_workers=1,
            lanes=("ssd",),
            fifo=fifo,
            coalesce_bytes=0,
        )
        _block_workers(sched, gate)
        for i in range(6):
            sched.submit(_req(lambda: time.sleep(0.02), tid=f"s{i}"))
        t0 = time.monotonic()
        load = sched.submit(
            _req(lambda: None, kind="load", priority=Priority.BLOCKING_LOAD)
        )
        gate.set()
        assert load.wait(5)
        latency = time.monotonic() - t0
        sched.shutdown()
        return latency

    fifo_latency = run(fifo=True)     # waits behind 6 x 20 ms of stores
    priority_latency = run(fifo=False)  # overtakes the whole backlog
    assert priority_latency < fifo_latency
    assert fifo_latency >= 0.05  # sanity: the backlog was real


# --------------------------------------------------------------- cancellation
def test_cancel_pending_store_never_runs():
    ran = []
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    victim = sched.submit(_req(lambda: ran.append("victim"), nbytes=128, tid="v"))
    assert sched.cancel(victim)
    assert victim.state is JobState.CANCELLED
    assert victim.done_event.is_set()
    gate.set()
    assert sched.drain(5)
    assert ran == []  # the cancelled store never touched the backend
    assert sched.stats.cancelled == 1
    assert sched.stats.cancelled_stores == 1
    assert sched.stats.cancelled_bytes == 128
    sched.shutdown()


def test_cancel_running_store_fails():
    started = threading.Event()
    release = threading.Event()
    sched = make_scheduler()

    def slow_store():
        started.set()
        release.wait(5)

    job = sched.submit(_req(slow_store))
    assert started.wait(5)
    assert not sched.cancel(job)  # RUNNING: the write is already in flight
    release.set()
    assert job.wait(5)
    assert job.state is JobState.DONE
    assert sched.stats.cancelled == 0
    sched.shutdown()


def test_cancelled_request_fires_done_callback():
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    seen = []
    job = sched.submit(_req(lambda: None))
    job.add_done_callback(lambda j: seen.append(j.state))
    sched.cancel(job)
    gate.set()
    sched.drain(5)
    assert seen == [JobState.CANCELLED]
    sched.shutdown()


# ------------------------------------------------------------------ promotion
def test_promote_pending_prefetch_overtakes_stores():
    order = []
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    # Demotions sit between loads and stores: a pending prefetch behind a
    # demotion overtakes it once promoted to the blocking class.
    sched.submit(_req(lambda: order.append("demote"), kind="demote", priority=Priority.DEMOTION))
    prefetch = sched.submit(
        _req(lambda: order.append("load"), kind="load", priority=Priority.PREFETCH_LOAD)
    )
    assert sched.promote(prefetch)
    assert prefetch.priority is Priority.BLOCKING_LOAD
    assert sched.stats.promotions == 1
    gate.set()
    assert sched.drain(5)
    assert order == ["load", "demote"]
    sched.shutdown()


def test_promote_noops():
    sched = make_scheduler()
    assert not sched.promote(None)
    job = sched.submit(_req(lambda: None, kind="load", priority=Priority.PREFETCH_LOAD))
    job.wait(5)
    assert not sched.promote(job)  # already finished
    blocking = _req(lambda: None, kind="load", priority=Priority.BLOCKING_LOAD)
    assert not sched.promote(blocking)  # already at the top class
    sched.shutdown()
    fifo = IOScheduler(num_store_workers=1, num_load_workers=1, fifo=True)
    pending = _req(lambda: None, kind="load", priority=Priority.PREFETCH_LOAD)
    assert not fifo.promote(pending)  # FIFO mode ignores priority
    fifo.shutdown()


# ----------------------------------------------------------------- coalescing
def test_small_stores_coalesce_into_one_chunk(tmp_path):
    """Adjacent small stores drain as one batch; with a chunked backend
    they land in one chunk file instead of one write each."""
    store = ChunkedTensorStore(tmp_path / "chunks", chunk_bytes=1 << 20)
    gate = threading.Event()
    sched = IOScheduler(
        num_store_workers=1,
        num_load_workers=1,
        lanes=("ssd",),
        coalesce_bytes=1 << 20,
    )
    _block_workers(sched, gate)
    data = np.ones((256,), dtype=np.float32)  # 1 KiB each
    for i in range(16):
        sched.submit(
            _req(
                lambda i=i: store.write(f"t{i}", data),
                nbytes=data.nbytes,
                tid=f"t{i}",
            )
        )
    gate.set()
    assert sched.drain(5)
    store.flush()
    assert sched.stats.coalesced_batches >= 1
    assert sched.stats.coalesced_requests >= 8
    # 16 tensors, one open chunk: a single physical write on flush.
    assert store.write_count == 1
    sched.shutdown()
    store.clear()


def test_oversized_store_runs_alone(tmp_path):
    gate = threading.Event()
    sched = IOScheduler(
        num_store_workers=1, num_load_workers=1, lanes=("ssd",), coalesce_bytes=1024
    )
    _block_workers(sched, gate)
    sched.submit(_req(lambda: None, nbytes=4096))  # > coalesce_bytes
    sched.submit(_req(lambda: None, nbytes=4096))
    gate.set()
    assert sched.drain(5)
    assert sched.stats.coalesced_batches == 0
    sched.shutdown()


def test_coalescing_disabled():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, coalesce_bytes=0)
    for i in range(8):
        sched.submit(_req(lambda: None, nbytes=16, tid=f"t{i}"))
    sched.drain(5)
    assert sched.stats.coalesced_batches == 0
    sched.shutdown()


# -------------------------------------------------------------------- lanes
def test_lanes_are_independent():
    """A store backlog on the SSD lane never delays the CPU lane."""
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    _block_workers(sched, gate)
    cpu_done = threading.Event()
    sched.submit(_req(cpu_done.set, lane="cpu"))
    assert cpu_done.wait(2)  # ran while the SSD lane was still gated
    assert sched.pending("cpu") == 0
    assert sched.pending("ssd") == 2
    gate.set()
    assert sched.drain(5)
    sched.shutdown()


def test_submitted_by_class_accounting():
    sched = make_scheduler()
    sched.submit(_req(lambda: None, kind="store", priority=Priority.STORE))
    sched.submit(_req(lambda: None, kind="load", priority=Priority.PREFETCH_LOAD))
    sched.submit(_req(lambda: None, kind="load", priority=Priority.BLOCKING_LOAD))
    sched.drain(5)
    assert sched.stats.submitted == 3
    assert sched.stats.submitted_by_class == {
        "STORE": 1,
        "PREFETCH_LOAD": 1,
        "BLOCKING_LOAD": 1,
    }
    sched.shutdown()


# ------------------------------------------------ coalescing x cancellation
def test_cancelled_batch_member_not_counted_as_coalesced():
    """Regression: a store claimed into a coalesced batch can still lose
    claim() to a concurrent cancel before the worker reaches it.  Booking
    the batch at pop time counted that member as coalesced work that
    never ran; accounting must follow claim()."""
    head_started = threading.Event()
    head_gate = threading.Event()
    gate = threading.Event()
    ran = []
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)

    def head_fn():
        head_started.set()
        head_gate.wait(5)
        ran.append("head")

    head = sched.submit(_req(head_fn, nbytes=64, tid="head"))
    victim = sched.submit(_req(lambda: ran.append("victim"), nbytes=128, tid="victim"))
    tail = sched.submit(_req(lambda: ran.append("tail"), nbytes=32, tid="tail"))
    gate.set()  # one worker pops the whole batch, blocks inside the head
    assert head_started.wait(5)
    # The batch is popped; the victim is claimed into it but not yet
    # claim()ed — the cancel must win and un-count it.
    assert sched.cancel(victim)
    head_gate.set()
    assert sched.drain(5)
    assert sorted(ran) == ["head", "tail"]
    assert victim.state is JobState.CANCELLED
    assert sched.stats.coalesced_batches == 1
    assert sched.stats.coalesced_requests == 1  # only the tail ran behind the head
    assert sched.stats.coalesced_bytes == 32
    assert sched.stats.cancelled_stores == 1
    assert head.state is JobState.DONE and tail.state is JobState.DONE
    sched.shutdown()


def test_batch_of_one_survivor_counts_no_coalescing():
    """If every trailing member is cancelled before the worker reaches
    it, the batch degenerates to a single store — zero coalescing."""
    head_started = threading.Event()
    head_gate = threading.Event()
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)

    def head_fn():
        head_started.set()
        head_gate.wait(5)

    sched.submit(_req(head_fn, nbytes=64, tid="head"))
    trailing = [sched.submit(_req(lambda: None, nbytes=16, tid=f"t{i}")) for i in range(3)]
    gate.set()
    assert head_started.wait(5)
    for req in trailing:
        assert sched.cancel(req)
    head_gate.set()
    assert sched.drain(5)
    assert sched.stats.coalesced_batches == 0
    assert sched.stats.coalesced_requests == 0
    assert sched.stats.coalesced_bytes == 0
    assert sched.stats.cancelled == 3
    sched.shutdown()


# --------------------------------------------------------------- stale entries
def test_promoted_request_stale_heap_entry_runs_once():
    """Promotion re-pushes the request, leaving a stale heap entry; the
    dequeue must skip the duplicate so the request executes exactly once."""
    gate = threading.Event()
    ran = []
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    prefetch = sched.submit(
        _req(lambda: ran.append("load"), kind="load", priority=Priority.PREFETCH_LOAD)
    )
    sched.submit(_req(lambda: ran.append("store"), nbytes=64))
    assert sched.promote(prefetch)
    gate.set()
    assert sched.drain(5)
    assert sorted(ran) == ["load", "store"]  # no double execution
    assert sched.stats.executed == 4  # 2 gates + load + store, stale skipped
    assert sched.stats.submitted == 4
    sched.shutdown()


def test_stale_entry_skipped_inside_batch_scan():
    """A promoted store's stale entry sits at the heap top while the
    (still PENDING) request was already popped as the batch head: the
    batch scan must drop the stale duplicate and keep coalescing."""
    gate = threading.Event()
    ran = []
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    head = sched.submit(_req(lambda: ran.append("head"), nbytes=64, tid="head"))
    sched.submit(_req(lambda: ran.append("b"), nbytes=16, tid="b"))
    sched.submit(_req(lambda: ran.append("c"), nbytes=16, tid="c"))
    # Raise the head one class (store -> demotion): its new entry pops
    # first and its stale STORE-priority entry is next at the heap top
    # during the batch scan, while the request is still PENDING.
    assert sched.promote(head, Priority.DEMOTION)
    gate.set()
    assert sched.drain(5)
    assert sorted(ran) == ["b", "c", "head"]
    assert ran[0] == "head"  # promoted: ran before the plain stores
    assert sched.stats.coalesced_batches == 1
    assert sched.stats.coalesced_requests == 2
    assert sched.stats.promotions == 1
    sched.shutdown()


# ------------------------------------------------------------------- drain
def test_drain_timeout_expires_with_work_in_flight():
    gate = threading.Event()
    sched = make_scheduler()
    sched.submit(_req(gate.wait, nbytes=8))
    t0 = time.monotonic()
    assert not sched.drain(timeout=0.2)
    assert time.monotonic() - t0 >= 0.2
    assert sched.pending() == 1
    gate.set()
    assert sched.drain(5)
    assert sched.pending() == 0
    sched.shutdown()


def test_drain_zero_timeout_on_busy_scheduler():
    gate = threading.Event()
    sched = make_scheduler()
    sched.submit(_req(gate.wait))
    assert not sched.drain(timeout=0)
    gate.set()
    assert sched.drain(5)
    sched.shutdown()


# ---------------------------------------------------------------- shutdown
def test_shutdown_under_load_stress():
    """Shutdown racing a storm of submitters from several threads: every
    accepted request reaches a terminal state, the workers exit, and
    late submitters get a clean RuntimeError instead of a hang."""
    sched = IOScheduler(num_store_workers=2, num_load_workers=2)
    accepted = []
    accepted_lock = threading.Lock()
    rejections = []

    backlog = threading.Event()

    def submitter(lane):
        for i in range(100):
            try:
                req = sched.submit(
                    _req(lambda: time.sleep(0.0005), nbytes=16, tid=f"{lane}{i}", lane=lane)
                )
            except RuntimeError:
                rejections.append(1)
                return
            with accepted_lock:
                accepted.append(req)
                if len(accepted) >= 40:
                    backlog.set()  # a real backlog exists; shutdown may race

    threads = [
        threading.Thread(target=submitter, args=(lane,))
        for lane in ("ssd", "cpu", "ssd", "cpu")
    ]
    for t in threads:
        t.start()
    assert backlog.wait(5)  # shutdown races live submitters, not an empty queue
    sched.shutdown()
    for t in threads:
        t.join(timeout=5)
        assert not t.is_alive()
    for worker in sched._workers:
        assert not worker.is_alive()
    assert all(req.done_event.is_set() for req in accepted)
    assert sched.pending() == 0
    with pytest.raises(RuntimeError):
        sched.submit(_req(lambda: None))
    sched.shutdown()  # idempotent


def test_concurrent_shutdown_calls_are_idempotent():
    sched = make_scheduler()
    for i in range(16):
        sched.submit(_req(lambda: time.sleep(0.001), tid=f"t{i}"))
    threads = [threading.Thread(target=sched.shutdown) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
        assert not t.is_alive()
    assert sched.stats.executed == 16


# ------------------------------------------------------ completion telemetry
def test_consume_completion_stats_windows():
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    sched.submit(_req(lambda: time.sleep(0.002), nbytes=1024, tid="w"))
    sched.submit(
        _req(lambda: time.sleep(0.002), kind="load", priority=Priority.BLOCKING_LOAD,
             nbytes=2048, tid="r")
    )
    sched.submit(_req(lambda: None, kind="demote", priority=Priority.DEMOTION,
                      nbytes=256, tid="d"))
    sched.submit(_req(lambda: None, nbytes=512, tid="c", lane="cpu"))
    assert sched.drain(5)
    lanes = sched.consume_completion_stats()
    ssd_write = lanes["ssd"]["write"]
    assert ssd_write.nbytes == 1024 + 256  # stores and demotions share the channel
    assert ssd_write.count == 2
    assert ssd_write.busy_s > 0
    assert ssd_write.bandwidth_bytes_per_s() > 0
    ssd_read = lanes["ssd"]["read"]
    assert ssd_read.nbytes == 2048 and ssd_read.count == 1
    assert lanes["cpu"]["write"].nbytes == 512
    # The windows reset on consume.
    assert sched.consume_completion_stats() == {}
    sched.shutdown()


def test_cancelled_requests_never_reach_completion_stats():
    gate = threading.Event()
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, lanes=("ssd",))
    _block_workers(sched, gate)
    victim = sched.submit(_req(lambda: None, nbytes=4096, tid="v"))
    assert sched.cancel(victim)
    gate.set()
    assert sched.drain(5)
    lanes = sched.consume_completion_stats()
    assert "write" not in lanes.get("ssd", {})
    sched.shutdown()


def test_channel_window_bandwidth_none_when_idle():
    from repro.io import ChannelWindow

    assert ChannelWindow().bandwidth_bytes_per_s() is None


def test_busy_time_is_interval_union_not_per_request_sum():
    """Regression: with several workers draining one lane concurrently,
    busy_s must be the union of execution intervals — summing each
    request's wall duration would overcount the overlap and understate
    the observed bandwidth by up to the concurrency factor."""
    # coalesce_bytes=0: coalescing would drain all four on one worker
    # sequentially, which is exactly the non-overlapping case.
    sched = IOScheduler(
        num_store_workers=2, num_load_workers=2, lanes=("ssd",), coalesce_bytes=0
    )
    for i in range(4):  # 4 workers run these ~concurrently
        sched.submit(_req(lambda: time.sleep(0.05), nbytes=1024, tid=f"t{i}"))
    assert sched.drain(5)
    window = sched.consume_completion_stats()["ssd"]["write"]
    assert window.count == 4 and window.nbytes == 4096
    # Union of 4 overlapping ~50 ms intervals: well under the 200 ms a
    # per-request sum would record, and at least one interval long.
    assert 0.045 <= window.busy_s < 0.15
    sched.shutdown()
