"""Tests for GDS registration semantics and the simulated GDS lane.

Satellite of the SQ/CQ backend PR: the registry's array-identity index
(weakref expiry, ``id()``-reuse guard) and the GDS-sim routing rule —
registered storages go direct (no host bounce), everything else falls
back to the bounce-buffer staging path, like real GDS with buffers the
driver never saw allocated.
"""

import gc

import numpy as np
import pytest

from repro.io import GDSRegistry, GDSSimBackend, TensorFileStore, io_context
from repro.io.filestore import frame_payload
from repro.tensor.tensor import Tensor


def _storage(n=16):
    t = Tensor(np.arange(n, dtype=np.float32))
    return t, t.untyped_storage()


# ------------------------------------------------------------------ registry
def test_registry_array_index_follows_registration():
    registry = GDSRegistry()
    t, storage = _storage()
    assert not registry.is_array_registered(t.data)
    registry.register(storage)
    assert registry.owner_of(t.data) is storage
    assert registry.is_array_registered(t.data)
    registry.deregister(storage)
    assert registry.owner_of(t.data) is None
    assert not registry.is_array_registered(t.data)


def test_registry_register_is_idempotent():
    registry = GDSRegistry()
    _, storage = _storage()
    registry.register(storage)
    registry.register(storage)
    assert registry.register_count == 1
    registry.deregister(storage)
    registry.deregister(storage)
    assert registry.deregister_count == 1


def test_registry_weakref_expiry_clears_array_index():
    """Registration must not extend a buffer's lifetime, and a dead
    storage must disappear from the array index (no stale routing)."""
    registry = GDSRegistry()
    t, storage = _storage()
    payload = t.data
    registry.register(storage)
    del t, storage
    gc.collect()
    assert registry.owner_of(payload) is None
    assert not registry.is_array_registered(payload)
    assert registry.register_count == 1  # the audit trail survives


def test_registry_guards_against_id_reuse():
    """``owner_of`` re-checks ``.data is array``: a different array that
    happens to land on a recycled ``id()`` must not route as registered."""
    registry = GDSRegistry()
    t, storage = _storage()
    registry.register(storage)
    other = np.zeros(16, dtype=np.float32)
    assert registry.owner_of(other) is None
    # Even a bit-identical copy is a *different* allocation — real GDS
    # routes on the registered buffer, not its contents.
    assert not registry.is_array_registered(t.data.copy())


# ---------------------------------------------------------------- GDS-sim lane
@pytest.fixture
def gds_lane(tmp_path):
    backend = GDSSimBackend()
    store = TensorFileStore(tmp_path)
    ctx = backend._context_for("ssd")
    yield backend, store, ctx
    ctx.fds.close_all()


def test_gds_sim_registered_store_skips_the_bounce(gds_lane):
    backend, store, ctx = gds_lane
    t, storage = _storage(64)
    backend.registry.register(storage)
    with io_context(ctx):
        store.write("reg", t.data)
    stats = backend.lane_stats()["ssd"]
    assert stats.bounce_copies_skipped == 1
    assert stats.bounce_copies == 0
    # Zero staging leases were taken for the direct write.
    assert backend.arena.stats().leases == 0


def test_gds_sim_unregistered_buffer_falls_back_to_bounce(gds_lane):
    backend, store, ctx = gds_lane
    data = np.arange(64, dtype=np.float32)  # never registered
    with io_context(ctx):
        store.write("unreg", data)
    stats = backend.lane_stats()["ssd"]
    assert stats.bounce_copies == 1
    assert stats.bounce_copies_skipped == 0
    # The bounce staged through exactly one arena lease, then returned it.
    arena = backend.arena.stats()
    assert arena.leases == 1
    assert arena.outstanding_bytes == 0


def test_gds_sim_expired_registration_falls_back_to_bounce(gds_lane):
    """A collected storage (the weakref-expiry case) must demote its
    payload's route to the bounce path rather than crash or misroute."""
    backend, store, ctx = gds_lane
    t, storage = _storage(64)
    payload = t.data
    backend.registry.register(storage)
    del t, storage
    gc.collect()
    with io_context(ctx):
        store.write("expired", payload)
    stats = backend.lane_stats()["ssd"]
    assert stats.bounce_copies == 1
    assert stats.bounce_copies_skipped == 0


def test_gds_sim_both_routes_write_identical_frames(gds_lane):
    """Routing is a staging decision, never a data decision."""
    backend, store, ctx = gds_lane
    t, storage = _storage(64)
    backend.registry.register(storage)
    with io_context(ctx):
        store.write("reg", t.data)
        store.write("unreg", t.data.copy())
    expected = frame_payload(t.data.tobytes())
    assert store.path_for("reg").read_bytes() == expected
    assert store.path_for("unreg").read_bytes() == expected
    with io_context(ctx):
        assert np.array_equal(store.read("reg", (64,), np.float32), t.data)
        assert np.array_equal(store.read("unreg", (64,), np.float32), t.data)
