"""Tests for per-class deadlines, hedged reads, and the brownout verdict.

The watchdog's scan is public with an injectable ``now``
(:meth:`IOScheduler._watchdog_scan`), so abandon/hedge decisions are
driven deterministically here — real wall-clock stalls appear only in
the end-to-end hedging test, with generous thresholds.
"""

import threading
import time

import pytest

from repro.io import IORequest, IOScheduler, Priority
from repro.io.aio import JobState
from repro.io.errors import DeadlineExceededError, is_device_error, is_retryable
from repro.io.scheduler import LaneHealthTracker


def make_scheduler(**kwargs):
    kwargs.setdefault("num_store_workers", 1)
    kwargs.setdefault("num_load_workers", 1)
    return IOScheduler(**kwargs)


def _load(fn, **kwargs):
    kwargs.setdefault("priority", Priority.BLOCKING_LOAD)
    return IORequest(fn, kind="load", **kwargs)


# --------------------------------------------------------------- knobs


def test_deadline_validation():
    with pytest.raises(ValueError):
        IOScheduler(deadlines={"NOT_A_CLASS": 1.0})
    with pytest.raises(ValueError):
        IOScheduler(deadlines={"STORE": 0.0})
    with pytest.raises(ValueError):
        IOScheduler(hedge_delay_s=-1.0)
    with pytest.raises(ValueError):
        IOScheduler(slow_request_s=0.0)
    with pytest.raises(ValueError):
        IOScheduler(watchdog_interval_s=0.0)


def test_watchdog_thread_only_when_needed():
    plain = make_scheduler()
    try:
        assert plain._watchdog is None
    finally:
        plain.shutdown()
    armed = make_scheduler(deadlines={"STORE": 1.0})
    try:
        assert armed._watchdog is not None
        assert armed._watchdog.is_alive()
    finally:
        armed.shutdown()


def test_deadline_exceeded_is_permanent_device_error():
    err = DeadlineExceededError("stuck")
    assert not is_retryable(err)
    assert is_device_error(err)


# ----------------------------------------------------------- abandons


def test_watchdog_abandons_past_deadline():
    sched = make_scheduler(deadlines={"BLOCKING_LOAD": 0.05})
    gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5))
        sched.submit(req)
        deadline = time.monotonic() + 5
        while not req.started_at and time.monotonic() < deadline:
            time.sleep(0.001)
        assert req.started_at
        # Deterministic: drive the scan with an explicit late 'now'.
        sched._watchdog_scan(now=req.started_at + 1.0)
        assert req.wait(2)
        assert req.state is JobState.FAILED
        assert isinstance(req.error, DeadlineExceededError)
        assert sched.stats.deadline_abandons == 1
    finally:
        gate.set()
        sched.shutdown()


def test_watchdog_spares_requests_within_deadline():
    sched = make_scheduler(deadlines={"BLOCKING_LOAD": 10.0})
    gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5) and "ok")
        sched.submit(req)
        deadline = time.monotonic() + 5
        while not req.started_at and time.monotonic() < deadline:
            time.sleep(0.001)
        sched._watchdog_scan(now=req.started_at + 0.5)
        assert not req.done_event.is_set()
        gate.set()
        assert req.wait(2)
        assert req.state is JobState.DONE
        assert sched.stats.deadline_abandons == 0
    finally:
        gate.set()
        sched.shutdown()


def test_per_request_deadline_overrides_class_deadline():
    sched = make_scheduler(deadlines={"BLOCKING_LOAD": 100.0})
    gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5), deadline_s=0.01)
        sched.submit(req)
        deadline = time.monotonic() + 5
        while not req.started_at and time.monotonic() < deadline:
            time.sleep(0.001)
        sched._watchdog_scan(now=req.started_at + 0.5)
        assert req.wait(2)
        assert isinstance(req.error, DeadlineExceededError)
    finally:
        gate.set()
        sched.shutdown()


def test_late_body_outcome_discarded_after_abandon():
    """The wedged body finally returning must not flip a FAILED request."""
    sched = make_scheduler(deadlines={"BLOCKING_LOAD": 0.01})
    gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5) and "late value")
        sched.submit(req)
        deadline = time.monotonic() + 5
        while not req.started_at and time.monotonic() < deadline:
            time.sleep(0.001)
        sched._watchdog_scan(now=req.started_at + 1.0)
        assert req.wait(2)
        gate.set()  # body returns after the abandon
        sched.drain(timeout=5)
        assert req.state is JobState.FAILED
        assert req.result is None
    finally:
        gate.set()
        sched.shutdown()


# ------------------------------------------------------------- hedges


def test_hedge_first_completion_wins_and_books_stats():
    # Spare load workers: a wedged primary holds its worker for the
    # whole stall, so the hedge needs a free lane slot to run on.
    sched = make_scheduler(num_load_workers=2, hedge=True, hedge_delay_s=0.01)
    gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5) and "slow", hedge_fn=lambda: "hedged")
        sched.submit(req)
        deadline = time.monotonic() + 5
        while not req.started_at and time.monotonic() < deadline:
            time.sleep(0.001)
        sched._watchdog_scan(now=req.started_at + 1.0)
        assert req.wait(2)
        assert req.state is JobState.DONE
        assert req.result == "hedged"
        gate.set()
        sched.drain(timeout=5)
        assert sched.stats.hedges_issued == 1
        assert sched.stats.hedges_won == 1
        # Late primary outcome discarded by first-completion-wins.
        assert req.result == "hedged"
    finally:
        gate.set()
        sched.shutdown()


def test_primary_win_cancels_pending_hedge():
    # Lane workers are shared across channels, so a filler job pins the
    # second worker: the issued hedge has no free slot and is still
    # PENDING when the primary wins.
    sched = make_scheduler(hedge=True, hedge_delay_s=0.01)
    gate = threading.Event()
    filler_gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5) and "primary", hedge_fn=lambda: "hedged")
        filler = _load(lambda: filler_gate.wait(5))
        sched.submit(req)
        sched.submit(filler)
        deadline = time.monotonic() + 5
        while (
            not (req.started_at and filler.started_at)
            and time.monotonic() < deadline
        ):
            time.sleep(0.001)
        sched._watchdog_scan(now=req.started_at + 1.0)
        assert sched.stats.hedges_issued == 1
        hedge = req.hedge
        assert hedge is not None and hedge.is_hedge
        gate.set()
        assert req.wait(2)
        assert req.result == "primary"
        assert hedge.wait(2)
        assert hedge.state is JobState.CANCELLED
        filler_gate.set()
        sched.drain(timeout=5)
        assert sched.stats.hedges_won == 0
    finally:
        gate.set()
        filler_gate.set()
        sched.shutdown()


def test_at_most_one_hedge_per_request():
    sched = make_scheduler(num_load_workers=2, hedge=True, hedge_delay_s=0.01)
    gate = threading.Event()
    hedge_gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5), hedge_fn=lambda: hedge_gate.wait(5))
        sched.submit(req)
        deadline = time.monotonic() + 5
        while not req.started_at and time.monotonic() < deadline:
            time.sleep(0.001)
        late = req.started_at + 1.0
        sched._watchdog_scan(now=late)
        sched._watchdog_scan(now=late + 1.0)  # second scan: no second hedge
        assert sched.stats.hedges_issued == 1
    finally:
        gate.set()
        hedge_gate.set()
        sched.shutdown()


def test_hedge_requires_hedge_fn():
    sched = make_scheduler(num_load_workers=2, hedge=True, hedge_delay_s=0.01)
    gate = threading.Event()
    try:
        req = _load(lambda: gate.wait(5))  # no hedge_fn: opted out
        sched.submit(req)
        deadline = time.monotonic() + 5
        while not req.started_at and time.monotonic() < deadline:
            time.sleep(0.001)
        sched._watchdog_scan(now=req.started_at + 1.0)
        assert sched.stats.hedges_issued == 0
        assert req.hedge is None
    finally:
        gate.set()
        sched.shutdown()


def test_adaptive_hedge_delay():
    sched = make_scheduler(hedge=True)
    try:
        # Too few samples: conservative default.
        assert sched.hedge_delay_for("ssd") == 0.05
        with sched._stats_lock:
            from collections import deque

            window = deque(maxlen=64)
            # Healthy lane: tail ~= median -> delay ~= p99.
            window.extend([0.010] * 60 + [0.012] * 4)
            sched._load_durations["ssd"] = window
        healthy = sched.hedge_delay_for("ssd")
        assert 0.010 <= healthy <= 0.040  # capped at 4x median
        with sched._stats_lock:
            window = deque(maxlen=64)
            # Brownout: tail >> median -> the 4x-median cap wins.
            window.extend([0.010] * 32 + [0.500] * 32)
            sched._load_durations["ssd"] = window
        brown = sched.hedge_delay_for("ssd")
        assert brown == pytest.approx(4.0 * 0.5, rel=0.1) or brown <= 2.0
        # Explicit delay always wins.
        sched.hedge_delay_s = 0.123
        assert sched.hedge_delay_for("ssd") == 0.123
    finally:
        sched.shutdown()


def test_hedged_reads_cut_blocking_load_p99():
    """Deterministic A/B: with stalls injected into a minority of loads,
    hedging bounds the tail at ~hedge_delay while the unhedged run eats
    the full stall."""

    def run(hedge):
        sched = IOScheduler(
            num_store_workers=1, num_load_workers=4, hedge=hedge, hedge_delay_s=0.005
        )
        stall = 0.25
        stalled = {2, 7}
        latencies = []
        try:
            for i in range(10):
                if i in stalled:
                    body = lambda: time.sleep(stall) or i  # noqa: E731
                else:
                    body = lambda i=i: i
                req = _load(body, hedge_fn=lambda i=i: i)
                start = time.monotonic()
                sched.submit(req)
                assert req.wait(5)
                latencies.append(time.monotonic() - start)
            sched.drain(timeout=5)
            return sorted(latencies)[-1], sched.stats
        finally:
            sched.shutdown()

    p_max_plain, stats_plain = run(hedge=False)
    p_max_hedged, stats_hedged = run(hedge=True)
    assert stats_plain.hedges_issued == 0
    assert stats_hedged.hedges_issued >= 1
    assert stats_hedged.hedges_won >= 1
    assert p_max_plain >= 0.25
    assert p_max_hedged < p_max_plain


# ----------------------------------------------------- brownout verdict


def test_slow_verdict_trips_and_clears():
    tracker = LaneHealthTracker(slow_threshold_s=0.1, slow_trip=3)
    for _ in range(2):
        tracker.record_duration("ssd", 0.5)
    assert not tracker.is_slow("ssd")  # 2 < slow_trip
    tracker.record_duration("ssd", 0.5)
    assert tracker.is_slow("ssd")
    assert tracker.slow_lanes() == ("ssd",)
    # A single fast op clears the verdict: the device recovered.
    tracker.record_duration("ssd", 0.01)
    assert not tracker.is_slow("ssd")
    assert tracker.slow_lanes() == ()


def test_slow_verdict_distinct_from_dead():
    tracker = LaneHealthTracker(slow_threshold_s=0.1, slow_trip=1)
    tracker.record_duration("ssd", 1.0)
    assert tracker.is_slow("ssd")
    assert not tracker.is_dead("ssd")
    tracker.revive("ssd")
    assert not tracker.is_slow("ssd")


def test_slow_verdict_disabled_without_threshold():
    tracker = LaneHealthTracker()
    tracker.record_duration("ssd", 100.0)
    assert not tracker.is_slow("ssd")


def test_scheduler_feeds_load_durations_into_health():
    sched = make_scheduler(slow_request_s=0.01, num_load_workers=1)
    try:
        assert sched.health.slow_threshold_s == 0.01
        for _ in range(3):
            req = _load(lambda: time.sleep(0.02))
            sched.submit(req)
            assert req.wait(5)
        sched.drain(timeout=5)
        assert sched.health.is_slow("ssd")
        # Fast ops clear the brownout.
        req = _load(lambda: "fast")
        sched.submit(req)
        assert req.wait(5)
        sched.drain(timeout=5)
        assert not sched.health.is_slow("ssd")
    finally:
        sched.shutdown()


def test_mark_slow_hook():
    tracker = LaneHealthTracker(slow_threshold_s=1.0)
    tracker.mark_slow("ssd")
    assert tracker.is_slow("ssd")
