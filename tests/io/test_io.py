"""Tests for the async I/O substrate: pools, file store, GDS paths."""

import threading
import time
import warnings

import numpy as np
import pytest

from repro.device.pcie import GPU_LINK_GEN4_X16
from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB, RAID0Array
from repro.io import (
    AsyncIOPool,
    BounceBufferPath,
    ChunkedTensorStore,
    DirectGDSPath,
    GDSRegistry,
    TensorFileStore,
)
from repro.io.aio import JobState
from repro.tensor.tensor import Tensor


# ------------------------------------------------------------------ AsyncIOPool
def _pool(num_workers: int) -> AsyncIOPool:
    """Build the deprecated FIFO pool without tripping its warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return AsyncIOPool(num_workers)


def test_pool_construction_warns_deprecated():
    with pytest.warns(DeprecationWarning, match="IOScheduler"):
        pool = AsyncIOPool(1)
    pool.shutdown()


def test_pool_executes_jobs():
    pool = _pool(1)
    job = pool.submit(lambda: 42)
    assert job.wait(5)
    assert job.result == 42
    assert job.state is JobState.DONE
    pool.shutdown()


def test_pool_fifo_order_single_worker():
    pool = _pool(1)
    order = []
    for i in range(20):
        pool.submit(lambda i=i: order.append(i))
    pool.drain(5)
    assert order == list(range(20))
    pool.shutdown()


def test_pool_error_captured_not_raised():
    pool = _pool(1)

    def boom():
        raise ValueError("io error")

    job = pool.submit(boom)
    job.wait(5)
    assert job.state is JobState.FAILED
    assert isinstance(job.error, ValueError)
    pool.shutdown()


def test_pool_done_callback_fires():
    pool = _pool(1)
    fired = threading.Event()
    job = pool.submit(lambda: 1)
    job.add_done_callback(lambda j: fired.set())
    assert fired.wait(5)
    pool.shutdown()


def test_pool_done_callback_after_completion_runs_immediately():
    pool = _pool(1)
    job = pool.submit(lambda: 1)
    job.wait(5)
    fired = []
    job.add_done_callback(lambda j: fired.append(1))
    assert fired == [1]
    pool.shutdown()


def test_pool_drops_closure_after_run():
    """The job must not pin the stored tensor after completion (GPU memory
    is reclaimed by refcount once the store finishes)."""
    pool = _pool(1)
    job = pool.submit(lambda: None)
    job.wait(5)
    assert job.fn is None
    pool.shutdown()


def test_pool_pending_and_drain():
    pool = _pool(1)
    release = threading.Event()
    pool.submit(release.wait)
    pool.submit(lambda: 1)
    assert pool.pending == 2
    release.set()
    assert pool.drain(5)
    assert pool.pending == 0
    pool.shutdown()


def test_pool_shutdown_rejects_new_work():
    pool = _pool(1)
    pool.shutdown()
    with pytest.raises(RuntimeError):
        pool.submit(lambda: 1)


def test_pool_validation():
    with pytest.raises(ValueError):
        AsyncIOPool(0)


# --------------------------------------------------------------- TensorFileStore
def test_filestore_roundtrip(tmp_path):
    store = TensorFileStore(tmp_path)
    data = np.random.default_rng(0).standard_normal((4, 5)).astype(np.float32)
    store.write("t1", data)
    back = store.read("t1", (4, 5), np.float32)
    assert np.array_equal(back, data)


def test_filestore_roundtrip_fp16(tmp_path):
    store = TensorFileStore(tmp_path)
    data = np.ones((8,), dtype=np.float16)
    store.write("t2", data)
    assert store.read("t2", (8,), np.float16).dtype == np.float16


def test_filestore_missing_tensor(tmp_path):
    store = TensorFileStore(tmp_path)
    with pytest.raises(FileNotFoundError):
        store.read("nope", (1,), np.float32)


def test_filestore_stats(tmp_path):
    store = TensorFileStore(tmp_path)
    data = np.zeros(16, dtype=np.float32)
    store.write("a", data)
    store.read("a", (16,), np.float32)
    assert store.bytes_written == 64
    assert store.bytes_read == 64
    assert store.write_count == store.read_count == 1
    store.reset_stats()
    assert store.bytes_written == 0


def test_filestore_throttle_slows_io(tmp_path):
    data = np.zeros(25000, dtype=np.float32)  # 100 KB
    slow = TensorFileStore(tmp_path / "slow", throttle_bytes_per_s=1e6)
    start = time.monotonic()
    slow.write("x", data)
    assert time.monotonic() - start >= 0.09


def test_filestore_charges_ssd_array(tmp_path):
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=2)
    store = TensorFileStore(tmp_path, array=array)
    store.write("w", np.zeros(100, dtype=np.float32))
    assert array.host_bytes_written == 400


def test_filestore_delete_and_clear(tmp_path):
    store = TensorFileStore(tmp_path)
    store.write("a", np.zeros(4, dtype=np.float32))
    store.write("b", np.zeros(4, dtype=np.float32))
    store.delete("a")
    store.delete("a")  # idempotent
    assert not store.path_for("a").exists()
    store.clear()
    assert not store.path_for("b").exists()


# ----------------------------------------------------------- ChunkedTensorStore
def test_chunkstore_roundtrip(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=256)
    data = np.random.default_rng(0).standard_normal((4, 5)).astype(np.float32)
    store.write("t1", data)
    assert np.array_equal(store.read("t1", (4, 5), np.float32), data)


def test_chunkstore_serves_open_chunk_from_memory(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=1 << 20)
    data = np.arange(8, dtype=np.float16)
    store.write("t1", data)
    # Nothing flushed yet: zero physical writes, read still succeeds.
    assert store.write_count == 0
    assert store.num_chunks == 0
    back = store.read("t1", (8,), np.float16)
    assert back.dtype == np.float16 and np.array_equal(back, data)


def test_chunkstore_coalesces_many_small_writes(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=1024)
    data = np.zeros(64, dtype=np.float32)  # 256 B each, 4 per chunk
    for i in range(16):
        store.write(f"t{i}", data)
    assert store.write_count == 4  # 16 tensors -> 4 chunk files
    assert store.bytes_written == 16 * 256
    for i in range(16):
        assert np.array_equal(store.read(f"t{i}", (64,), np.float32), data)


def test_chunkstore_oversized_tensor_flushes_immediately(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=128)
    big = np.arange(256, dtype=np.float32)  # 1 KiB > chunk_bytes
    store.write("big", big)
    assert store.write_count == 1
    assert np.array_equal(store.read("big", (256,), np.float32), big)


def test_chunkstore_refcount_reclaims_chunk(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=512)
    data = np.zeros(64, dtype=np.float32)  # 256 B: two tensors fill a chunk
    store.write("a", data)
    store.write("b", data)
    assert store.num_chunks == 1
    chunk_path = store.path_for("a")
    assert chunk_path.exists()
    store.delete("a")
    assert chunk_path.exists()  # "b" still pins the chunk
    assert store.reclaimed_bytes == 0
    store.delete("b")
    assert not chunk_path.exists()  # refcount hit zero -> space reclaimed
    assert store.reclaimed_bytes == 512
    assert store.num_chunks == 0
    store.delete("b")  # idempotent


def test_chunkstore_delete_open_entry_never_writes(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=1 << 20)
    store.write("a", np.zeros(4, dtype=np.float32))
    store.delete("a")
    store.flush()
    assert store.write_count == 0
    assert list(tmp_path.glob("*.bin")) == []


def test_chunkstore_dead_bytes_accounting(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=512)
    data = np.zeros(64, dtype=np.float32)  # 256 B
    store.write("a", data)
    store.write("b", data)  # flushes a 512 B chunk
    store.write("c", data)  # open chunk
    assert store.dead_bytes == 0
    store.delete("a")  # hole inside the live flushed chunk
    assert store.dead_bytes == 256
    store.delete("c")  # open-chunk hole -> buffer dropped entirely
    assert store.dead_bytes == 256
    store.delete("b")  # chunk refcount 0 -> file reclaimed, hole gone
    assert store.dead_bytes == 0
    assert store.reclaimed_bytes == 512


def test_chunkstore_overwrite_replaces_bytes(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=256)
    store.write("a", np.zeros(64, dtype=np.float32))
    store.write("a", np.ones(64, dtype=np.float32))
    assert store.read("a", (64,), np.float32)[0] == 1.0


def test_chunkstore_missing_tensor(tmp_path):
    store = ChunkedTensorStore(tmp_path)
    with pytest.raises(FileNotFoundError):
        store.read("nope", (1,), np.float32)


def test_chunkstore_charges_ssd_array(tmp_path):
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=2)
    store = ChunkedTensorStore(tmp_path, chunk_bytes=256, array=array)
    store.write("w", np.zeros(100, dtype=np.float32))  # 400 B -> flushes
    assert array.host_bytes_written == 400


def test_chunkstore_clear_removes_chunks(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=128)
    for i in range(4):
        store.write(f"t{i}", np.zeros(64, dtype=np.float32))
    assert store.num_chunks > 0
    store.clear()
    assert store.num_chunks == 0
    assert list(tmp_path.glob("*.bin")) == []


def test_chunkstore_validation(tmp_path):
    with pytest.raises(ValueError):
        ChunkedTensorStore(tmp_path, chunk_bytes=0)
    with pytest.raises(ValueError):
        ChunkedTensorStore(tmp_path, throttle_bytes_per_s=0)


# ------------------------------------------------------------------------- GDS
def test_gds_registry_weak_membership():
    registry = GDSRegistry()
    t = Tensor(np.zeros(4, dtype=np.float32))
    registry.register(t.untyped_storage())
    assert registry.is_registered(t.untyped_storage())
    registry.deregister(t.untyped_storage())
    assert not registry.is_registered(t.untyped_storage())


def test_gds_registry_does_not_pin_storage():
    import gc

    registry = GDSRegistry()
    t = Tensor(np.zeros(4, dtype=np.float32))
    registry.register(t.untyped_storage())
    del t
    gc.collect()
    # WeakSet drops the entry; no way to query directly, but register_count
    # stays (audit trail).
    assert registry.register_count == 1


def test_direct_path_bounded_by_slower_hop():
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=4)
    path = DirectGDSPath(GPU_LINK_GEN4_X16, array)
    assert path.write_bandwidth() == pytest.approx(
        min(GPU_LINK_GEN4_X16.bandwidth, array.write_bw)
    )
    assert path.write_time(0) == 0.0
    assert path.read_time(10**9) > 0


def test_bounce_path_slower_than_direct():
    """The motivation for GDS: the CPU bounce buffer path loses bandwidth."""
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=4)
    direct = DirectGDSPath(GPU_LINK_GEN4_X16, array)
    bounce = BounceBufferPath(GPU_LINK_GEN4_X16, array, host_contention=0.6)
    assert bounce.write_bandwidth() < direct.write_bandwidth()
    assert bounce.write_time(10**9) > direct.write_time(10**9)


def test_bounce_serialized_worse_than_double_buffered():
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=4)
    buffered = BounceBufferPath(GPU_LINK_GEN4_X16, array, double_buffered=True)
    serialized = BounceBufferPath(GPU_LINK_GEN4_X16, array, double_buffered=False)
    assert serialized.write_bandwidth() < buffered.write_bandwidth()


def test_bounce_validation():
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=1)
    with pytest.raises(ValueError):
        BounceBufferPath(GPU_LINK_GEN4_X16, array, host_contention=0.0)
