"""Durable chunk store: manifest replay, exact books, GC, write-leveling.

The service-mode durability contract (docs/architecture.md §11): a
durable :class:`ChunkedTensorStore` survives any process death — clean
close, hard drop, or a torn final journal record — and a fresh store on
the same root replays to the *exact* prior state: every live tensor
bit-exact, every byte book identical.
"""

import numpy as np
import pytest

from repro.io.chunkstore import ChunkedTensorStore
from repro.io.manifest import frame_record, read_journal
from repro.io.uring import FDTable, IOContext, io_context

CHUNK = 4096
ELEMS = 256  # 1 KiB float32 => 4 tensors per chunk


def _tensor(i):
    return np.random.default_rng(i).standard_normal(ELEMS).astype(np.float32)


def _fill(store, n, prefix="t"):
    for i in range(n):
        store.write(f"{prefix}{i}_{ELEMS}", _tensor(i))
    store.flush()


def _books(store):
    return {
        "bytes_written": store.bytes_written,
        "reclaimed_bytes": store.reclaimed_bytes,
        "dead_bytes": store.dead_bytes,
        "gc_runs": store.gc_runs,
        "gc_bytes_rewritten": store.gc_bytes_rewritten,
        "gc_reclaimed_dead_bytes": store.gc_reclaimed_dead_bytes,
        "root_bytes_written": store.root_bytes_written,
        "write_count": store.write_count,
    }


# ------------------------------------------------------------------ replay
def test_replay_serves_every_live_tensor_bit_exact(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 12)
    store.delete(f"t3_{ELEMS}")
    store.delete(f"t7_{ELEMS}")
    store.close()

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert reopened.manifest_records_replayed > 0
    assert not reopened.replay_was_torn
    assert sorted(reopened.tensor_ids()) == sorted(
        f"t{i}_{ELEMS}" for i in range(12) if i not in (3, 7)
    )
    for i in (0, 1, 2, 4, 5, 6, 8, 9, 10, 11):
        assert np.array_equal(
            reopened.read(f"t{i}_{ELEMS}", (ELEMS,), np.float32), _tensor(i)
        )
    with pytest.raises(FileNotFoundError):
        reopened.read(f"t3_{ELEMS}", (ELEMS,), np.float32)
    reopened.close()


def test_hard_drop_without_close_replays_flushed_state(tmp_path):
    """The crash case: the store object is dropped mid-life (no close);
    everything flushed is replayable, only the open chunk is lost."""
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 8)
    store.write(f"open_{ELEMS}", _tensor(99))  # buffered, never flushed
    del store  # hard drop: no close, no flush

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert not reopened.replay_was_torn
    for i in range(8):
        assert np.array_equal(
            reopened.read(f"t{i}_{ELEMS}", (ELEMS,), np.float32), _tensor(i)
        )
    with pytest.raises(FileNotFoundError):
        reopened.read(f"open_{ELEMS}", (ELEMS,), np.float32)
    reopened.close()


def test_exact_books_survive_close_reopen(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 16)
    for i in range(0, 16, 2):
        store.delete(f"t{i}_{ELEMS}")  # half-dead chunks + no full reclaim
    store.compact(max_dead_ratio=0.5)
    store.close()
    books = _books(store)
    assert books["gc_runs"] > 0  # the scenario exercised every book

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert _books(reopened) == books
    reopened.close()


def test_torn_final_record_is_skipped_not_fatal(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 4)
    store.close()
    intact, torn = read_journal(store.manifest_path)
    assert not torn
    # Simulate a crash mid-append: half a delete record at the tail.
    with open(store.manifest_path, "ab") as fh:
        fh.write(frame_record({"op": "delete", "tid": f"t0_{ELEMS}"})[:-5])

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert reopened.replay_was_torn
    assert reopened.manifest_records_replayed == len(intact)
    # The torn delete never happened: t0 is still live and bit-exact.
    assert np.array_equal(
        reopened.read(f"t0_{ELEMS}", (ELEMS,), np.float32), _tensor(0)
    )
    reopened.close()


def test_clear_reconciliation_survives_replay(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 8)
    written = store.bytes_written
    store.clear()
    assert store.reclaimed_bytes == written  # every flushed byte booked
    assert store.dead_bytes == 0
    assert store.tensor_ids() == ()
    store.close()

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert reopened.tensor_ids() == ()
    assert reopened.reclaimed_bytes == written
    assert reopened.dead_bytes == 0
    assert reopened.bytes_written == written
    reopened.close()


# ------------------------------------------------------------------ chunk ids
def test_chunk_ids_continue_after_replay_no_path_reuse(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 8)
    store.close()
    old_paths = {p.name for p in tmp_path.glob("chunk*.bin")}

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(reopened, 8, prefix="u")
    new_paths = {p.name for p in reopened.root.glob("chunk*.bin")} - old_paths
    # New chunks landed at fresh ids: a descriptor cached against an old
    # chunk path can never alias a new chunk's bytes.
    assert new_paths and all(
        int(name[len("chunk") : -len(".bin")])
        > max(int(n[len("chunk") : -len(".bin")]) for n in old_paths)
        for name in new_paths
    )
    reopened.close()


def test_orphan_chunks_are_swept_on_replay(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 4)
    store.close()
    # A chunk file written just before a crash, whose journal record
    # never landed: replay must remove it, not resurrect it.
    orphan = tmp_path / "chunk9000.bin"
    orphan.write_bytes(b"\x00" * 128)

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert not orphan.exists()
    assert not reopened.replay_was_torn
    reopened.close()


# --------------------------------------------------------------- compaction
def test_compaction_books_and_bit_exact_migration(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 8)  # 2 chunks of 4 tensors
    for i in (0, 1, 4, 5):
        store.delete(f"t{i}_{ELEMS}")  # both chunks half-dead
    dead = store.dead_bytes
    written_before = store.bytes_written

    reclaimed = store.compact(max_dead_ratio=0.5)
    assert reclaimed == dead
    assert store.dead_bytes == 0
    assert store.gc_runs == 2
    assert store.gc_reclaimed_dead_bytes == dead
    # The rewrite is charged as write amplification, and the books
    # balance: every byte ever written is either on disk or reclaimed.
    assert store.gc_bytes_rewritten == dead  # live half == dead half here
    assert store.bytes_written == written_before + store.gc_bytes_rewritten
    on_disk = sum(p.stat().st_size for p in tmp_path.glob("chunk*.bin"))
    assert store.bytes_written == on_disk + store.reclaimed_bytes

    for i in (2, 3, 6, 7):
        assert np.array_equal(
            store.read(f"t{i}_{ELEMS}", (ELEMS,), np.float32), _tensor(i)
        )
    store.close()

    reopened = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert _books(reopened) == _books(store)
    for i in (2, 3, 6, 7):
        assert np.array_equal(
            reopened.read(f"t{i}_{ELEMS}", (ELEMS,), np.float32), _tensor(i)
        )
    reopened.close()


def test_compaction_threshold_and_validation(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    _fill(store, 4)  # one chunk, fully live
    assert store.compact() == 0  # nothing dead, nothing to do
    store.delete(f"t0_{ELEMS}")  # 25% dead: below the default threshold
    assert store.compact() == 0
    assert store.compact(max_dead_ratio=0.25) > 0  # opt-in lower bar
    with pytest.raises(ValueError):
        store.compact(max_dead_ratio=0.0)
    with pytest.raises(ValueError):
        store.compact(max_dead_ratio=1.5)
    store.close()


# ------------------------------------------------------------- write-leveling
def test_write_leveling_spreads_chunks_across_roots(tmp_path):
    roots = [tmp_path / "nvme1", tmp_path / "nvme2"]
    store = ChunkedTensorStore(
        tmp_path / "nvme0", chunk_bytes=CHUNK, durable=True, roots=roots
    )
    _fill(store, 24)  # 6 chunks across 3 equal roots
    per_root = store.root_bytes_written
    assert len(per_root) == 3 and all(b > 0 for b in per_root)
    assert max(per_root) - min(per_root) <= CHUNK  # leveled within one chunk
    store.close()

    # Replay restores placement: every tensor readable from whichever
    # root its chunk landed on, and the per-root wear books survive.
    reopened = ChunkedTensorStore(
        tmp_path / "nvme0", chunk_bytes=CHUNK, durable=True, roots=roots
    )
    assert reopened.root_bytes_written == per_root
    for i in range(24):
        assert np.array_equal(
            reopened.read(f"t{i}_{ELEMS}", (ELEMS,), np.float32), _tensor(i)
        )
    reopened.close()


def test_single_root_layout_unchanged_by_leveling(tmp_path):
    """Ties break to root 0: without extra roots the durable store's
    on-disk layout is byte-identical to the pre-leveling behavior."""
    a = ChunkedTensorStore(tmp_path / "a", chunk_bytes=CHUNK)
    b = ChunkedTensorStore(tmp_path / "b", chunk_bytes=CHUNK, durable=True)
    _fill(a, 8)
    _fill(b, 8)
    a_chunks = sorted(p.name for p in (tmp_path / "a").glob("chunk*.bin"))
    b_chunks = sorted(p.name for p in (tmp_path / "b").glob("chunk*.bin"))
    assert a_chunks == b_chunks
    for name in a_chunks:
        assert (tmp_path / "a" / name).read_bytes() == (
            tmp_path / "b" / name
        ).read_bytes()
    a.clear()
    b.close()


# ----------------------------------------------------- FD-table invalidation
def _uring_ctx():
    return IOContext(fds=FDTable(), lane="ssd", arena=None, gds=None)


def test_delete_then_read_misses_under_uring(tmp_path):
    """Regression: a chunk unlinked by refcount-zero delete must drop
    its cached descriptor — a stale fd would serve the deleted inode."""
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    ctx = _uring_ctx()
    with io_context(ctx):
        _fill(store, 4)  # exactly one flushed chunk
        path = store.path_for(f"t0_{ELEMS}")
        store.read(f"t0_{ELEMS}", (ELEMS,), np.float32)  # caches a read fd
        for i in range(4):
            store.delete(f"t{i}_{ELEMS}")  # refcount 0 -> unlink
        assert not path.exists()
        with pytest.raises(FileNotFoundError):
            store.read(f"t0_{ELEMS}", (ELEMS,), np.float32)
    # The unlink invalidated the cached descriptor, so the table cannot
    # resurrect the deleted file either.
    with pytest.raises(FileNotFoundError):
        ctx.fds.acquire_read(str(path))
    ctx.fds.close_all()
    store.close()


def test_compaction_invalidates_every_attached_table(tmp_path):
    """A service restart swaps backends; the unlink must invalidate the
    *old* generation's FD table too, not just the current driver's."""
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    old_gen, new_gen = _uring_ctx(), _uring_ctx()
    with io_context(old_gen):
        _fill(store, 4)
        victim = store.path_for(f"t0_{ELEMS}")
        store.read(f"t0_{ELEMS}", (ELEMS,), np.float32)
    with io_context(new_gen):
        store.read(f"t1_{ELEMS}", (ELEMS,), np.float32)
        for i in (0, 1):
            store.delete(f"t{i}_{ELEMS}")
        assert store.compact(max_dead_ratio=0.5) > 0
    assert not victim.exists()
    for table in (old_gen.fds, new_gen.fds):
        with pytest.raises(FileNotFoundError):
            table.acquire_read(str(victim))
        table.close_all()
    # Survivors migrated intact through the compaction.
    for i in (2, 3):
        assert np.array_equal(
            store.read(f"t{i}_{ELEMS}", (ELEMS,), np.float32), _tensor(i)
        )
    store.close()


# ------------------------------------------------------------------ lifecycle
def test_close_is_idempotent_and_keeps_data(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK, durable=True)
    assert store.persistent
    _fill(store, 4)
    store.close()
    store.close()
    assert store.closed
    assert list(tmp_path.glob("chunk*.bin")) and store.manifest_path.exists()


def test_non_durable_store_has_no_manifest(tmp_path):
    store = ChunkedTensorStore(tmp_path, chunk_bytes=CHUNK)
    assert not store.persistent
    _fill(store, 4)
    store.close()  # just a flush for the volatile store
    assert not store.manifest_path.exists()
    store.clear()
    assert not list(tmp_path.glob("chunk*.bin"))
