"""Tests for the online adaptive offload controller and its plumbing:
the EWMA estimators, the budget/window/watermark sizing, the policy and
tiered-pool mutation APIs, the cache's stats feed, and the end-to-end
trainer hookup (budget installed live, numerics untouched)."""

import numpy as np
import pytest

from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.core.adaptive import WorkloadProfile, choose_offload_budget
from repro.core.autotune import (
    EWMA,
    AutotuneController,
    ControllerConfig,
    ControllerDecision,
    StepObservation,
)
from repro.core.ids import TensorID
from repro.core.policy import Tier
from repro.core.tiered import TieredOffloader
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.models import GPT
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer

GB = 1024**3


def _obs(write_bw=6e9, read_bw=7e9, fwd=0.5, bwd=1.0, act=8 * GB, stall=0.0,
         tensors=64, **kw):
    """A synthetic steady-state observation at the given bandwidths."""
    write_bytes = int(write_bw * 0.4)  # 0.4 s of channel-busy writing
    read_bytes = int(read_bw * 0.4)
    return StepObservation(
        forward_time_s=fwd,
        backward_time_s=bwd,
        activation_bytes=act,
        write_bytes=write_bytes,
        write_busy_s=0.4,
        read_bytes=read_bytes,
        read_busy_s=0.4 if read_bw > 0 else 0.0,
        read_count=tensors if read_bw > 0 else 0,
        stored_tensors=tensors,
        stored_bytes=write_bytes,
        stall_time_s=stall,
        **kw,
    )


# ------------------------------------------------------------------------ EWMA
def test_ewma_validation():
    with pytest.raises(ValueError):
        EWMA(0)
    with pytest.raises(ValueError):
        EWMA(1.5)


def test_ewma_first_sample_unbiased():
    est = EWMA(0.3)
    assert est.value is None
    assert est.update(10.0) == 10.0


def test_ewma_tracks_step_change_within_five_updates():
    est = EWMA(0.5)
    est.update(100.0)
    for _ in range(5):
        est.update(50.0)
    assert abs(est.value - 50.0) / 50.0 < 0.05


# ------------------------------------------------------------------ controller
def test_controller_budget_matches_formula_on_steady_state():
    ctrl = AutotuneController()
    decision = ctrl.observe(_obs())
    assert decision.retuned
    expected = choose_offload_budget(
        WorkloadProfile(8 * GB, 0.5, 1.0), 6e9, 7e9,
        safety_factor=ctrl.config.safety_factor,
    )
    assert decision.offload_budget_bytes == expected
    assert ctrl.installed_budget_bytes == expected


def test_controller_hysteresis_skips_noise():
    ctrl = AutotuneController()
    first = ctrl.observe(_obs(write_bw=6e9))
    assert first.retuned
    # 2% bandwidth wobble: inside the 5% hysteresis band, no re-install.
    second = ctrl.observe(_obs(write_bw=6.12e9))
    assert not second.retuned
    assert second.offload_budget_bytes == first.offload_budget_bytes


def test_controller_converges_to_halved_bandwidth_within_five_steps():
    ctrl = AutotuneController()
    for _ in range(4):
        ctrl.observe(_obs(write_bw=6e9))
    before = ctrl.installed_budget_bytes
    for _ in range(5):
        decision = ctrl.observe(_obs(write_bw=3e9))
    oracle = choose_offload_budget(
        WorkloadProfile(8 * GB, 0.5, 1.0), 3e9, 7e9,
        safety_factor=ctrl.config.safety_factor,
    )
    assert decision.offload_budget_bytes < 0.6 * before
    assert abs(decision.offload_budget_bytes - oracle) / oracle < 0.1


def test_controller_requires_write_signal_before_retuning():
    ctrl = AutotuneController()
    decision = ctrl.observe(
        StepObservation(forward_time_s=0.5, backward_time_s=1.0, activation_bytes=GB)
    )
    assert not decision.retuned
    assert decision.offload_budget_bytes is None


def test_stall_trims_budget_and_recovery_probes_back():
    cfg = ControllerConfig(recover_patience=1)
    ctrl = AutotuneController(cfg)
    clean = ctrl.observe(_obs()).offload_budget_bytes
    stalled = ctrl.observe(_obs(stall=0.5)).offload_budget_bytes  # 33% of compute
    assert stalled < clean
    more = ctrl.observe(_obs(stall=0.5)).offload_budget_bytes
    assert more < stalled  # multiplicative decrease while stalling
    # Two clean steps beyond patience: the budget probes back up, but
    # never past the formula value.
    ctrl.observe(_obs())
    ctrl.observe(_obs())
    recovered = ctrl.observe(_obs()).offload_budget_bytes
    assert more < recovered <= clean


def test_io_failures_trim_budget_like_stall():
    cfg = ControllerConfig(recover_patience=1)
    ctrl = AutotuneController(cfg)
    clean = ctrl.observe(_obs()).offload_budget_bytes
    flaky = ctrl.observe(_obs(io_failures=3)).offload_budget_bytes
    assert flaky < clean  # a flaky device earns a smaller budget
    ctrl.observe(_obs())
    ctrl.observe(_obs())
    recovered = ctrl.observe(_obs()).offload_budget_bytes
    assert flaky < recovered <= clean


def test_dead_lane_floors_backoff():
    ctrl = AutotuneController()
    ctrl.observe(_obs())
    dead = ctrl.observe(_obs(dead_lanes=("ssd",)))
    assert ctrl._backoff == ctrl.config.min_backoff
    assert dead.offload_budget_bytes <= int(
        ctrl.config.min_backoff
        * choose_offload_budget(
            WorkloadProfile(8 * GB, 0.5, 1.0), 6e9, 7e9,
            safety_factor=ctrl.config.safety_factor,
        )
    ) + 1


def test_adapter_feeds_lane_health_into_observation(gpu, tmp_path):
    """on_step_end drains the scheduler's failure window and dead-lane
    set; a dead write lane floors the installed budget."""
    cache = _cache(tmp_path)
    try:
        with cache:
            for i in range(2):
                cache.pack_hook(_tensor(gpu, seed=i))
            cache.scheduler.drain(5)
        cache.scheduler.health.record_failure("ssd", permanent=True)
        controller = AutotuneController()
        controller.on_step_end(cache, forward_time_s=0.2, backward_time_s=0.3)
        assert controller._backoff == controller.config.min_backoff
        # The window was consumed: a second step sees no stale failures.
        assert cache.scheduler.health.consume_failure_window() == {}
    finally:
        cache.shutdown()


def test_prefetch_window_sizing():
    ctrl = AutotuneController()
    fast = ctrl.observe(_obs()).prefetch_window
    assert fast is not None
    cfg = ctrl.config
    assert cfg.min_prefetch_window <= fast <= cfg.max_prefetch_window
    # A slower read channel (same tensor count => higher per-load
    # latency) needs a deeper window to hide the round-trip.
    slow_ctrl = AutotuneController()
    slow = slow_ctrl.observe(_obs(read_bw=7e8)).prefetch_window
    assert slow >= fast
    # No reads observed => no basis to resize.
    blind = AutotuneController()
    assert blind.observe(_obs(read_bw=0)).prefetch_window is None


def test_watermark_sizing():
    ctrl = AutotuneController()
    no_pool = ctrl.observe(_obs())
    assert no_pool.cpu_free_watermark_bytes is None
    pooled = AutotuneController()
    decision = pooled.observe(
        _obs(cpu_stored_bytes=GB, cpu_pool_capacity_bytes=4 * GB)
    )
    assert decision.cpu_free_watermark_bytes == int(
        pooled.config.watermark_fraction * GB
    )
    # Capped at half the pool: the watermark must never evict the
    # majority of the warm set.
    capped = AutotuneController()
    decision = capped.observe(
        _obs(cpu_stored_bytes=64 * GB, cpu_pool_capacity_bytes=4 * GB)
    )
    assert decision.cpu_free_watermark_bytes == 2 * GB


# ------------------------------------------------------------- mutation APIs
def test_policy_install_budget():
    policy = OffloadPolicy(PolicyConfig(offload_budget_bytes=100))
    assert policy.install_budget(250) == 100
    assert policy.config.offload_budget_bytes == 250
    assert policy.install_budget(None) == 250
    assert policy.config.offload_budget_bytes is None
    with pytest.raises(ValueError):
        policy.install_budget(-1)


def test_tiered_watermark_demotes_lru(tmp_path):
    data = np.ones((64, 64), dtype=np.float32)
    tiered = TieredOffloader(tmp_path / "t", cpu_pool_bytes=4 * data.nbytes)
    try:
        tids = [TensorID(stamp=i, shape=(64, 64)) for i in range(4)]
        for tid in tids:
            tiered.store(tid, data)
        assert tiered.cpu_free_bytes() == 0
        tiered.set_free_watermark(2 * data.nbytes)
        assert tiered.apply_watermark() == 2
        assert tiered.cpu_free_bytes() == 2 * data.nbytes
        # The two *oldest* residents were spilled.
        assert tiered.tier_of(tids[0]) is Tier.SSD
        assert tiered.tier_of(tids[1]) is Tier.SSD
        assert tiered.tier_of(tids[2]) is Tier.CPU
        assert tiered.apply_watermark() == 0  # already satisfied
        with pytest.raises(ValueError):
            tiered.set_free_watermark(-1)
        # Clamped to capacity, not an error.
        tiered.set_free_watermark(10**12)
        assert tiered.free_watermark_bytes == tiered.cpu_capacity_bytes
    finally:
        tiered.shutdown()


# -------------------------------------------------------------- cache plumbing
def _cache(tmp_path, offloader=None):
    return TensorCache(
        offloader if offloader is not None else SSDOffloader(tmp_path / "s"),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
    )


def _tensor(gpu, seed=0):
    rng = np.random.default_rng(seed)
    from repro.tensor.tensor import Tensor

    return Tensor(
        rng.standard_normal((64, 64)).astype(np.float32), device=gpu, requires_grad=True
    )


def test_cache_consume_step_stats_deltas(gpu, tmp_path):
    cache = _cache(tmp_path)
    try:
        with cache:
            for i in range(3):
                cache.pack_hook(_tensor(gpu, seed=i))
            cache.scheduler.drain(5)
        step = cache.consume_step_stats()
        assert step.stored_tensors == 3
        assert step.stored_bytes == 3 * 64 * 64 * 4
        assert step.activation_bytes == step.stored_bytes + step.kept_bytes
        # Deltas, not cumulative: a second consume with no traffic is zero.
        again = cache.consume_step_stats()
        assert again.stored_tensors == 0 and again.stored_bytes == 0
    finally:
        cache.shutdown()


def test_cache_apply_autotune_installs_knobs(gpu, tmp_path):
    tiered = TieredOffloader(tmp_path / "t", cpu_pool_bytes=1 << 20)
    cache = _cache(tmp_path, offloader=tiered)
    try:
        decision = ControllerDecision(
            step_index=1,
            offload_budget_bytes=123456,
            retuned=True,
            prefetch_window=11,
            cpu_free_watermark_bytes=4096,
        )
        cache.apply_autotune(decision)
        assert cache.policy.config.offload_budget_bytes == 123456
        assert cache.prefetch_window == 11
        assert tiered.free_watermark_bytes == 4096
        # Not retuned: the budget stays; other knobs still land.
        cache.apply_autotune(
            ControllerDecision(step_index=2, offload_budget_bytes=None, retuned=False,
                               prefetch_window=7)
        )
        assert cache.policy.config.offload_budget_bytes == 123456
        assert cache.prefetch_window == 7
    finally:
        cache.shutdown()


def test_cache_times_unpack_stall_and_adapter_feeds_it(gpu, tmp_path):
    """The engine's stall signal: backward blocking in unpack is timed by
    the cache, subtracted from the backward window the controller sees,
    and routed into the AIMD trim (a stall-inflated window would be a
    positive feedback loop: slower SSD -> longer backward -> bigger
    budget)."""
    import threading

    offloader = SSDOffloader(tmp_path / "s")
    original_load = offloader.load
    release = threading.Event()

    def gated_load(tid, shape, dtype):
        release.wait(5)  # held open until the timer fires (no bare sleep)
        return original_load(tid, shape, dtype)

    cache = _cache(tmp_path, offloader=offloader)
    try:
        with cache:
            tid = cache.pack_hook(_tensor(gpu))
            cache.scheduler.drain(5)  # OFFLOADED: the unpack must reload
            offloader.load = gated_load
            timer = threading.Timer(0.05, release.set)
            timer.start()
            cache.unpack_hook(tid)  # blocks ~50 ms until the gate opens
            timer.join()
        wait = cache.stats.unpack_wait_s
        assert wait > 0.03
        assert cache.stats.unpack_waits == 1

        controller = AutotuneController()
        controller.on_step_end(cache, forward_time_s=0.2, backward_time_s=0.3)
        # The stall was subtracted from the backward compute window...
        assert controller.estimators.backward_s.value == pytest.approx(
            0.3 - wait, abs=1e-9
        )
        # ...and fed the trim: stall >> 2% of compute, so the budget sits
        # below the pure formula value.
        formula = choose_offload_budget(
            WorkloadProfile(
                int(controller.estimators.activation_bytes.value),
                0.2,
                0.3 - wait,
            ),
            controller.estimators.write_bw.value,
            controller.estimators.read_bw.value,
            safety_factor=controller.config.safety_factor,
        )
        assert controller.installed_budget_bytes < formula
    finally:
        cache.shutdown()


# ------------------------------------------------------------------ end to end
def _batches(gpu, config, n, seed=0):
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=config.vocab_size, seed=seed),
        batch_size=2,
        seq_len=config.seq_len,
        device=gpu,
    )
    return [loader.next_batch() for _ in range(n)]


def test_trainer_controller_requires_cache(gpu, tiny_gpt_config):
    model = GPT(tiny_gpt_config, rng=np.random.default_rng(0)).to(gpu)
    with pytest.raises(ValueError):
        Trainer(
            model, SGD(model.parameters(), lr=1e-3), gpu,
            strategy=PlacementStrategy.KEEP, controller=AutotuneController(),
        )


def test_trainer_with_controller_installs_budget_and_keeps_losses(
    gpu, tiny_gpt_config, tmp_path
):
    """The full loop against the functional engine: observed lane stats
    drive a live budget install, and — the safety property — the
    controller never changes the numerics, only the placement."""
    steps = 4

    def run(controller):
        g = type(gpu)()
        batches = _batches(g, tiny_gpt_config, steps)
        model = GPT(tiny_gpt_config, rng=np.random.default_rng(0)).to(g)
        cache = TensorCache(
            SSDOffloader(tmp_path / ("ctrl" if controller else "plain")),
            policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
        )
        trainer = Trainer(
            model, SGD(model.parameters(), lr=1e-3), g,
            strategy=PlacementStrategy.OFFLOAD, cache=cache, controller=controller,
        )
        try:
            return [trainer.train_step([b]) for b in batches]
        finally:
            trainer.close()

    controller = AutotuneController()
    tuned = run(controller)
    plain = run(None)

    assert len(controller.history) == steps
    assert all(r.autotune_decision is not None for r in tuned)
    # A budget was derived from observed bandwidth and installed live.
    assert controller.installed_budget_bytes is not None
    assert controller.installed_budget_bytes > 0
    assert tuned[-1].offload_budget_bytes == controller.installed_budget_bytes
    assert all(r.autotune_decision.write_bandwidth_bytes_per_s > 0 for r in tuned[:1])
    # Bit-identical losses with and without the controller.
    for a, b in zip(tuned, plain):
        assert a.loss == b.loss
