"""Tests for get_id() deduplication and weight exclusion (Sec. III-C1)."""

import numpy as np

from repro.core.ids import STORAGE_STAMP_KEY, TensorID, TensorIDRegistry
from repro.nn.linear import Linear
from repro.tensor.tensor import Parameter, Tensor


def test_same_tensor_same_id():
    reg = TensorIDRegistry()
    t = Tensor(np.zeros((4, 4), dtype=np.float32))
    assert reg.get_id(t) == reg.get_id(t)


def test_distinct_tensors_distinct_ids():
    reg = TensorIDRegistry()
    a = Tensor(np.zeros((4, 4), dtype=np.float32))
    b = Tensor(np.zeros((4, 4), dtype=np.float32))
    assert reg.get_id(a) != reg.get_id(b)


def test_new_tensor_object_same_storage_dedups():
    """PyTorch 'sometimes creates new torch.Tensor objects representing the
    identical tensor' — same storage + shape => same id."""
    reg = TensorIDRegistry()
    t = Tensor(np.zeros((4, 4), dtype=np.float32))
    view = t.detach()
    assert reg.get_id(t) == reg.get_id(view)


def test_transpose_shares_stamp_differs_in_shape():
    reg = TensorIDRegistry()
    t = Tensor(np.zeros((2, 6), dtype=np.float32), requires_grad=True)
    tid = reg.get_id(t)
    tid_t = reg.get_id(t.transpose(0, 1))
    assert tid.stamp == tid_t.stamp
    assert tid.shape == (2, 6) and tid_t.shape == (6, 2)


def test_id_survives_address_reuse():
    """The failure mode of native id(): a freed buffer's address can be
    reused.  Stamps are process-unique so recycled addresses never collide."""
    reg = TensorIDRegistry()
    seen = set()
    for _ in range(100):
        t = Tensor(np.zeros((64,), dtype=np.float32))
        tid = reg.get_id(t)
        assert tid not in seen
        seen.add(tid)
        del t  # buffer may be reused by the allocator next iteration


def test_stamp_attached_to_storage_metadata():
    reg = TensorIDRegistry()
    t = Tensor(np.zeros(4, dtype=np.float32))
    reg.get_id(t)
    assert STORAGE_STAMP_KEY in t.untyped_storage().metadata


def test_filename_stable_and_filesystem_safe():
    tid = TensorID(stamp=123, shape=(4, 5))
    assert tid.filename() == "t123_4x5"
    assert str(TensorID(stamp=1, shape=())) == "t1_scalar"


def test_from_filename_round_trip():
    for tid in (
        TensorID(stamp=123, shape=(4, 5)),
        TensorID(stamp=0, shape=(1,)),
        TensorID(stamp=1, shape=()),
        TensorID(stamp=2**63, shape=(7, 1, 9)),
    ):
        assert TensorID.from_filename(tid.filename()) == tid


def test_from_filename_rejects_foreign_keys():
    # A durable store directory may hold non-tensor keys; the tiered
    # rehydration path skips them instead of inventing ids.
    import pytest

    for name in ("chunk0.bin", "x123_4", "t123", "tabc_4", "t1_4xZ"):
        with pytest.raises(ValueError):
            TensorID.from_filename(name)


def test_weight_recording_excludes_param():
    reg = TensorIDRegistry()
    w = Parameter(np.zeros((3, 5), dtype=np.float32))
    assert not reg.is_weight(w)
    reg.record_weight(w)
    assert reg.is_weight(w)


def test_weight_transpose_recorded():
    """Linear layers register the transpose of weights; its id must be in
    the exclusion set and consistent across steps."""
    reg = TensorIDRegistry()
    w = Parameter(np.zeros((3, 5), dtype=np.float32))
    reg.record_weight(w)
    for _ in range(3):  # multiple "steps": same id every time
        assert reg.is_weight(w.T)


def test_non_weight_same_shape_not_excluded():
    reg = TensorIDRegistry()
    w = Parameter(np.zeros((3, 3), dtype=np.float32))
    reg.record_weight(w)
    other = Tensor(np.zeros((3, 3), dtype=np.float32))
    assert not reg.is_weight(other)


def test_record_module_weights_counts():
    reg = TensorIDRegistry()
    layer = Linear(4, 6, rng=np.random.default_rng(0))
    count = reg.record_module_weights(layer)
    assert count == 2  # weight + bias
    assert reg.is_weight(layer.weight)
    assert reg.is_weight(layer.weight.T)
    assert reg.is_weight(layer.bias)
    # weight + transposed weight + bias
    assert reg.num_weights == 3
