"""Engine lifecycle: idempotent close, context manager, and leak-freedom.

The service mode restarts engines inside one process for days; PR 9's
contract is that ``build_engine(...)`` / ``shutdown()`` cycles leak
**nothing** — no worker threads, no file descriptors — so a supervised
service's footprint is flat no matter how many times it restarts.
"""

import os
import threading

import numpy as np
import pytest

from repro.core.engine import EngineConfig, EngineStats, build_engine
from repro.core.ids import TensorID

DATA = np.arange(256, dtype=np.float32)
TID = TensorID(stamp=1, shape=(256,))


def _cycle(config):
    """One full engine life: build, touch the lazy I/O plane, shut down."""
    engine = build_engine(config)
    engine.offloader.store(TID, DATA)
    back = engine.offloader.load(TID, DATA.shape, DATA.dtype)
    assert np.array_equal(back, DATA)
    engine.shutdown()


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.parametrize(
    "config",
    [
        EngineConfig(target="cpu"),
        EngineConfig(target="ssd", store_dir="PLACEHOLDER", chunk_bytes=4096),
        EngineConfig(
            target="ssd",
            store_dir="PLACEHOLDER",
            chunk_bytes=4096,
            durable=True,
            io_backend="uring",
        ),
    ],
    ids=["cpu", "ssd-chunked", "ssd-durable-uring"],
)
def test_twenty_cycles_leak_no_threads_or_fds(tmp_path, config):
    config.store_dir = tmp_path if config.store_dir else None
    _cycle(config)  # warm-up: imports, pytest plumbing, etc.
    threads_before = threading.active_count()
    fds_before = _open_fds()
    for _ in range(20):
        _cycle(config)
    assert threading.active_count() == threads_before
    assert _open_fds() == fds_before


def test_shutdown_is_idempotent(tmp_path):
    engine = build_engine(
        EngineConfig(target="ssd", store_dir=tmp_path, chunk_bytes=4096)
    )
    engine.offloader.store(TID, DATA)
    assert not engine.closed
    engine.shutdown()
    assert engine.closed
    engine.shutdown()  # second close is a no-op, not an error
    engine.close()  # alias
    assert engine.closed


def test_engine_context_manager(tmp_path):
    with build_engine(
        EngineConfig(target="ssd", store_dir=tmp_path, chunk_bytes=4096)
    ) as engine:
        engine.offloader.store(TID, DATA)
        assert not engine.closed
    assert engine.closed


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_scheduler_and_backends_close_aliases(tmp_path):
    """Every layer of the I/O plane is a context manager with an
    idempotent ``close`` — the leak-freedom building blocks."""
    from repro.io.aio import AsyncIOPool
    from repro.io.scheduler import IOScheduler
    from repro.io.uring import UringBackend

    with IOScheduler(num_store_workers=1, num_load_workers=1) as sched:
        pass
    sched.close()  # idempotent after __exit__

    with UringBackend() as backend:
        pass
    backend.close()

    with AsyncIOPool() as pool:
        pass
    pool.close()


def test_stats_available_after_shutdown(tmp_path):
    """The service snapshots stats around restarts; a closed engine must
    still report (it no longer mutates)."""
    engine = build_engine(
        EngineConfig(
            target="ssd", store_dir=tmp_path, chunk_bytes=4096, durable=True
        )
    )
    engine.offloader.store(TID, DATA)
    engine.shutdown()
    stats = engine.stats()
    assert isinstance(stats, EngineStats)
    assert stats.endurance is not None
    assert stats.endurance.bytes_written > 0
