"""Unit tests for the offloader backends and the pinned-memory pool."""

import numpy as np
import pytest

from repro.core.ids import TensorID
from repro.core.offloader import CPUOffloader, PinnedMemoryPool, SSDOffloader
from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB, RAID0Array

TID = TensorID(stamp=42, shape=(4, 4))
DATA = np.arange(16, dtype=np.float32).reshape(4, 4)


# ---------------------------------------------------------------- SSDOffloader
def test_ssd_offloader_roundtrip(tmp_path):
    off = SSDOffloader(tmp_path)
    off.store(TID, DATA)
    back = off.load(TID, (4, 4), np.float32)
    assert np.array_equal(back, DATA)


def test_ssd_offloader_location_is_file_path(tmp_path):
    off = SSDOffloader(tmp_path)
    off.store(TID, DATA)
    assert off.location(TID).endswith("t42_4x4.bin")


def test_ssd_offloader_registers_gds(tmp_path):
    from repro.tensor.tensor import Tensor

    off = SSDOffloader(tmp_path)
    t = Tensor(DATA.copy())
    off.register_tensor(t)
    assert off.gds.is_registered(t.untyped_storage())


def test_ssd_offloader_charges_array(tmp_path):
    array = RAID0Array(INTEL_OPTANE_P5800X_1600GB, num_ssds=2)
    off = SSDOffloader(tmp_path, array=array)
    off.store(TID, DATA)
    assert array.host_bytes_written == DATA.nbytes


def test_ssd_offloader_shutdown_clears_files(tmp_path):
    off = SSDOffloader(tmp_path)
    off.store(TID, DATA)
    off.shutdown()
    assert list(off.file_store.root.glob("*.bin")) == []


# ---------------------------------------------------------------- CPUOffloader
def test_cpu_offloader_roundtrip():
    off = CPUOffloader()
    off.store(TID, DATA)
    assert np.array_equal(off.load(TID, (4, 4), np.float32), DATA)
    assert off.location(TID).startswith("pinned://")


def test_cpu_offloader_load_is_a_copy():
    off = CPUOffloader()
    off.store(TID, DATA)
    loaded = off.load(TID, (4, 4), np.float32)
    loaded[0, 0] = 99
    assert off.load(TID, (4, 4), np.float32)[0, 0] == 0


def test_cpu_offloader_missing_key():
    with pytest.raises(KeyError):
        CPUOffloader().load(TID, (4, 4), np.float32)


def test_cpu_offloader_overwrite_replaces_bytes():
    off = CPUOffloader()
    off.store(TID, DATA)
    off.store(TID, DATA + 1)
    assert off.load(TID, (4, 4), np.float32)[0, 0] == 1.0
    assert off.pool.used == DATA.nbytes  # old buffer freed


def test_cpu_offloader_evict():
    off = CPUOffloader()
    off.store(TID, DATA)
    off.evict(TID)
    assert off.pool.used == 0
    off.evict(TID)  # idempotent


def test_cpu_offloader_shutdown_frees_pool():
    off = CPUOffloader()
    off.store(TID, DATA)
    off.shutdown()
    assert off.pool.used == 0


# ------------------------------------------------------------ PinnedMemoryPool
def test_pool_watermark_and_fit():
    pool = PinnedMemoryPool()
    pool.alloc(100)
    pool.alloc(50)
    pool.free(100)
    assert pool.used == 50
    assert pool.high_watermark == 150
    capacity = pool.fit_to_high_watermark(slack=1.2)
    assert capacity == 180


def test_pool_capacity_enforced_after_fit():
    pool = PinnedMemoryPool()
    pool.alloc(100)
    pool.free(100)
    pool.fit_to_high_watermark(slack=1.0)
    pool.alloc(100)
    with pytest.raises(MemoryError):
        pool.alloc(1)


def test_pool_overfree_rejected():
    pool = PinnedMemoryPool()
    pool.alloc(10)
    with pytest.raises(ValueError):
        pool.free(11)


def test_cpu_offloader_throttle_paces_transfers():
    import time as _time

    from repro.core.ids import TensorID
    from repro.core.offloader import CPUOffloader

    data = np.ones((64, 1024), dtype=np.float32)  # 256 KiB
    fast = CPUOffloader()
    slow = CPUOffloader(throttle_bytes_per_s=2e6)  # ~130 ms for 256 KiB
    tid = TensorID(stamp=1, shape=data.shape)
    t0 = _time.monotonic()
    slow.store(tid, data)
    assert _time.monotonic() - t0 >= 0.1
    fast.store(tid, data)  # no pacing: sanity that the path still works
    with pytest.raises(ValueError):
        CPUOffloader(throttle_bytes_per_s=0)
