"""Cache-level tests of the priority I/O scheduler.

The store-cancellation race (forwarding consumes a tensor while its
store is PENDING vs RUNNING), deadline promotion of pending prefetches,
demotion cancellation in the tiered offloader, and the trace surface.
"""

import threading

import numpy as np

from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.core.policy import Tier
from repro.core.tensor_cache import RecordState
from repro.core.tiered import TieredOffloader
from repro.io import IORequest, IOScheduler, Priority
from repro.io.aio import JobState
from repro.io.trace import attach_tracer
from repro.tensor.tensor import Tensor


def _policy():
    return OffloadPolicy(PolicyConfig(min_offload_numel=64))


def _tensor(gpu, seed=0, shape=(64, 64)):
    rng = np.random.default_rng(seed)
    return Tensor(
        rng.standard_normal(shape).astype(np.float32), device=gpu, requires_grad=True
    )


def _gate_store(offloader):
    """Make every store block on the returned gate (loads unaffected).

    Also returns a semaphore released as each gated store *starts*, so
    tests wait for "a worker claimed the store" as an event instead of
    sleeping and hoping.
    """
    gate = threading.Event()
    started = threading.Semaphore(0)
    original = offloader.store

    def gated(tid, data):
        started.release()
        gate.wait(5)
        original(tid, data)

    offloader.store = gated
    return gate, started


def _gate_load(offloader):
    gate = threading.Event()
    started = threading.Semaphore(0)
    original = offloader.load

    def gated(tid, shape, dtype):
        started.release()
        gate.wait(5)
        return original(tid, shape, dtype)

    offloader.load = gated
    return gate, started


def _park_ssd_workers(sched, gate, n=2):
    """Occupy the SSD lane's workers on ``gate``; returns once every
    worker is provably inside a gate job (barrier, not a sleep)."""
    barrier = threading.Barrier(n + 1)

    def hold():
        barrier.wait(5)
        gate.wait(5)

    for _ in range(n):
        sched.submit(
            IORequest(hold, kind="load", priority=Priority.BLOCKING_LOAD, lane="ssd")
        )
    barrier.wait(5)


# --------------------------------------------------------- cancellation race
def test_forwarding_cancels_pending_store(gpu, tmp_path):
    """PENDING side of the race: the store is still queued when
    forwarding consumes the tensor — it must be cancelled and never
    reach the SSD."""
    offloader = SSDOffloader(tmp_path / "s")
    gate, started = _gate_store(offloader)
    # coalesce_bytes=0: with batching on, a worker may claim a queued
    # store behind its gated batch head, making "which store is PENDING"
    # nondeterministic — this test pins it down.
    cache = TensorCache(
        offloader,
        policy=_policy(),
        scheduler=IOScheduler(
            num_store_workers=1, num_load_workers=1, coalesce_bytes=0
        ),
    )
    try:
        with cache:
            # Two stores occupy both SSD-lane workers (blocked on the
            # gate); the third store is deterministically PENDING.
            t1, t2, t3 = (_tensor(gpu, seed=i) for i in range(3))
            tid1 = cache.pack_hook(t1)
            tid2 = cache.pack_hook(t2)
            assert started.acquire(timeout=5)  # workers claim the
            assert started.acquire(timeout=5)  # first two stores
            tid3 = cache.pack_hook(t3)

            out = cache.unpack_hook(tid3)  # forwarding hits a PENDING store
            assert out is t3
            assert cache.stats.forwarded_tensors == 1
            assert cache.stats.cancelled_stores == 1
            assert cache.stats.cancelled_store_bytes == t3.nbytes
            rec = cache._find_record(tid3)
            assert rec.state is RecordState.LOADED
            assert rec.location == "gpu"
            assert rec.tier is Tier.GPU
            assert rec.store_job.state is JobState.CANCELLED

            gate.set()
            cache.scheduler.drain(5)
            # Only the two claimed stores hit the backend.
            assert offloader.file_store.write_count == 2
            # The other two records completed normally.
            for tid in (tid1, tid2):
                r = cache._find_record(tid)
                assert r.state is RecordState.OFFLOADED
    finally:
        gate.set()
        cache.shutdown()


def test_forwarding_running_store_completes(gpu, tmp_path):
    """RUNNING side of the race: cancel must fail, the write finishes,
    and the store-done callback publishes the forwarded tensor."""
    offloader = SSDOffloader(tmp_path / "s")
    gate, started = _gate_store(offloader)
    # coalesce_bytes=0: with batching on, a worker may claim a queued
    # store behind its gated batch head, making "which store is PENDING"
    # nondeterministic — this test pins it down.
    cache = TensorCache(
        offloader,
        policy=_policy(),
        scheduler=IOScheduler(
            num_store_workers=1, num_load_workers=1, coalesce_bytes=0
        ),
    )
    try:
        with cache:
            t1 = _tensor(gpu, seed=1)
            tid1 = cache.pack_hook(t1)
            assert started.acquire(timeout=5)  # a worker claims the store: RUNNING
            rec = cache._find_record(tid1)
            assert rec.store_job.state is JobState.RUNNING

            timer = threading.Timer(0.1, gate.set)
            timer.start()
            out = cache.unpack_hook(tid1)  # blocks until the store lands
            timer.join()
            assert out is t1
            assert cache.stats.forwarded_tensors == 1
            assert cache.stats.cancelled_stores == 0  # too late to cancel
            assert rec.state is RecordState.LOADED
            cache.scheduler.drain(5)
            assert offloader.file_store.write_count == 1  # the write happened
    finally:
        gate.set()
        cache.shutdown()


# ----------------------------------------------------------------- promotion
def test_backward_arrival_promotes_pending_prefetch(gpu, tmp_path):
    offloader = SSDOffloader(tmp_path / "s")
    cache = TensorCache(
        offloader,
        policy=_policy(),
        num_store_workers=1,
        num_load_workers=1,
        prefetch_window=8,
    )
    try:
        with cache:
            tensors = [_tensor(gpu, seed=i) for i in range(3)]
            tids = [cache.pack_hook(t) for t in tensors]
            cache.scheduler.drain(5)  # all three are OFFLOADED

            gate, started = _gate_load(offloader)
            cache.on_backward_begin()  # prefetches tids[2], tids[1], tids[0]
            assert started.acquire(timeout=5)  # both lane workers are
            assert started.acquire(timeout=5)  # inside gated loads
            # Two loads run gated; the oldest is a PENDING prefetch.
            rec0 = cache._find_record(tids[0])
            assert rec0.state is RecordState.LOADING
            assert rec0.load_job.state is JobState.PENDING
            assert rec0.load_job.priority is Priority.PREFETCH_LOAD

            timer = threading.Timer(0.1, gate.set)
            timer.start()
            out = cache.unpack_hook(tids[0])  # its backward has arrived
            timer.join()
            assert np.array_equal(out.data, tensors[0].data)
            assert cache.stats.promoted_loads == 1
            assert cache.scheduler.stats.promotions == 1
            assert rec0.load_job.priority is Priority.BLOCKING_LOAD
    finally:
        cache.shutdown()


# -------------------------------------------------------- tiered cancellation
def _tid(i):
    from repro.core.ids import TensorID

    return TensorID(stamp=i, shape=(64, 64))


def test_released_victim_cancels_queued_demotion(tmp_path):
    """A demotion queued behind the gate is cancelled when its tensor is
    released first: the SSD write never happens."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    data = np.ones((64, 64), dtype=np.float32)
    tiered = TieredOffloader(tmp_path / "t", cpu_pool_bytes=data.nbytes)
    tiered.set_scheduler(sched)
    gate = threading.Event()
    _park_ssd_workers(sched, gate)
    try:
        tiered.store(_tid(1), data)          # fills the pool
        tiered.store(_tid(2), data)          # demotes tid 1 (queued spill)
        assert tiered.stats.demotions == 1
        assert tiered.tier_of(_tid(1)) is Tier.SSD
        assert "!queued" in tiered.location(_tid(1))
        assert tiered.ssd.file_store.write_count == 0

        tiered.release(_tid(1))              # the spill is now pointless
        assert tiered.stats.cancelled_demotions == 1
        gate.set()
        assert sched.drain(5)
        assert tiered.ssd.file_store.write_count == 0  # write reclaimed
    finally:
        gate.set()
        sched.shutdown()
        tiered.shutdown()


def test_load_of_queued_demotion_forwards_and_promotes(tmp_path):
    """Re-reading a victim whose spill is still queued serves the
    in-flight buffer; with pool room again, the write is cancelled and
    the tensor reinstated (promotion without an SSD round-trip)."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 64)).astype(np.float32)
    b = rng.standard_normal((64, 64)).astype(np.float32)
    tiered = TieredOffloader(tmp_path / "t", cpu_pool_bytes=a.nbytes)
    tiered.set_scheduler(sched)
    gate = threading.Event()
    _park_ssd_workers(sched, gate)
    try:
        tiered.store(_tid(1), a)
        tiered.store(_tid(2), b)             # demotes tid 1, spill queued
        tiered.release(_tid(2))              # frees the pool again

        out = tiered.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(out, a)
        assert tiered.stats.demotion_forward_hits == 1
        assert tiered.stats.cancelled_demotions == 1
        assert tiered.stats.promotions == 1
        assert tiered.tier_of(_tid(1)) is Tier.CPU
        gate.set()
        assert sched.drain(5)
        assert tiered.ssd.file_store.write_count == 0
        # Served from the pool on the next read.
        again = tiered.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(again, a)
        assert tiered.stats.cpu_hits == 1
    finally:
        gate.set()
        sched.shutdown()
        tiered.shutdown()


def test_full_pool_lets_queued_demotion_proceed(tmp_path):
    """When the pool is still full, the load serves the in-flight buffer
    but must NOT cancel the spill — the queued buffer is the only copy."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    rng = np.random.default_rng(1)
    a = rng.standard_normal((64, 64)).astype(np.float32)
    b = rng.standard_normal((64, 64)).astype(np.float32)
    tiered = TieredOffloader(tmp_path / "t", cpu_pool_bytes=a.nbytes)
    tiered.set_scheduler(sched)
    gate = threading.Event()
    _park_ssd_workers(sched, gate)
    try:
        tiered.store(_tid(1), a)
        tiered.store(_tid(2), b)             # pool now holds b; a queued
        out = tiered.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(out, a)
        assert tiered.stats.demotion_forward_hits == 1
        assert tiered.stats.cancelled_demotions == 0
        gate.set()
        assert sched.drain(5)
        assert tiered.ssd.file_store.write_count == 1  # the spill landed
        again = tiered.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(again, a)
    finally:
        gate.set()
        sched.shutdown()
        tiered.shutdown()


# -------------------------------------------------------------------- tracing
def test_trace_shows_cancellation(gpu, tmp_path):
    offloader = SSDOffloader(tmp_path / "s")
    gate, started = _gate_store(offloader)
    # coalesce_bytes=0: with batching on, a worker may claim a queued
    # store behind its gated batch head, making "which store is PENDING"
    # nondeterministic — this test pins it down.
    cache = TensorCache(
        offloader,
        policy=_policy(),
        scheduler=IOScheduler(
            num_store_workers=1, num_load_workers=1, coalesce_bytes=0
        ),
    )
    tracer = attach_tracer(cache)
    try:
        with cache:
            for i in range(3):
                cache.pack_hook(_tensor(gpu, seed=i))
            assert started.acquire(timeout=5)  # two stores claimed; the
            assert started.acquire(timeout=5)  # third is left PENDING
            tids = list(cache.current.records)
            cache.unpack_hook(tids[2])  # cancels the pending third store
            gate.set()
            cache.scheduler.drain(5)
        stats = tracer.stats()
        assert stats.cancelled_stores == 1
        assert stats.cancelled_bytes > 0
        cancel_events = [e for e in tracer.events if e.kind == "cancel"]
        assert len(cancel_events) == 1
        assert cancel_events[0].priority == "STORE"
        assert "x" in tracer.render_ascii()
    finally:
        gate.set()
        cache.shutdown()


def test_load_during_inflight_spill_write_serves_buffer(tmp_path):
    """Once the spill write has started (buffer claimed, tier lock
    released), loads of that tid are served from the in-flight buffer
    without blocking on — or blocking — the write."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    rng = np.random.default_rng(2)
    a = rng.standard_normal((64, 64)).astype(np.float32)
    b = rng.standard_normal((64, 64)).astype(np.float32)
    tiered = TieredOffloader(tmp_path / "t", cpu_pool_bytes=a.nbytes)
    tiered.set_scheduler(sched)
    write_started = threading.Event()
    write_gate = threading.Event()
    original = tiered.ssd.store

    def gated_ssd_store(tid, data):
        write_started.set()
        write_gate.wait(5)
        original(tid, data)

    tiered.ssd.store = gated_ssd_store
    try:
        tiered.store(_tid(1), a)
        tiered.store(_tid(2), b)  # demotes tid 1; spill queued
        assert write_started.wait(5)  # the lane worker is inside the write
        # Serve the read while the write is mid-flight and the pool full.
        out = tiered.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(out, a)
        assert tiered.stats.demotion_forward_hits == 1
        # An unrelated tid is not blocked by the in-flight write either.
        assert np.array_equal(
            tiered.load(_tid(2), (64, 64), np.dtype(np.float32)), b
        )
        write_gate.set()
        assert sched.drain(5)
        # The write landed; a normal SSD read works now.
        assert np.array_equal(
            tiered.load(_tid(1), (64, 64), np.dtype(np.float32)), a
        )
        # release waits for the landed write, then reclaims the file.
        tiered.release(_tid(1))
        assert tiered.ssd.file_store.read_count >= 1
    finally:
        write_gate.set()
        sched.shutdown()
        tiered.shutdown()


def test_drain_covers_cross_lane_resubmission(tmp_path):
    """drain() must not return while work spawned onto an already-checked
    lane is still pending (cpu-lane store -> ssd-lane demotion)."""
    sched = IOScheduler(num_store_workers=1, num_load_workers=1)
    data = np.ones((64, 64), dtype=np.float32)
    tiered = TieredOffloader(tmp_path / "t", cpu_pool_bytes=data.nbytes)
    tiered.set_scheduler(sched)
    try:
        # Submit the pool-overflowing store pair through the cpu lane, the
        # way the cache does, so the demotion is queued from lane work.
        r1 = IORequest(
            lambda: tiered.store(_tid(1), data), kind="store",
            priority=Priority.STORE, nbytes=data.nbytes, lane="cpu",
        )
        r2 = IORequest(
            lambda: tiered.store(_tid(2), data), kind="store",
            priority=Priority.STORE, nbytes=data.nbytes, lane="cpu",
        )
        sched.submit(r1)
        sched.submit(r2)
        assert sched.drain(5)
        # After drain, the demotion's SSD write has fully landed.
        assert sched.pending() == 0
        assert tiered.ssd.file_store.write_count == 1
    finally:
        sched.shutdown()
        tiered.shutdown()


def test_lost_forwarding_race_reload_keeps_counters_exact(gpu, tmp_path):
    """Regression: when the store finished just before forwarding could
    adopt the reference (tensor already dropped), the record falls back
    to a plain reload — the forwarding counters must NOT count that as a
    hit.  The pre-fix code incremented them before resolving the race
    and never rolled them back."""
    offloader = SSDOffloader(tmp_path / "s")
    cache = TensorCache(offloader, policy=_policy())
    try:
        with cache:
            t1 = _tensor(gpu, seed=3)
            tid1 = cache.pack_hook(t1)
            cache.scheduler.drain(5)  # store landed: OFFLOADED, tensor dropped
            rec = cache._find_record(tid1)
            assert rec.state is RecordState.CONSUMED or rec.tensor is None
            # Reconstruct the losing side of the race: the consumer read
            # OFFLOADING before the store-done callback published
            # OFFLOADED, but by the time it acts the job is done and the
            # reference is gone.
            rec.state = RecordState.OFFLOADING
            assert rec.store_job.done_event.is_set()
            assert rec.tensor is None

            out = cache.unpack_hook(tid1)  # must reload, not "forward"
            assert np.array_equal(out.data, t1.data)
            assert cache.stats.forwarded_tensors == 0
            assert cache.accounting.forwarding_hits == 0
            assert cache.stats.loaded_tensors == 1
            assert rec.forwarded is False
            assert rec.state is RecordState.LOADED
    finally:
        cache.shutdown()
