"""Engine facade: typed config validation, shim equivalence, one stats
snapshot, and the pool-deprecation regression."""

import warnings

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    EngineConfigError,
    OffloadPolicy,
    build_engine,
    make_offloader,
)
from repro.core.ids import TensorID
from repro.core.offloader import CPUOffloader, SSDOffloader
from repro.core.tiered import TieredOffloader
from repro.io.tenancy import TenantRegistry

DATA = np.arange(256, dtype=np.float32)


# -------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(target="dram"), "unknown offload target"),
        (dict(target="cpu", chunk_bytes=4096),
         "chunk_bytes applies to the ssd/tiered targets, not cpu"),
        (dict(target="ssd", store_dir="x", cpu_pool_bytes=1),
         "cpu_pool_bytes applies to the cpu/tiered targets, not ssd"),
        (dict(target="ssd"), "ssd target requires store_dir"),
        (dict(target="tiered", cpu_pool_bytes=1),
         "tiered target requires store_dir"),
        (dict(target="tiered", store_dir="x"),
         "tiered target requires cpu_pool_bytes"),
        (dict(target="cpu", cpu_pool_bytes=-1), "cpu_pool_bytes must be >= 0"),
        (dict(target="cpu", num_store_workers=0), "at least one worker"),
        (dict(target="cpu", num_load_workers=0), "at least one worker"),
        (dict(target="cpu", prefetch_window=-1), "prefetch_window must be >= 0"),
    ],
)
def test_config_validation_is_typed(kwargs, message):
    with pytest.raises(EngineConfigError, match=message):
        build_engine(EngineConfig(**kwargs))


def test_config_error_is_a_value_error():
    # The historic make_offloader contract: callers catch ValueError.
    assert issubclass(EngineConfigError, ValueError)
    with pytest.raises(ValueError, match="ssd target requires store_dir"):
        make_offloader("ssd")
    with pytest.raises(ValueError, match="unknown offload target"):
        make_offloader("dram")


# ---------------------------------------------------------- shim equivalence
def test_make_offloader_matches_build_engine_ssd(tmp_path):
    via_shim = make_offloader("ssd", store_dir=tmp_path / "a", chunk_bytes=4096)
    via_engine = build_engine(
        EngineConfig(target="ssd", store_dir=tmp_path / "b", chunk_bytes=4096)
    ).offloader
    assert type(via_shim) is type(via_engine) is SSDOffloader
    tid = TensorID(stamp=1, shape=tuple(DATA.shape))
    via_shim.store(tid, DATA)
    assert np.array_equal(via_shim.load(tid, DATA.shape, DATA.dtype), DATA)


def test_make_offloader_matches_build_engine_cpu():
    via_shim = make_offloader("cpu", cpu_pool_bytes=1 << 20)
    via_engine = build_engine(
        EngineConfig(target="cpu", cpu_pool_bytes=1 << 20)
    ).offloader
    assert type(via_shim) is type(via_engine) is CPUOffloader
    assert via_shim.pool.capacity_bytes == via_engine.pool.capacity_bytes


def test_make_offloader_matches_build_engine_tiered(tmp_path):
    policy = OffloadPolicy()
    via_shim = make_offloader(
        "tiered", store_dir=tmp_path / "a", cpu_pool_bytes=1 << 16, policy=policy
    )
    via_engine = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path / "b",
            cpu_pool_bytes=1 << 16,
            policy=policy,
        )
    ).offloader
    assert type(via_shim) is type(via_engine) is TieredOffloader
    # The shared policy is wired through both construction paths.
    assert via_shim.policy is policy
    assert via_engine.policy is policy


# ------------------------------------------------------------------ wiring
def test_engine_cache_shares_policy_and_scheduler(tmp_path):
    engine = build_engine(
        EngineConfig(target="tiered", store_dir=tmp_path, cpu_pool_bytes=1 << 16)
    )
    try:
        assert not engine.scheduler_started  # the I/O plane is lazy
        cache = engine.cache()
        assert engine.scheduler_started
        assert cache.policy is engine.policy
        assert cache.scheduler is engine.scheduler
        assert cache.offloader is engine.offloader
        assert cache.prefetch_window == engine.config.prefetch_window
        other = engine.cache(prefetch_window=3)
        assert other.scheduler is cache.scheduler
        assert other.prefetch_window == 3
    finally:
        engine.shutdown()


def test_engine_overrides_form(tmp_path):
    engine = build_engine(
        EngineConfig(target="ssd", store_dir=tmp_path), fifo_io=True
    )
    try:
        assert engine.config.fifo_io is True
        assert engine.config.target == "ssd"
    finally:
        engine.shutdown()


# ------------------------------------------------------------------- stats
def test_engine_stats_aggregates_every_plane(tmp_path):
    registry = TenantRegistry()
    registry.register("alice")
    engine = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path,
            cpu_pool_bytes=1 << 16,
            tenants=registry,
        )
    )
    try:
        snap = engine.stats()
        assert snap.target == "tiered"
        assert snap.scheduler is None  # lazy plane untouched
        assert snap.tiers is not None
        assert snap.pool is not None
        assert snap.pool.capacity_bytes == 1 << 16
        assert "alice" in snap.tenants  # registry books without a scheduler

        tid = TensorID(stamp=1, shape=tuple(DATA.shape))
        engine.offloader.store(tid, DATA)
        engine.scheduler.drain()
        snap = engine.stats()
        assert snap.scheduler is not None
        assert snap.tiers.cpu_stored_bytes >= DATA.nbytes
        assert snap.pool.used_bytes >= DATA.nbytes
        assert snap.dataplane is not None
        assert snap.arena is not None
    finally:
        engine.shutdown()


def test_stats_snapshot_is_detached(tmp_path):
    engine = build_engine(EngineConfig(target="cpu"))
    try:
        engine.scheduler  # start the I/O plane
        snap = engine.stats()
        snap.scheduler.submitted += 1000
        assert engine.stats().scheduler.submitted != snap.scheduler.submitted
    finally:
        engine.shutdown()


def test_delegating_accessors_are_views_of_stats(tmp_path):
    engine = build_engine(
        EngineConfig(target="tiered", store_dir=tmp_path, cpu_pool_bytes=1 << 16)
    )
    try:
        assert engine.pool_stats().capacity_bytes == 1 << 16
        assert engine.dataplane_stats() is not None
        assert engine.tenant_stats() == {}
        assert engine.channel_windows() == {}
    finally:
        engine.shutdown()


def test_stats_never_steals_the_controller_feed(tmp_path):
    """engine.stats() must not drain consume_completion_stats()."""
    engine = build_engine(EngineConfig(target="ssd", store_dir=tmp_path))
    try:
        cache = engine.cache()
        tid = TensorID(stamp=1, shape=tuple(DATA.shape))
        engine.offloader.store(tid, DATA)
        engine.scheduler.drain()
        engine.stats()  # peek — must leave the destructive feed intact
        del cache
    finally:
        engine.shutdown()


# -------------------------------------------------------------- deprecation
def test_store_pool_and_load_pool_deprecated(tmp_path):
    engine = build_engine(EngineConfig(target="ssd", store_dir=tmp_path))
    cache = engine.cache()
    try:
        with pytest.warns(DeprecationWarning, match="store_pool is deprecated"):
            assert cache.store_pool is cache.scheduler
        with pytest.warns(DeprecationWarning, match="load_pool is deprecated"):
            assert cache.load_pool is cache.scheduler
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.scheduler  # the replacement accessor stays silent
    finally:
        engine.shutdown()
