"""Tests for the Alg. 1 offload policy."""

from repro.core.policy import Decision, KeepReason, OffloadPolicy, PolicyConfig, StepAccounting


def _decide(policy, **overrides):
    defaults = dict(
        is_weight=False,
        is_cpu=False,
        numel=2**21,
        nbytes=2**22,
        in_backward=False,
        in_keep_scope=False,
        accounting=StepAccounting(),
    )
    defaults.update(overrides)
    return policy.decide(**defaults)


def test_weights_pass_through():
    assert _decide(OffloadPolicy(), is_weight=True) is Decision.PASS_THROUGH


def test_cpu_tensors_pass_through():
    assert _decide(OffloadPolicy(), is_cpu=True) is Decision.PASS_THROUGH


def test_small_tensors_pass_through():
    """Alg. 1 line 2: math.prod(t.size()) < 2**20 returns as-is."""
    policy = OffloadPolicy()
    assert _decide(policy, numel=2**20 - 1) is Decision.PASS_THROUGH
    assert _decide(policy, numel=2**20) is Decision.OFFLOAD


def test_backward_packs_are_kept():
    """Recomputed activations (checkpointing) must not be re-offloaded."""
    assert _decide(OffloadPolicy(), in_backward=True) is Decision.KEEP


def test_keep_scope_keeps():
    assert _decide(OffloadPolicy(), in_keep_scope=True) is Decision.KEEP


def test_budget_reached_keeps():
    policy = OffloadPolicy(PolicyConfig(offload_budget_bytes=100))
    acct = StepAccounting(offloaded_bytes=100)
    assert _decide(policy, accounting=acct) is Decision.KEEP
    acct2 = StepAccounting(offloaded_bytes=99)
    assert _decide(policy, accounting=acct2) is Decision.OFFLOAD


def test_no_budget_offloads_everything_eligible():
    policy = OffloadPolicy(PolicyConfig(offload_budget_bytes=None))
    acct = StepAccounting(offloaded_bytes=10**15)
    assert _decide(policy, accounting=acct) is Decision.OFFLOAD


def test_precedence_weight_over_keep():
    """Pass-through outranks keep: weights are never even recorded."""
    assert (
        _decide(OffloadPolicy(), is_weight=True, in_backward=True)
        is Decision.PASS_THROUGH
    )


def test_keep_reason_priority():
    policy = OffloadPolicy(PolicyConfig(offload_budget_bytes=10))
    full = StepAccounting(offloaded_bytes=10)
    assert (
        policy.keep_reason(in_backward=True, in_keep_scope=False, accounting=full)
        is KeepReason.BUDGET_REACHED
    )
    empty = StepAccounting()
    assert (
        policy.keep_reason(in_backward=True, in_keep_scope=False, accounting=empty)
        is KeepReason.IN_BACKWARD
    )
    assert (
        policy.keep_reason(in_backward=False, in_keep_scope=True, accounting=empty)
        is KeepReason.LAST_MODULE
    )


def test_accounting_reset():
    acct = StepAccounting(offloaded_bytes=5, kept_bytes=3, pack_calls=2, dedup_hits=1)
    acct.reset()
    assert acct.offloaded_bytes == 0
    assert acct.kept_bytes == 0
    assert acct.pack_calls == 0
    assert acct.dedup_hits == 0
