"""Tests for the tiered offload hierarchy (GPU -> pinned CPU -> SSD).

Covers the offloader-level mechanics (placement, demotion on pool
exhaustion, promotion on load, refcounted chunk reclaim), the policy's
tier-placement rule, the cache integration (per-record tier, forwarding
across tiers, end-to-end training equivalence), the ``make_offloader``
config factory, and the chunk-coalescing write-count win.
"""

import numpy as np
import pytest

from repro.core import (
    CPUOffloader,
    OffloadPolicy,
    PolicyConfig,
    SSDOffloader,
    TensorCache,
    Tier,
    TieredOffloader,
    make_offloader,
)
from repro.core.ids import TensorID

from tests.core.test_tensor_cache import _fresh_model, _run_model_step

DATA = np.arange(256, dtype=np.float32)  # 1 KiB


def _tid(i: int) -> TensorID:
    return TensorID(stamp=i, shape=(256,))


@pytest.fixture
def tiered(tmp_path):
    off = TieredOffloader(tmp_path / "tiers", cpu_pool_bytes=2 * DATA.nbytes)
    yield off
    off.shutdown()


# ------------------------------------------------------------------ placement
def test_policy_place_prefers_cpu_when_it_fits():
    policy = OffloadPolicy()
    assert policy.place(nbytes=100, cpu_free_bytes=1000) is Tier.CPU
    assert policy.place(nbytes=2000, cpu_free_bytes=1000) is Tier.SSD
    assert policy.place(nbytes=100, cpu_free_bytes=None) is Tier.SSD


def test_policy_place_large_tensor_bypasses_pool():
    policy = OffloadPolicy(PolicyConfig(cpu_tier_max_tensor_bytes=512))
    assert policy.place(nbytes=513, cpu_free_bytes=10_000) is Tier.SSD
    assert policy.place(nbytes=512, cpu_free_bytes=10_000) is Tier.CPU


# ------------------------------------------------------- demotion / promotion
def test_store_lands_in_cpu_until_pool_fills(tiered):
    tiered.store(_tid(1), DATA)
    tiered.store(_tid(2), DATA)
    assert tiered.tier_of(_tid(1)) is Tier.CPU
    assert tiered.tier_of(_tid(2)) is Tier.CPU
    assert tiered.pool.used == 2 * DATA.nbytes
    assert tiered.stats.demotions == 0


def test_pool_exhaustion_demotes_lru_to_ssd(tiered):
    tiered.store(_tid(1), DATA)
    tiered.store(_tid(2), DATA + 1)
    tiered.store(_tid(3), DATA + 2)  # pool full: oldest (1) spills
    assert tiered.tier_of(_tid(1)) is Tier.SSD
    assert tiered.tier_of(_tid(2)) is Tier.CPU
    assert tiered.tier_of(_tid(3)) is Tier.CPU
    assert tiered.stats.demotions == 1
    assert tiered.stats.demoted_bytes == DATA.nbytes
    # The demoted bytes survive the move intact.
    assert np.array_equal(tiered.load(_tid(1), (256,), np.float32), DATA)


def test_lru_order_follows_loads(tiered):
    tiered.store(_tid(1), DATA)
    tiered.store(_tid(2), DATA + 1)
    tiered.load(_tid(1), (256,), np.float32)  # 1 becomes most-recent
    tiered.store(_tid(3), DATA + 2)  # now 2 is the LRU victim
    assert tiered.tier_of(_tid(1)) is Tier.CPU
    assert tiered.tier_of(_tid(2)) is Tier.SSD


def test_load_promotes_ssd_tensor_when_pool_has_room(tmp_path):
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2 * DATA.nbytes)
    try:
        big = np.arange(1024, dtype=np.float32)  # 4 KiB: never fits the pool
        off.store(TensorID(stamp=9, shape=(1024,)), big)
        assert off.tier_of(TensorID(stamp=9, shape=(1024,))) is Tier.SSD

        off.store(_tid(1), DATA)
        off.demote(_tid(1))
        assert off.tier_of(_tid(1)) is Tier.SSD
        back = off.load(_tid(1), (256,), np.float32)  # prefetch: promote
        assert np.array_equal(back, DATA)
        assert off.tier_of(_tid(1)) is Tier.CPU
        assert off.stats.promotions == 1
        # Promotion moves (not copies): a second load is a pure CPU hit.
        off.load(_tid(1), (256,), np.float32)
        assert off.stats.cpu_hits >= 1
    finally:
        off.shutdown()


def test_promotion_never_demotes_the_warm_set(tmp_path):
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2 * DATA.nbytes)
    try:
        off.store(_tid(1), DATA)
        off.store(_tid(2), DATA + 1)
        off.store(_tid(3), DATA + 2)  # demotes 1 to SSD; pool full
        off.load(_tid(1), (256,), np.float32)  # no room: stays on SSD
        assert off.tier_of(_tid(1)) is Tier.SSD
        assert off.stats.promotions == 0
        assert off.tier_of(_tid(2)) is Tier.CPU
        assert off.tier_of(_tid(3)) is Tier.CPU
    finally:
        off.shutdown()


def test_release_frees_whichever_tier(tiered):
    tiered.store(_tid(1), DATA)
    tiered.store(_tid(2), DATA)
    tiered.store(_tid(3), DATA)  # 1 demoted to SSD
    tiered.release(_tid(2))
    assert tiered.pool.used == DATA.nbytes
    tiered.release(_tid(1))
    with pytest.raises((KeyError, FileNotFoundError)):
        tiered.load(_tid(1), (256,), np.float32)
    tiered.release(_tid(1))  # idempotent


def test_restore_across_tiers_drops_old_backing(tmp_path):
    """Re-storing an SSD-resident tensor into the CPU tier must release
    the SSD copy (and vice versa) — a tensor lives in exactly one tier."""
    off = TieredOffloader(tmp_path, cpu_pool_bytes=2 * DATA.nbytes)
    try:
        off.store(_tid(1), DATA)
        off.demote(_tid(1))
        ssd_path = off.ssd.file_store.path_for(_tid(1).filename())
        assert ssd_path.exists()
        off.store(_tid(1), DATA + 5)  # lands in CPU again
        assert off.tier_of(_tid(1)) is Tier.CPU
        assert not ssd_path.exists()  # old SSD copy reclaimed
        assert np.array_equal(off.load(_tid(1), (256,), np.float32), DATA + 5)

        # Same-tier CPU overwrite: frees the old bytes first, so the pool
        # neither grows nor demotes an innocent resident to make room.
        off.store(_tid(2), DATA)
        used_before = off.pool.used
        off.store(_tid(2), DATA + 7)
        assert off.pool.used == used_before
        assert off.tier_of(_tid(1)) is Tier.CPU  # no spurious demotion
        assert off.stats.demotions == 1  # only the explicit demote above
    finally:
        off.shutdown()


def test_tiered_honours_shared_policy(tmp_path):
    policy = OffloadPolicy(
        PolicyConfig(cpu_tier_max_tensor_bytes=DATA.nbytes - 1)
    )
    off = make_offloader(
        "tiered", store_dir=tmp_path, cpu_pool_bytes=8 * DATA.nbytes, policy=policy
    )
    try:
        off.store(_tid(1), DATA)  # above the cap: bypasses the pool
        assert off.tier_of(_tid(1)) is Tier.SSD
        assert off.pool.used == 0
    finally:
        off.shutdown()


def test_location_names_the_tier(tiered):
    assert tiered.location(_tid(1)).startswith("tier:gpu:")
    tiered.store(_tid(1), DATA)
    assert tiered.location(_tid(1)).startswith("tier:cpu:")
    tiered.demote(_tid(1))
    assert tiered.location(_tid(1)).startswith("tier:ssd:")


# -------------------------------------------------------------------- factory
def test_make_offloader_targets(tmp_path):
    assert isinstance(make_offloader("ssd", store_dir=tmp_path / "s"), SSDOffloader)
    cpu = make_offloader("cpu", cpu_pool_bytes=1024)
    assert isinstance(cpu, CPUOffloader)
    assert cpu.pool.capacity_bytes == 1024
    tiered = make_offloader(
        "tiered", store_dir=tmp_path / "t", cpu_pool_bytes=2048, chunk_bytes=512
    )
    assert isinstance(tiered, TieredOffloader)
    tiered.shutdown()


def test_make_offloader_validation(tmp_path):
    with pytest.raises(ValueError):
        make_offloader("ssd")
    with pytest.raises(ValueError):
        make_offloader("tiered", store_dir=tmp_path)  # needs a pool bound
    with pytest.raises(ValueError):
        make_offloader("tape", store_dir=tmp_path)
    # Knobs that would be silently inert for the target are rejected.
    with pytest.raises(ValueError):
        make_offloader("cpu", chunk_bytes=4096)
    with pytest.raises(ValueError):
        make_offloader("ssd", store_dir=tmp_path, cpu_pool_bytes=4096)


# ---------------------------------------------------------- cache integration
def _tiered_cache(tmp_path, cpu_pool_bytes, **offloader_kwargs):
    return TensorCache(
        TieredOffloader(
            tmp_path / "cache-tiers", cpu_pool_bytes=cpu_pool_bytes, **offloader_kwargs
        ),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
    )


def test_tiered_training_matches_baseline(gpu, tiny_gpt_config, tmp_path):
    baseline = _fresh_model(gpu, tiny_gpt_config)
    loss0, grads0, peak0 = _run_model_step(baseline, gpu)

    cache = _tiered_cache(tmp_path, cpu_pool_bytes=32 * 1024)  # forces spills
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        loss1, grads1, peak1 = _run_model_step(model, gpu, cache)
        assert loss0 == pytest.approx(loss1, abs=1e-6)
        for name in grads0:
            assert np.array_equal(grads0[name], grads1[name]), name
        stats = cache.offloader.stats
        # Both warm and cold tiers saw traffic; the pool never overflowed.
        assert stats.cpu_stored_bytes > 0
        assert stats.ssd_stored_bytes + stats.demoted_bytes > 0
        assert peak1 < peak0
    finally:
        cache.shutdown()


def test_cache_records_tier_per_activation(gpu, tiny_gpt_config, tmp_path):
    cache = _tiered_cache(tmp_path, cpu_pool_bytes=32 * 1024)
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        rng = np.random.default_rng(3)
        from repro.tensor.tensor import Tensor

        tokens = Tensor(
            rng.integers(0, tiny_gpt_config.vocab_size, (2, 16)).astype(np.int64),
            device=gpu,
        )
        targets = Tensor(
            rng.integers(0, tiny_gpt_config.vocab_size, (2, 16)).astype(np.int64),
            device=gpu,
        )
        with cache:
            loss = model(tokens, targets)
            cache.scheduler.drain()
            records = list(cache.current.records.values())
            tiers = {rec.tier for rec in records}
            # The bounded pool splits the step's records across both tiers,
            # and every stored record names its tier in the Fig. 4 column.
            assert Tier.CPU in tiers and Tier.SSD in tiers
            for rec in records:
                if rec.tier is Tier.CPU:
                    assert rec.location.startswith("tier:cpu:")
                elif rec.tier is Tier.SSD:
                    assert rec.location.startswith("tier:ssd:")
            cache.on_backward_begin()
            loss.backward()
            cache.on_backward_end()
        cache.on_step_end()
    finally:
        cache.shutdown()


def test_forwarding_across_tiers(gpu, tiny_gpt_config, tmp_path):
    """A load racing an in-flight tiered store adopts the in-memory
    reference, whichever tier the store is headed for."""
    cache = TensorCache(
        TieredOffloader(
            tmp_path / "fwd-tiers",
            cpu_pool_bytes=32 * 1024,
            throttle_bytes_per_s=5e5,  # slow SSD tier: stores stay in flight
        ),
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
    )
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        loss1, _, _ = _run_model_step(model, gpu, cache)
        assert cache.stats.forwarded_tensors > 0
        baseline = _fresh_model(gpu, tiny_gpt_config)
        loss0, _, _ = _run_model_step(baseline, gpu)
        assert loss0 == pytest.approx(loss1, abs=1e-6)
    finally:
        cache.shutdown()


def test_tiered_step_end_reclaims_all_tiers(gpu, tiny_gpt_config, tmp_path):
    cache = _tiered_cache(tmp_path, cpu_pool_bytes=32 * 1024)
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        _run_model_step(model, gpu, cache)
        assert cache.offloader.pool.used == 0
        assert not cache.offloader._tier
    finally:
        cache.shutdown()


# ----------------------------------------------------------- chunk coalescing
def test_chunked_ssd_writes_at_least_4x_fewer_files(gpu, tiny_gpt_config, tmp_path):
    """Acceptance: for a quickstart-sized step, chunk coalescing cuts the
    SSD write count by >= 4x versus one file per tensor."""

    def run_step(offloader):
        cache = TensorCache(
            offloader, policy=OffloadPolicy(PolicyConfig(min_offload_numel=64))
        )
        try:
            model = _fresh_model(gpu, tiny_gpt_config)
            cache.register_weights(model)
            cache.attach(model)
            _run_model_step(model, gpu, cache)
            executed = cache.stats.stored_tensors - cache.stats.cancelled_stores
            return executed, offloader.file_store.write_count
        finally:
            cache.shutdown()

    stored, per_tensor_writes = run_step(SSDOffloader(tmp_path / "per-tensor"))
    # One file per store that actually ran (forwarding may have cancelled
    # a queued store or two before it hit the SSD).
    assert per_tensor_writes == stored

    _, chunk_writes = run_step(
        SSDOffloader(tmp_path / "chunked", chunk_bytes=64 * 1024)
    )
    assert per_tensor_writes >= 4 * max(chunk_writes, 1)


def test_tiered_with_chunked_ssd_trains_correctly(gpu, tiny_gpt_config, tmp_path):
    baseline = _fresh_model(gpu, tiny_gpt_config)
    loss0, _, _ = _run_model_step(baseline, gpu)
    cache = _tiered_cache(tmp_path, cpu_pool_bytes=32 * 1024, chunk_bytes=64 * 1024)
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        loss1, _, _ = _run_model_step(model, gpu, cache)
        assert loss0 == pytest.approx(loss1, abs=1e-6)
    finally:
        cache.shutdown()


# ------------------------------------------------------------- tier failover
def test_direct_ssd_store_fails_over_to_cpu_on_permanent_error(tmp_path):
    """A policy-bypass (oversized) store hitting a dead SSD lands in the
    pinned pool instead of failing, and the SSD tier is written off."""
    from repro.core import OffloadPolicy, PolicyConfig
    from repro.io.faults import FaultPlan, inject_faults

    data = np.ones((64, 64), dtype=np.float32)
    off = TieredOffloader(
        tmp_path / "t",
        cpu_pool_bytes=4 * data.nbytes,
        policy=OffloadPolicy(PolicyConfig(cpu_tier_max_tensor_bytes=data.nbytes // 2)),
    )
    inject_faults(off, FaultPlan.dead(after_ops=0))
    try:
        off.store(_tid(1), data)  # placed SSD (too big for the pool cap)
        assert off.ssd_dead
        assert off.stats.failovers == 1
        assert off.stats.failover_bytes == data.nbytes
        assert off.tier_of(_tid(1)) is Tier.CPU
        out = off.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(out, data)
        # Subsequent placements skip the dead tier outright.
        off.store(_tid(2), data)
        assert off.tier_of(_tid(2)) is Tier.CPU
        assert off.store_lane(_tid(3), data.nbytes) == "cpu"
        assert off.stats.failovers == 1  # no second failover needed
    finally:
        off.shutdown()


def test_queued_demotion_reinstates_to_cpu_when_ssd_dies(tmp_path):
    """An async spill whose write hits the dead SSD must not lose the
    buffer: the victim is reinstated in the pool (overflow allowed) and
    stays loadable."""
    from repro.io import IOScheduler
    from repro.io.faults import FaultPlan, inject_faults

    sched = IOScheduler(num_store_workers=1, num_load_workers=1, retry_backoff_s=0)
    rng = np.random.default_rng(9)
    a = rng.standard_normal((64, 64)).astype(np.float32)
    b = rng.standard_normal((64, 64)).astype(np.float32)
    off = TieredOffloader(tmp_path / "t", cpu_pool_bytes=a.nbytes)
    off.set_scheduler(sched)
    inject_faults(off, FaultPlan.dead(after_ops=0))
    try:
        off.store(_tid(1), a)
        off.store(_tid(2), b)  # demotes tid 1; the queued spill will fail
        assert sched.drain(5)
        assert off.ssd_dead
        assert off.stats.failovers == 1
        assert off.tier_of(_tid(1)) is Tier.CPU
        assert off.pool.overflow_allowed  # both tensors share a 1-tensor pool
        assert np.array_equal(off.load(_tid(1), (64, 64), np.dtype(np.float32)), a)
        assert np.array_equal(off.load(_tid(2), (64, 64), np.dtype(np.float32)), b)
    finally:
        sched.shutdown()
        off.shutdown()


def test_sync_demotion_on_dead_ssd_keeps_victim_resident(tmp_path):
    """Scheduler-less demotions: a dead SSD write leaves the victim in
    the pool (no data loss) and latches degraded mode."""
    from repro.io.faults import FaultPlan, inject_faults

    data = np.ones((64, 64), dtype=np.float32)
    off = TieredOffloader(tmp_path / "t", cpu_pool_bytes=data.nbytes)
    inject_faults(off, FaultPlan.dead(after_ops=0))
    try:
        off.store(_tid(1), data)
        off.store(_tid(2), data)  # wants to demote tid 1; the SSD is dead
        assert off.ssd_dead
        assert off.tier_of(_tid(1)) is Tier.CPU
        assert off.tier_of(_tid(2)) is Tier.CPU
        assert off.pool.overflow_bytes == data.nbytes
        out = off.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(out, data)
    finally:
        off.shutdown()


def test_failed_over_demotion_still_feeds_ssd_lane_health(tmp_path):
    """Review regression: a demotion whose SSD write exhausted its
    retries and was reinstated into the CPU tier completes DONE — the
    ssd lane must still record the failure, so a persistently flaky SSD
    accumulates toward the death verdict instead of being masked."""
    from repro.io import IOScheduler
    from repro.io.faults import FaultPlan, inject_faults

    sched = IOScheduler(num_store_workers=1, num_load_workers=1, retry_backoff_s=0)
    data = np.ones((64, 64), dtype=np.float32)
    off = TieredOffloader(tmp_path / "t", cpu_pool_bytes=data.nbytes)
    off.set_scheduler(sched)
    # Every write op faults more attempts than any retry budget covers.
    inject_faults(off, FaultPlan(transient_write_rate=1.0, transient_repeats=10))
    try:
        off.store(_tid(1), data)
        off.store(_tid(2), data)  # demotes tid 1; the spill write flakes out
        assert sched.drain(5)
        assert off.stats.failovers == 1
        assert off.tier_of(_tid(1)) is Tier.CPU
        assert not off.ssd_dead  # transient exhaustion alone is not death...
        window = sched.health.consume_failure_window()
        assert window.get("ssd") == 1  # ...but the lane learned about it
        assert sched.health.snapshot()["ssd"].consecutive_failures == 1
    finally:
        sched.shutdown()
        off.shutdown()


def test_sync_direct_ssd_store_retries_transient_faults(tmp_path):
    """Review regression: the scheduler-less store() path applies the
    same retry rule as the sync demotion path — a survivable transient
    plan must not fail a standalone store outright."""
    from repro.core import OffloadPolicy, PolicyConfig
    from repro.io.faults import FaultPlan, inject_faults

    data = np.ones((64, 64), dtype=np.float32)
    off = TieredOffloader(
        tmp_path / "t",
        cpu_pool_bytes=4 * data.nbytes,
        policy=OffloadPolicy(PolicyConfig(cpu_tier_max_tensor_bytes=data.nbytes // 2)),
    )
    injector = inject_faults(off, FaultPlan.transient(rate=1.0))
    try:
        off.store(_tid(1), data)  # SSD placement; first write attempt faults
        assert injector.fault_stats.injected_transient >= 1
        assert off.tier_of(_tid(1)) is Tier.SSD  # healed, landed on SSD
        assert not off.ssd_dead
        # The sync load path heals its read fault the same way.
        out = off.load(_tid(1), (64, 64), np.dtype(np.float32))
        assert np.array_equal(out, data)
        assert injector.fault_stats.injected_transient >= 2
    finally:
        off.shutdown()


# --------------------------------------------------------- durable rehydration
def test_durable_tiered_rehydrates_ssd_tier_map(tmp_path):
    """A restarted durable tiered engine must remember which tensors
    live on SSD — the replayed store index seeds the tier map, so loads
    of pre-crash tensors hit SSD instead of raising 'never stored'."""
    first = TieredOffloader(
        tmp_path / "t",
        cpu_pool_bytes=4 * DATA.nbytes,
        chunk_bytes=4096,
        durable=True,
    )
    try:
        for i in range(3):
            first.store(_tid(i), DATA + i)
            assert first.demote(_tid(i))  # force SSD residency
        first.flush()
    finally:
        first.shutdown()  # durable: close() keeps the chunk files

    second = TieredOffloader(
        tmp_path / "t",
        cpu_pool_bytes=4 * DATA.nbytes,
        chunk_bytes=4096,
        durable=True,
    )
    try:
        for i in range(3):
            assert second.tier_of(_tid(i)) is Tier.SSD
            assert np.array_equal(
                second.load(_tid(i), DATA.shape, DATA.dtype), DATA + i
            )
    finally:
        second.shutdown()


def test_volatile_tiered_starts_empty(tmp_path):
    """Without durable=True the store clears on shutdown, so a second
    offloader on the same directory sees nothing — the pre-PR9 contract."""
    first = TieredOffloader(
        tmp_path / "t", cpu_pool_bytes=4 * DATA.nbytes, chunk_bytes=4096
    )
    first.store(_tid(1), DATA)
    first.demote(_tid(1))
    first.shutdown()

    second = TieredOffloader(
        tmp_path / "t", cpu_pool_bytes=4 * DATA.nbytes, chunk_bytes=4096
    )
    try:
        assert second.tier_of(_tid(1)) is Tier.GPU  # "never stored" default
        with pytest.raises(KeyError):
            second.load(_tid(1), DATA.shape, DATA.dtype)
    finally:
        second.shutdown()
