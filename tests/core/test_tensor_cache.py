"""Integration tests for the SSDTrain tensor cache (Sec. III-B / III-C).

These exercise the full mechanism on real models with real file I/O:
correctness (identical losses/gradients), memory release, deduplication,
weight exclusion, data forwarding, budget capping, micro-batch switching,
and failure injection.
"""

import gc

import numpy as np
import pytest

from repro.core import (
    CPUOffloader,
    OffloadPolicy,
    PolicyConfig,
    SSDOffloader,
    TensorCache,
)
from repro.device import MemoryTag
from repro.models import GPT
from repro.nn.linear import Linear
from repro.tensor import ops
from repro.tensor.tensor import Tensor


def _run_model_step(model, gpu, cache=None, seed=42):
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    seq = model.config.seq_len
    tokens = Tensor(rng.integers(0, vocab, (2, seq)).astype(np.int64), device=gpu)
    targets = Tensor(rng.integers(0, vocab, (2, seq)).astype(np.int64), device=gpu)
    gpu.ledger.reset_peak()
    if cache is not None:
        with cache:
            loss = model(tokens, targets)
            cache.on_backward_begin()
            loss.backward()
            cache.on_backward_end()
        cache.on_step_end()
    else:
        loss = model(tokens, targets)
        loss.backward()
    gc.collect()
    grads = {n: p.grad.data.copy() for n, p in model.named_parameters()}
    model.zero_grad()
    return loss.item(), grads, gpu.ledger.peak(MemoryTag.ACTIVATIONS)


def _fresh_model(gpu, tiny_gpt_config, seed=0):
    return GPT(tiny_gpt_config, rng=np.random.default_rng(seed)).to(gpu)


# ----------------------------------------------------------------- correctness
def test_offloaded_step_bitwise_identical(gpu, tiny_gpt_config, make_cache):
    baseline_model = _fresh_model(gpu, tiny_gpt_config)
    loss0, grads0, _ = _run_model_step(baseline_model, gpu)

    model = _fresh_model(gpu, tiny_gpt_config)
    cache = make_cache()
    cache.register_weights(model)
    cache.attach(model)
    loss1, grads1, _ = _run_model_step(model, gpu, cache)

    assert loss0 == pytest.approx(loss1, abs=1e-7)
    for name in grads0:
        assert np.array_equal(grads0[name], grads1[name]), name


def test_cache_actually_offloads(gpu, tiny_gpt_config, make_cache):
    model = _fresh_model(gpu, tiny_gpt_config)
    cache = make_cache()
    cache.register_weights(model)
    cache.attach(model)
    _run_model_step(model, gpu, cache)
    assert cache.stats.stored_tensors > 10
    assert cache.stats.stored_bytes > 0
    assert cache.offloader.file_store.bytes_written > 0


def test_activation_peak_reduced(gpu, tiny_gpt_config, make_cache):
    config = tiny_gpt_config.scaled(num_layers=3, seq_len=32)
    baseline = _fresh_model(gpu, config)
    _, _, peak_base = _run_model_step(baseline, gpu)

    model = _fresh_model(gpu, config)
    cache = make_cache(prefetch_window=4)
    cache.register_weights(model)
    cache.attach(model)
    # Step 0 profiles; step 1 has keep-last active.
    _run_model_step(model, gpu, cache)
    _, _, peak_off = _run_model_step(model, gpu, cache)
    assert peak_off < 0.7 * peak_base  # at least 30% reduction


def test_multi_step_stability(gpu, tiny_gpt_config, make_cache):
    model = _fresh_model(gpu, tiny_gpt_config)
    cache = make_cache()
    cache.register_weights(model)
    cache.attach(model)
    losses = [
        _run_model_step(model, gpu, cache, seed=s)[0] for s in range(4)
    ]
    assert all(np.isfinite(l) for l in losses)


# --------------------------------------------------------------------- weights
def test_weights_never_offloaded(gpu, tiny_gpt_config, make_cache):
    model = _fresh_model(gpu, tiny_gpt_config)
    cache = make_cache()
    cache.register_weights(model)
    cache.attach(model)
    _run_model_step(model, gpu, cache)
    weight_shapes = {tuple(p.shape) for p in model.parameters()}
    weight_shapes |= {tuple(reversed(s)) for s in weight_shapes if len(s) == 2}
    for table in cache._microbatches.values():
        for tid in table.records:
            assert tid.shape not in weight_shapes or len(tid.shape) != 2, (
                f"weight-shaped tensor {tid} was managed"
            )


def test_small_tensors_pass_through(gpu, make_cache):
    layer = Linear(8, 8, rng=np.random.default_rng(0)).to(gpu)
    cache = make_cache(min_offload_numel=10**9)  # nothing qualifies
    cache.register_weights(layer)
    cache.attach(layer)
    x = Tensor(np.ones((2, 8), dtype=np.float32), device=gpu, requires_grad=True)
    with cache:
        layer(x).sum().backward()
    assert cache.stats.stored_tensors == 0
    assert cache.stats.passed_tensors > 0


# ----------------------------------------------------------------------- dedup
def test_dedup_prevents_redundant_io(gpu, make_cache):
    """A tensor saved by two consumers is stored once."""
    cache = make_cache()
    x = Tensor(
        np.random.default_rng(0).standard_normal((32, 32)).astype(np.float32),
        device=gpu,
        requires_grad=True,
    )
    with cache:
        # gelu and mul both save (a view of) their input x.
        y = (ops.gelu(x) + ops.mul(x, x)).sum()
        cache.on_backward_begin()
        y.backward()
        cache.on_backward_end()
    assert cache.stats.dedup_hits >= 1
    stored_for_x = [
        1
        for table in cache._microbatches.values()
        for tid in table.records
        if tid.shape == (32, 32)
    ]
    cache.on_step_end()
    assert cache.stats.stored_tensors <= 2  # x (+ x*x output), never 3


# ------------------------------------------------------------------ forwarding
def test_data_forwarding_on_slow_store(gpu, tmp_path):
    """With a slow SSD, backward begins while stores are in flight; the
    cache must return the in-memory reference instead of loading."""
    offloader = SSDOffloader(tmp_path / "slow", throttle_bytes_per_s=2e6)
    cache = TensorCache(
        offloader,
        policy=OffloadPolicy(PolicyConfig(min_offload_numel=64)),
        num_store_workers=1,
    )
    try:
        layer = Linear(64, 64, rng=np.random.default_rng(0)).to(gpu)
        cache.register_weights(layer)
        cache.attach(layer)
        x = Tensor(
            np.ones((16, 64), dtype=np.float32), device=gpu, requires_grad=True
        )
        with cache:
            loss = ops.gelu(layer(x)).sum()
            cache.on_backward_begin()
            loss.backward()  # stores still in flight: must forward
            cache.on_backward_end()
        assert cache.stats.forwarded_tensors >= 1
        assert x.grad is not None
        cache.on_step_end()
    finally:
        cache.shutdown()


def test_forwarding_preserves_values(gpu, tmp_path, tiny_gpt_config):
    """Slow-store runs must still produce identical gradients."""
    baseline = _fresh_model(gpu, tiny_gpt_config)
    loss0, grads0, _ = _run_model_step(baseline, gpu)

    offloader = SSDOffloader(tmp_path / "fwd", throttle_bytes_per_s=5e5)
    cache = TensorCache(
        offloader, policy=OffloadPolicy(PolicyConfig(min_offload_numel=64))
    )
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        loss1, grads1, _ = _run_model_step(model, gpu, cache)
        assert loss0 == pytest.approx(loss1, abs=1e-6)
        for name in grads0:
            assert np.array_equal(grads0[name], grads1[name])
    finally:
        cache.shutdown()


# ---------------------------------------------------------------------- budget
def test_offload_budget_caps_stored_bytes(gpu, tiny_gpt_config, make_cache):
    budget = 50_000
    cache = make_cache(policy_kwargs=dict(offload_budget_bytes=budget))
    model = _fresh_model(gpu, tiny_gpt_config)
    cache.register_weights(model)
    cache.attach(model)
    _run_model_step(model, gpu, cache)
    # Budget is checked before each store; overshoot is at most one tensor.
    assert cache.stats.stored_bytes <= budget + 64 * 1024
    assert cache.stats.kept_tensors > 0


# ----------------------------------------------------------------- micro-batch
def test_microbatch_records_are_separate(gpu, tiny_gpt_config, make_cache):
    model = _fresh_model(gpu, tiny_gpt_config)
    cache = make_cache()
    cache.register_weights(model)
    cache.attach(model)
    rng = np.random.default_rng(0)
    vocab, seq = tiny_gpt_config.vocab_size, tiny_gpt_config.seq_len
    with cache:
        losses = []
        for mb in range(2):
            cache.set_microbatch(mb)
            tokens = Tensor(rng.integers(0, vocab, (1, seq)).astype(np.int64), device=gpu)
            targets = Tensor(rng.integers(0, vocab, (1, seq)).astype(np.int64), device=gpu)
            loss = model(tokens, targets)
            cache.on_backward_begin()
            loss.backward()
            cache.on_backward_end()
            losses.append(loss.item())
    assert len(cache._microbatches) == 2
    cache.on_step_end()
    assert all(np.isfinite(l) for l in losses)


# -------------------------------------------------------------------- keep-last
def test_keep_last_module_after_profiling(gpu, tiny_gpt_config, make_cache):
    model = _fresh_model(gpu, tiny_gpt_config)
    cache = make_cache()
    cache.register_weights(model)
    cache.attach(model)
    _run_model_step(model, gpu, cache)  # profiling step
    assert cache._last_segment_id is not None
    kept_before = cache.stats.kept_tensors
    _run_model_step(model, gpu, cache)
    assert cache.stats.kept_tensors > kept_before


def test_keep_hint_stops_offloading(gpu, make_cache):
    cache = make_cache()
    layer = Linear(64, 64, rng=np.random.default_rng(0)).to(gpu)
    cache.register_weights(layer)
    cache.attach(layer)
    cache.hint_keep_remaining(True)
    x = Tensor(np.ones((16, 64), dtype=np.float32), device=gpu, requires_grad=True)
    with cache:
        loss = ops.gelu(layer(x)).sum()
        cache.on_backward_begin()
        loss.backward()
        cache.on_backward_end()
    assert cache.stats.stored_tensors == 0
    assert cache.stats.kept_tensors > 0


# --------------------------------------------------------------------- cleanup
def test_step_end_releases_records_and_files(gpu, tiny_gpt_config, make_cache):
    model = _fresh_model(gpu, tiny_gpt_config)
    cache = make_cache()
    cache.register_weights(model)
    cache.attach(model)
    _run_model_step(model, gpu, cache)
    store_dir = cache.offloader.file_store.root
    assert list(store_dir.glob("*.bin")) == []  # files deleted at step end
    assert all(not t.records for t in cache._microbatches.values())


def test_shutdown_idempotent(gpu, tiny_gpt_config, make_cache):
    cache = make_cache()
    model = _fresh_model(gpu, tiny_gpt_config)
    cache.register_weights(model)
    cache.attach(model)
    _run_model_step(model, gpu, cache)
    cache.shutdown()
    cache.shutdown()


# -------------------------------------------------------------- cpu offloader
def test_cpu_offloader_end_to_end(gpu, tiny_gpt_config):
    baseline = _fresh_model(gpu, tiny_gpt_config)
    loss0, grads0, _ = _run_model_step(baseline, gpu)

    cache = TensorCache(
        CPUOffloader(), policy=OffloadPolicy(PolicyConfig(min_offload_numel=64))
    )
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        loss1, grads1, _ = _run_model_step(model, gpu, cache)
        assert loss0 == pytest.approx(loss1, abs=1e-6)
        for name in grads0:
            assert np.array_equal(grads0[name], grads1[name])
        assert cache.stats.stored_tensors > 0
    finally:
        cache.shutdown()


def test_cpu_offloader_pool_profiling(gpu, tiny_gpt_config):
    offloader = CPUOffloader()
    cache = TensorCache(
        offloader, policy=OffloadPolicy(PolicyConfig(min_offload_numel=64))
    )
    try:
        model = _fresh_model(gpu, tiny_gpt_config)
        cache.register_weights(model)
        cache.attach(model)
        _run_model_step(model, gpu, cache)
        assert offloader.pool.high_watermark > 0
        capacity = offloader.pool.fit_to_high_watermark()
        assert capacity >= offloader.pool.high_watermark
        # Subsequent identical steps fit in the profiled pool.
        _run_model_step(model, gpu, cache)
    finally:
        cache.shutdown()


# ------------------------------------------------------------ failure injection
def test_load_failure_surfaces_as_runtime_error(gpu, make_cache):
    cache = make_cache()
    layer = Linear(64, 64, rng=np.random.default_rng(0)).to(gpu)
    cache.register_weights(layer)
    cache.attach(layer)
    x = Tensor(np.ones((16, 64), dtype=np.float32), device=gpu, requires_grad=True)
    with cache:
        loss = ops.gelu(layer(x)).sum()
        cache.scheduler.drain()
        # Sabotage: delete the offloaded files so loads fail.
        cache.offloader.file_store.clear()
        cache.on_backward_begin()
        with pytest.raises((RuntimeError, FileNotFoundError)):
            loss.backward()


def test_failed_store_recovery_reverses_offload_accounting(gpu, make_cache):
    """Review regression: a store that failed terminally but was
    recovered by keeping the tensor resident must not consume offload
    budget or report store traffic that never moved."""
    from repro.io.faults import FaultPlan, inject_faults

    cache = make_cache()
    inject_faults(cache.offloader, FaultPlan.dead(after_ops=0))
    x = Tensor(np.ones((64, 64), dtype=np.float32), device=gpu, requires_grad=True)
    with cache:
        tid = cache.pack_hook(x)
        cache.scheduler.drain(5)
        assert cache.unpack_hook(tid) is x  # resident, no error raised
    assert cache.stats.store_failures == 1
    assert cache.stats.stored_tensors == 0  # reversed: nothing was stored
    assert cache.stats.stored_bytes == 0
    assert cache.stats.kept_tensors == 1    # re-booked as kept
    assert cache.stats.kept_bytes == x.nbytes
    assert cache.accounting.offloaded_bytes == 0  # no budget consumed
    assert cache.accounting.kept_bytes == x.nbytes
