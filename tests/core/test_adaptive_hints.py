"""Tests for adaptive offload sizing and scheduler hints."""

import pytest

from repro.core.adaptive import WorkloadProfile, choose_offload_budget, configure_policy
from repro.core.hints import SchedulerHints, Stage, patch_schedule
from repro.core.policy import PolicyConfig
from repro.train.schedule import MicrobatchSchedule


# -------------------------------------------------------------------- adaptive
def test_budget_never_exceeds_activations():
    profile = WorkloadProfile(
        activation_bytes_per_step=10**9, forward_time_s=1.0, backward_time_s=2.0
    )
    budget = choose_offload_budget(profile, write_bandwidth_bytes_per_s=1e12)
    assert budget == 10**9


def test_budget_limited_by_write_bandwidth():
    profile = WorkloadProfile(
        activation_bytes_per_step=10**12, forward_time_s=1.0, backward_time_s=2.0
    )
    budget = choose_offload_budget(profile, write_bandwidth_bytes_per_s=1e9)
    # write window = fwd + bwd/2 = 2s -> 2 GB cap
    assert budget == pytest.approx(2e9, rel=0.01)


def test_budget_limited_by_read_bandwidth():
    profile = WorkloadProfile(
        activation_bytes_per_step=10**12, forward_time_s=1.0, backward_time_s=2.0
    )
    budget = choose_offload_budget(
        profile, write_bandwidth_bytes_per_s=1e12, read_bandwidth_bytes_per_s=1e9
    )
    assert budget == pytest.approx(2e9, rel=0.01)  # reads fit in backward


def test_budget_safety_factor():
    profile = WorkloadProfile(10**12, 1.0, 2.0)
    full = choose_offload_budget(profile, 1e9)
    safe = choose_offload_budget(profile, 1e9, safety_factor=0.5)
    assert safe == pytest.approx(full / 2, rel=0.01)


def test_budget_validation():
    profile = WorkloadProfile(1, 1.0, 1.0)
    with pytest.raises(ValueError):
        choose_offload_budget(profile, 0)
    with pytest.raises(ValueError):
        choose_offload_budget(profile, 1e9, safety_factor=2.0)


def test_configure_policy_installs_budget():
    profile = WorkloadProfile(10**12, 1.0, 2.0)
    config = configure_policy(profile, 1e9, base=PolicyConfig(min_offload_numel=7))
    assert config.offload_budget_bytes == pytest.approx(2e9, rel=0.01)
    assert config.min_offload_numel == 7


# ----------------------------------------------------------------------- hints
class _FakeCache:
    def __init__(self):
        self.calls = []

    def set_microbatch(self, i):
        self.calls.append(("set_mb", i))

    def hint_keep_remaining(self, keep=True):
        self.calls.append(("keep", keep))

    def on_backward_begin(self):
        self.calls.append(("bwd_begin",))

    def on_backward_end(self):
        self.calls.append(("bwd_end",))

    def on_step_end(self):
        self.calls.append(("step_end",))


def test_hints_forward_microbatch_switches_records():
    cache = _FakeCache()
    hints = SchedulerHints(cache)
    hints.before(Stage.FORWARD_MICROBATCH, 3)
    assert ("set_mb", 3) in cache.calls


def test_hints_backward_follows_sets_keep():
    cache = _FakeCache()
    hints = SchedulerHints(cache)
    hints.before(Stage.FORWARD_MICROBATCH, 0, backward_follows=True)
    assert ("keep", True) in cache.calls
    hints.after(Stage.FORWARD_MICROBATCH, 0)
    assert ("keep", False) in cache.calls


def test_hints_backward_and_step_notifications():
    cache = _FakeCache()
    hints = SchedulerHints(cache)
    hints.before(Stage.BACKWARD_MICROBATCH, 1)
    hints.after(Stage.BACKWARD_MICROBATCH, 1)
    hints.after(Stage.OPTIMIZER_STEP)
    assert ("bwd_begin",) in cache.calls
    assert ("bwd_end",) in cache.calls
    assert ("step_end",) in cache.calls


def test_hint_event_log_sequence():
    cache = _FakeCache()
    hints = SchedulerHints(cache)
    schedule = MicrobatchSchedule(
        forward_fn=lambda i: i,
        backward_fn=lambda i, r: None,
        optimizer_fn=lambda: None,
        num_microbatches=2,
    )
    patch_schedule(schedule, hints)
    schedule.run_step()
    phases = [(e.stage, e.phase, e.microbatch) for e in hints.events]
    assert phases == [
        (Stage.FORWARD_MICROBATCH, "before", 0),
        (Stage.FORWARD_MICROBATCH, "after", 0),
        (Stage.BACKWARD_MICROBATCH, "before", 0),
        (Stage.BACKWARD_MICROBATCH, "after", 0),
        (Stage.FORWARD_MICROBATCH, "before", 1),
        (Stage.FORWARD_MICROBATCH, "after", 1),
        (Stage.BACKWARD_MICROBATCH, "before", 1),
        (Stage.BACKWARD_MICROBATCH, "after", 1),
        (Stage.OPTIMIZER_STEP, "before", None),
        (Stage.OPTIMIZER_STEP, "after", None),
    ]


def test_patch_schedule_requires_command_methods():
    cache = _FakeCache()
    with pytest.raises(AttributeError):
        patch_schedule(object(), SchedulerHints(cache))


def test_patched_schedule_preserves_results():
    cache = _FakeCache()
    schedule = MicrobatchSchedule(
        forward_fn=lambda i: i * 10,
        backward_fn=lambda i, r: None,
        optimizer_fn=lambda: None,
        num_microbatches=3,
    )
    patch_schedule(schedule, SchedulerHints(cache))
    assert schedule.run_step() == [0, 10, 20]
    assert schedule.command_log == ["F0", "B0", "F1", "B1", "F2", "B2", "U"]
