"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OffloadPolicy, PolicyConfig, SSDOffloader, TensorCache
from repro.device import GPU
from repro.models import ModelConfig
from repro.tensor.tensor import Tensor


@pytest.fixture
def gpu() -> GPU:
    return GPU()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_gpt_config() -> ModelConfig:
    return ModelConfig(
        arch="gpt", hidden=64, num_layers=2, vocab_size=97, seq_len=16, head_dim=16
    )


@pytest.fixture
def tiny_bert_config() -> ModelConfig:
    return ModelConfig(
        arch="bert", hidden=64, num_layers=2, vocab_size=97, seq_len=16, head_dim=16
    )


@pytest.fixture
def tiny_t5_config() -> ModelConfig:
    return ModelConfig(
        arch="t5", hidden=64, num_layers=3, vocab_size=97, seq_len=16, head_dim=16
    )


@pytest.fixture
def token_batch(gpu, rng):
    tokens = Tensor(rng.integers(0, 97, (2, 16)).astype(np.int64), device=gpu)
    targets = Tensor(rng.integers(0, 97, (2, 16)).astype(np.int64), device=gpu)
    return tokens, targets


@pytest.fixture
def make_cache(tmp_path):
    """Factory for tensor caches backed by a per-test temp directory."""
    caches = []

    def _make(min_offload_numel: int = 64, **kwargs) -> TensorCache:
        policy = OffloadPolicy(
            PolicyConfig(min_offload_numel=min_offload_numel, **kwargs.pop("policy_kwargs", {}))
        )
        cache = TensorCache(
            SSDOffloader(tmp_path / f"store{len(caches)}"), policy=policy, **kwargs
        )
        caches.append(cache)
        return cache

    yield _make
    for cache in caches:
        cache.shutdown()


def numeric_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f(x)
        flat[i] = orig - eps
        fm = f(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad
