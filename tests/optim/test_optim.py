"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.device import MemoryTag
from repro.optim import Adam, SGD
from repro.tensor.tensor import Parameter, Tensor


def _quadratic_param(device=None):
    p = Parameter(np.array([4.0, -2.0], dtype=np.float32))
    return p


def _set_grad(p):
    # grad of f(p) = 0.5 * ||p||^2 is p itself
    p.grad = Tensor(p.data.copy())


def test_sgd_step_direction():
    p = _quadratic_param()
    _set_grad(p)
    SGD([p], lr=0.1).step()
    assert np.allclose(p.data, [3.6, -1.8])


def test_sgd_converges_on_quadratic():
    p = _quadratic_param()
    opt = SGD([p], lr=0.2)
    for _ in range(50):
        _set_grad(p)
        opt.step()
    assert np.abs(p.data).max() < 1e-3


def test_sgd_momentum_accelerates():
    def run(momentum):
        p = _quadratic_param()
        opt = SGD([p], lr=0.05, momentum=momentum)
        for _ in range(10):
            _set_grad(p)
            opt.step()
        return np.abs(p.data).max()

    assert run(0.9) < run(0.0)


def test_sgd_weight_decay_shrinks_weights():
    p = Parameter(np.array([1.0], dtype=np.float32))
    p.grad = Tensor(np.array([0.0], dtype=np.float32))
    SGD([p], lr=0.1, weight_decay=0.5).step()
    assert p.data[0] == pytest.approx(0.95)


def test_sgd_skips_params_without_grad():
    p = _quadratic_param()
    before = p.data.copy()
    SGD([p], lr=0.1).step()
    assert np.array_equal(p.data, before)


def test_sgd_validation():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([_quadratic_param()], lr=0)


def test_zero_grad():
    p = _quadratic_param()
    _set_grad(p)
    opt = SGD([p], lr=0.1)
    opt.zero_grad()
    assert p.grad is None


def test_adam_converges_on_quadratic():
    p = _quadratic_param()
    opt = Adam([p], lr=0.05)
    for _ in range(150):
        _set_grad(p)
        opt.step()
    # Adam's effective step is ~lr while the gradient sign is stable, so it
    # settles into a band of width ~2*lr around the optimum.
    assert np.abs(p.data).max() < 0.1


def test_adam_bias_correction_first_step():
    p = Parameter(np.array([1.0], dtype=np.float32))
    p.grad = Tensor(np.array([0.5], dtype=np.float32))
    Adam([p], lr=0.1).step()
    # With bias correction the first update magnitude is ~lr.
    assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-3)


def test_adam_state_charged_to_optimizer_tag(gpu):
    p = Parameter(np.zeros((8, 8), dtype=np.float32), device=gpu)
    p.grad = Tensor(np.ones((8, 8), dtype=np.float32), device=gpu)
    opt = Adam([p], lr=0.1)
    opt.step()
    # Two FP32 moments: 2 * 64 * 4 bytes (live while the optimizer lives).
    assert gpu.ledger.current(MemoryTag.OPTIMIZER) == 512


def test_sgd_momentum_state_charged(gpu):
    p = Parameter(np.zeros(16, dtype=np.float32), device=gpu)
    p.grad = Tensor(np.ones(16, dtype=np.float32), device=gpu)
    opt = SGD([p], lr=0.1, momentum=0.9)
    opt.step()
    assert gpu.ledger.current(MemoryTag.OPTIMIZER) == 64


def test_sgd_vs_adam_paper_rationale(gpu):
    """Sec. IV-A: SGD is used to shrink optimizer state on 40 GB GPUs."""
    def state_bytes(cls, **kw):
        p = Parameter(np.zeros(1024, dtype=np.float32), device=gpu)
        p.grad = Tensor(np.ones(1024, dtype=np.float32), device=gpu)
        before = gpu.ledger.current(MemoryTag.OPTIMIZER)
        opt = cls([p], lr=0.1, **kw)
        opt.step()
        return gpu.ledger.current(MemoryTag.OPTIMIZER) - before, opt

    sgd_bytes, _sgd = state_bytes(SGD)
    adam_bytes, _adam = state_bytes(Adam)
    assert sgd_bytes == 0
    assert adam_bytes > 0
