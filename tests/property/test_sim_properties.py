"""Property-based tests on the discrete-event simulator's invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.perf_model import ActivationTensor
from repro.sim.pipeline_offload import StageWorkload, simulate_pipeline_offload
from repro.sim.step_sim import SegmentSpec, StepSimulator
from repro.train.pipeline import ScheduleKind
from repro.train.trainer import PlacementStrategy


def _segments(sizes):
    segments = []
    for i, nbytes in enumerate(sizes):
        acts = tuple(
            ActivationTensor(f"a{i}_{j}", max(1, nbytes // 2)) for j in range(2)
        )
        segments.append(
            SegmentSpec(
                name=f"seg{i}",
                forward_time_s=0.01,
                backward_time_s=0.02,
                forward_flops=1e9,
                activations=acts,
                input_bytes=nbytes // 4 or 1,
            )
        )
    return segments


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.integers(min_value=10**6, max_value=10**9), min_size=2, max_size=8),
    st.sampled_from(list(PlacementStrategy)),
    st.integers(min_value=1, max_value=3),
)
def test_step_sim_conservation_invariants(sizes, strategy, microbatches):
    sim = StepSimulator(
        _segments(sizes),
        strategy,
        write_bandwidth=25e9,
        read_bandwidth=25e9,
        num_microbatches=microbatches,
    )
    result = sim.run(weight_update_s=0.005)
    # Conservation: everything offloaded is either loaded back or forwarded.
    assert result.loaded_bytes + result.forwarded_bytes == result.offloaded_bytes
    # Time sanity: step covers compute + update; stall only with offload.
    assert result.step_time_s >= result.weight_update_time_s
    assert result.io_stall_time_s >= 0
    if strategy is not PlacementStrategy.OFFLOAD:
        assert result.offloaded_bytes == 0
    # Executed flops never below algorithmic; equal unless recomputing.
    assert result.executed_flops >= result.algorithmic_flops
    if strategy is not PlacementStrategy.RECOMPUTE:
        assert result.executed_flops == pytest.approx(result.algorithmic_flops)
    # Memory peak is positive and bounded by total produced bytes (the
    # recompute strategy transiently holds workspace_factor x a segment's
    # activations on top of the checkpoint inputs).
    total = sum(
        sim.recompute_workspace_factor * s.activation_bytes + s.input_bytes
        for s in sim.segments
    ) * microbatches
    assert 0 < result.activation_peak_bytes <= total


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.integers(min_value=10**6, max_value=10**9), min_size=2, max_size=6),
    st.integers(min_value=1, max_value=3),
)
def test_step_sim_offload_never_slower_than_keep_at_high_bw(sizes, keep_last):
    """With the last module kept (keep_last >= 1, the Fig. 2 marker-4
    rule), high-bandwidth offloading never costs more than a few
    I/O-latency quanta.  keep_last=0 genuinely can stall: the very first
    backward segment's reload has no compute to hide behind — hypothesis
    found this, and it is exactly why the paper keeps the last module."""
    keep = StepSimulator(
        _segments(sizes), PlacementStrategy.KEEP, 1e12, 1e12
    ).run()
    off = StepSimulator(
        _segments(sizes),
        PlacementStrategy.OFFLOAD,
        1e12,
        1e12,
        keep_last_segments=keep_last,
    ).run()
    latency_slack = 10 * 20e-6 * len(sizes)
    assert off.step_time_s <= keep.step_time_s * 1.001 + latency_slack
    assert off.activation_peak_bytes <= keep.activation_peak_bytes


@settings(deadline=None, max_examples=20)
@given(st.lists(st.integers(min_value=10**8, max_value=10**9), min_size=2, max_size=4))
def test_step_sim_keep_last_zero_pays_first_reload(sizes):
    """The complementary property: without keep-last, the first backward
    segment either stalls on its reload or its store was still in flight
    (data forwarding) — it is never a free offload."""
    off = StepSimulator(
        _segments(sizes),
        PlacementStrategy.OFFLOAD,
        25e9,
        25e9,
        keep_last_segments=0,
    ).run()
    assert off.io_stall_time_s > 0 or off.forwarded_bytes > 0


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(list(ScheduleKind)),
    st.integers(min_value=10**6, max_value=10**9),
)
def test_pipeline_offload_invariants(stages, microbatches, kind, nbytes):
    work = StageWorkload(0.01, 0.02, nbytes)
    result = simulate_pipeline_offload(
        work, stages, microbatches, 25e9, 25e9, kind=kind
    )
    for stage in result.stages:
        # Every micro-batch's activations are either offloaded or kept.
        assert stage.offloaded_bytes + stage.kept_bytes == microbatches * nbytes
        assert stage.io_stall_s >= 0
        assert 0 < stage.activation_peak_bytes <= microbatches * nbytes
    # Step time at least the ideal pipeline.
    assert result.step_time_s >= result.baseline_step_time_s - 1e-9
