"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ids import TensorIDRegistry
from repro.core.policy import Decision, OffloadPolicy, PolicyConfig, StepAccounting
from repro.device.memory import MemoryLedger, MemoryTag
from repro.device.ssd import SAMSUNG_980_PRO_1TB, SSDEnduranceModel
from repro.sim.timeline import Timeline
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.train.pipeline import ScheduleKind, ideal_bubble_fraction, simulate_pipeline


# ------------------------------------------------------------------- ledger
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=10**6)),
        min_size=1,
        max_size=100,
    )
)
def test_ledger_never_negative_and_peak_dominates(events):
    ledger = MemoryLedger()
    live = 0
    for is_alloc, size in events:
        if is_alloc:
            ledger.alloc(size, MemoryTag.ACTIVATIONS)
            live += size
        else:
            to_free = min(size, live)
            if to_free:
                ledger.free(to_free, MemoryTag.ACTIVATIONS)
                live -= to_free
        assert ledger.current(MemoryTag.ACTIVATIONS) == live
        assert ledger.peak(MemoryTag.ACTIVATIONS) >= ledger.current(MemoryTag.ACTIVATIONS)


# --------------------------------------------------------------------- ids
@given(st.lists(st.tuples(st.integers(1, 8), st.integers(1, 8)), min_size=1, max_size=30))
def test_ids_unique_across_distinct_storages(shapes):
    registry = TensorIDRegistry()
    ids = [
        registry.get_id(Tensor(np.zeros(shape, dtype=np.float32)))
        for shape in shapes
    ]
    assert len(set(ids)) == len(ids)


@given(st.integers(1, 6), st.integers(1, 6))
def test_id_stable_under_views(rows, cols):
    registry = TensorIDRegistry()
    t = Tensor(np.zeros((rows, cols), dtype=np.float32))
    tid = registry.get_id(t)
    assert registry.get_id(t.detach()) == tid
    assert registry.get_id(t.reshape(cols * rows)) != tid  # shape differs
    assert registry.get_id(t.reshape(cols * rows)).stamp == tid.stamp


# ------------------------------------------------------------------- policy
@given(
    st.booleans(),
    st.booleans(),
    st.integers(min_value=1, max_value=2**24),
    st.booleans(),
    st.booleans(),
    st.integers(min_value=0, max_value=2**30),
)
def test_policy_decision_total_and_consistent(
    is_weight, is_cpu, numel, in_backward, in_keep_scope, offloaded
):
    policy = OffloadPolicy(PolicyConfig(offload_budget_bytes=2**29))
    accounting = StepAccounting(offloaded_bytes=offloaded)
    decision = policy.decide(
        is_weight=is_weight,
        is_cpu=is_cpu,
        numel=numel,
        nbytes=numel * 2,
        in_backward=in_backward,
        in_keep_scope=in_keep_scope,
        accounting=accounting,
    )
    assert decision in Decision
    if is_weight or is_cpu or numel < 2**20:
        assert decision is Decision.PASS_THROUGH
    elif in_backward or in_keep_scope or offloaded >= 2**29:
        assert decision is Decision.KEEP
    else:
        assert decision is Decision.OFFLOAD


# ----------------------------------------------------------------- endurance
@given(
    st.floats(min_value=1e6, max_value=1e13),
    st.floats(min_value=0.1, max_value=1000.0),
    st.integers(min_value=1, max_value=16),
)
def test_lifespan_scales_linearly_with_ssd_count(act_bytes, step_time, n):
    model = SSDEnduranceModel()
    one = model.lifespan_years(SAMSUNG_980_PRO_1TB, act_bytes, step_time, 1)
    many = model.lifespan_years(SAMSUNG_980_PRO_1TB, act_bytes, step_time, n)
    assert many == pytest.approx(n * one, rel=1e-6)


# ------------------------------------------------------------------ timeline
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.integers(1, 10**6)),
        min_size=1,
        max_size=50,
    )
)
def test_timeline_peak_matches_reference_sweep(allocs):
    tl = Timeline()
    deltas = []
    for t, size in allocs:
        tl.alloc(t, size)
        deltas.append((t, size))
        tl.free(t + 1.0, size)
        deltas.append((t + 1.0, -size))
    # Reference: sort, frees first at ties.
    current = peak = 0
    for _, d in sorted(deltas, key=lambda e: (e[0], e[1])):
        current += d
        peak = max(peak, current)
    assert tl.memory_peak() == peak


# ------------------------------------------------------------------ pipeline
@settings(deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=12),
    st.sampled_from(list(ScheduleKind)),
)
def test_pipeline_invariants(stages, microbatches, kind):
    sched = simulate_pipeline(stages, microbatches, 1.0, 2.0, kind)
    # Every (stage, microbatch) runs F and B exactly once.
    f_tasks = [(t.stage, t.microbatch) for t in sched.tasks if t.kind == "F"]
    b_tasks = [(t.stage, t.microbatch) for t in sched.tasks if t.kind == "B"]
    expected = {(s, m) for s in range(stages) for m in range(microbatches)}
    assert set(f_tasks) == expected and len(f_tasks) == len(expected)
    assert set(b_tasks) == expected and len(b_tasks) == len(expected)
    # Step time is at least the per-stage busy time and at most the serial time.
    busy = microbatches * 3.0
    assert sched.step_time >= busy - 1e-9
    assert sched.step_time <= stages * busy + 1e-9
    # Both schedules achieve the ideal bubble with uniform stages.
    assert sched.bubble_fraction == pytest.approx(
        ideal_bubble_fraction(stages, microbatches), abs=1e-9
    )


# ------------------------------------------------------------------ autograd
@settings(deadline=None, max_examples=25)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_matmul_grad_matches_reference(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a_data = rng.standard_normal((m, k)).astype(np.float32)
    b_data = rng.standard_normal((k, n)).astype(np.float32)
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a @ b).sum().backward()
    ones = np.ones((m, n), dtype=np.float32)
    assert np.allclose(a.grad.data, ones @ b_data.T, atol=1e-4)
    assert np.allclose(b.grad.data, a_data.T @ ones, atol=1e-4)


@settings(deadline=None, max_examples=25)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_softmax_rows_sum_to_one(rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((rows, cols)).astype(np.float32))
    out = ops.softmax(x)
    assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-5)
    assert (out.data >= 0).all()


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2**31 - 1))
def test_layernorm_output_statistics(width, seed):
    rng = np.random.default_rng(seed)
    x = Tensor((rng.standard_normal((4, width)) * 5 + 3).astype(np.float32))
    gamma = Tensor(np.ones(width, dtype=np.float32))
    beta = Tensor(np.zeros(width, dtype=np.float32))
    out = ops.layernorm(x, gamma, beta).data
    assert np.abs(out.mean(-1)).max() < 1e-3
    # eps in the denominator can only *shrink* the variance (rows whose
    # raw variance is comparable to eps land well below 1, never above).
    variances = out.var(-1)
    assert variances.max() < 1.05
    assert (variances >= -1e-6).all()
