"""Property-based tests (hypothesis) of the I/O scheduler's accounting
invariants under random submit / cancel / promote / fail interleavings.

The failure model's acceptance bar is *exact* reconciliation: whatever
mixture of successes, injected failures, cancellations and promotions a
run throws at the scheduler, once drained the books must balance —
``submitted == executed + failed + cancelled`` — with every request in a
terminal state, no pending work, and every worker alive.  PR 5 extends
the bar to the data plane: requests randomly carry buffer-arena leases,
and no interleaving may leak one — at drain,
``leased_requests == leases_released`` and the arena's outstanding count
is zero."""

from hypothesis import given, settings, strategies as st

from repro.io import BufferArena, IORequest, IOScheduler, Priority
from repro.io.aio import JobState
from repro.io.errors import PermanentIOError, TransientIOError

#: One scripted operation: (op kind, fault mode, lane, priority index,
#: cancel-after-submit?, carry-an-arena-lease?).
_OPS = st.tuples(
    st.sampled_from(["store", "load", "demote"]),
    st.sampled_from(["ok", "ok", "transient_heals", "transient_fatal", "permanent", "bug"]),
    st.sampled_from(["ssd", "cpu"]),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
    st.booleans(),
)


def _body(mode, counter):
    if mode == "ok":
        return None
    if mode == "transient_heals":
        # Fails on the first attempt, heals on the retry.
        counter["n"] += 1
        if counter["n"] == 1:
            raise TransientIOError("blip")
        return None
    if mode == "transient_fatal":
        raise TransientIOError("blip forever")
    if mode == "permanent":
        raise PermanentIOError("brick")
    raise ValueError("bug")


@settings(deadline=None, max_examples=25)
@given(st.lists(_OPS, min_size=1, max_size=40))
def test_scheduler_counters_always_reconcile(ops):
    sched = IOScheduler(
        num_store_workers=1,
        num_load_workers=1,
        max_retries=2,
        retry_backoff_s=0.0,
    )
    arena = BufferArena()
    requests = []
    promoted_candidates = []
    try:
        for i, (kind, mode, lane, prio_index, cancel_it, leased) in enumerate(ops):
            counter = {"n": 0}
            priority = list(Priority)[prio_index]
            if kind == "load" and priority is Priority.STORE:
                priority = Priority.PREFETCH_LOAD
            req = IORequest(
                lambda m=mode, c=counter: _body(m, c),
                kind=kind,
                priority=priority,
                tensor_id=f"t{i}",
                nbytes=(i + 1) * 16,
                lane=lane,
                # transient_fatal must actually exhaust: give it no budget
                max_retries=0 if mode == "transient_fatal" else None,
                lease=arena.lease((i + 1) * 16) if leased else None,
            )
            sched.submit(req)
            requests.append((req, mode))
            if cancel_it:
                sched.cancel(req)
            elif mode == "ok" and kind == "load":
                promoted_candidates.append(req)
            if promoted_candidates and i % 3 == 0:
                sched.promote(promoted_candidates[-1])
        assert sched.drain(10), "drain must always return"

        stats = sched.stats
        states = [req.state for req, _ in requests]
        # Every request reached a terminal state and the books balance.
        assert all(s is not JobState.PENDING and s is not JobState.RUNNING for s in states)
        assert all(req.done_event.is_set() for req, _ in requests)
        assert stats.submitted == len(requests)
        assert stats.executed == sum(1 for s in states if s is JobState.DONE)
        assert stats.failed == sum(1 for s in states if s is JobState.FAILED)
        assert stats.cancelled == sum(1 for s in states if s is JobState.CANCELLED)
        assert stats.submitted == stats.executed + stats.failed + stats.cancelled
        assert sched.pending() == 0
        # Mode-level guarantees for requests that were not cancelled:
        for req, mode in requests:
            if req.state is JobState.CANCELLED:
                continue
            if mode in ("ok", "transient_heals"):
                assert req.state is JobState.DONE
            else:
                assert req.state is JobState.FAILED
                assert req.error is not None
        # Coalescing/cancellation sub-counters never exceed their totals.
        assert stats.coalesced_requests <= stats.executed
        assert stats.cancelled_stores <= stats.cancelled
        # No interleaving may leak a lease: every leased request was
        # resolved at its terminal state and the arena got everything back.
        assert stats.leased_requests == stats.leases_released
        arena_stats = arena.stats()
        assert arena_stats.outstanding == 0
        assert arena_stats.leaked == 0
        # Workers all survived the interleaving.
        for worker in sched._workers:
            assert worker.is_alive()
    finally:
        sched.shutdown()
