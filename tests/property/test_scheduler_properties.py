"""Property-based tests (hypothesis) of the I/O scheduler's accounting
invariants under random submit / cancel / promote / fail interleavings.

The failure model's acceptance bar is *exact* reconciliation: whatever
mixture of successes, injected failures, cancellations and promotions a
run throws at the scheduler, once drained the books must balance —
``submitted == executed + failed + cancelled`` — with every request in a
terminal state, no pending work, and every worker alive.  PR 5 extends
the bar to the data plane: requests randomly carry buffer-arena leases,
and no interleaving may leak one — at drain,
``leased_requests == leases_released`` and the arena's outstanding count
is zero."""

from hypothesis import given, settings, strategies as st

from repro.io import BufferArena, IORequest, IOScheduler, Priority
from repro.io.aio import JobState
from repro.io.errors import PermanentIOError, TransientIOError

#: One scripted operation: (op kind, fault mode, lane, priority index,
#: cancel-after-submit?, carry-an-arena-lease?).
_OPS = st.tuples(
    st.sampled_from(["store", "load", "demote"]),
    st.sampled_from(["ok", "ok", "transient_heals", "transient_fatal", "permanent", "bug"]),
    st.sampled_from(["ssd", "cpu"]),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
    st.booleans(),
)


def _body(mode, counter):
    if mode == "ok":
        return None
    if mode == "transient_heals":
        # Fails on the first attempt, heals on the retry.
        counter["n"] += 1
        if counter["n"] == 1:
            raise TransientIOError("blip")
        return None
    if mode == "transient_fatal":
        raise TransientIOError("blip forever")
    if mode == "permanent":
        raise PermanentIOError("brick")
    raise ValueError("bug")


@settings(deadline=None, max_examples=25)
@given(st.lists(_OPS, min_size=1, max_size=40))
def test_scheduler_counters_always_reconcile(ops):
    sched = IOScheduler(
        num_store_workers=1,
        num_load_workers=1,
        max_retries=2,
        retry_backoff_s=0.0,
    )
    arena = BufferArena()
    requests = []
    promoted_candidates = []
    try:
        for i, (kind, mode, lane, prio_index, cancel_it, leased) in enumerate(ops):
            counter = {"n": 0}
            priority = list(Priority)[prio_index]
            if kind == "load" and priority is Priority.STORE:
                priority = Priority.PREFETCH_LOAD
            req = IORequest(
                lambda m=mode, c=counter: _body(m, c),
                kind=kind,
                priority=priority,
                tensor_id=f"t{i}",
                nbytes=(i + 1) * 16,
                lane=lane,
                # transient_fatal must actually exhaust: give it no budget
                max_retries=0 if mode == "transient_fatal" else None,
                lease=arena.lease((i + 1) * 16) if leased else None,
            )
            sched.submit(req)
            requests.append((req, mode))
            if cancel_it:
                sched.cancel(req)
            elif mode == "ok" and kind == "load":
                promoted_candidates.append(req)
            if promoted_candidates and i % 3 == 0:
                sched.promote(promoted_candidates[-1])
        assert sched.drain(10), "drain must always return"

        stats = sched.stats
        states = [req.state for req, _ in requests]
        # Every request reached a terminal state and the books balance.
        assert all(s is not JobState.PENDING and s is not JobState.RUNNING for s in states)
        assert all(req.done_event.is_set() for req, _ in requests)
        assert stats.submitted == len(requests)
        assert stats.executed == sum(1 for s in states if s is JobState.DONE)
        assert stats.failed == sum(1 for s in states if s is JobState.FAILED)
        assert stats.cancelled == sum(1 for s in states if s is JobState.CANCELLED)
        assert stats.submitted == stats.executed + stats.failed + stats.cancelled
        assert sched.pending() == 0
        # Mode-level guarantees for requests that were not cancelled:
        for req, mode in requests:
            if req.state is JobState.CANCELLED:
                continue
            if mode in ("ok", "transient_heals"):
                assert req.state is JobState.DONE
            else:
                assert req.state is JobState.FAILED
                assert req.error is not None
        # Coalescing/cancellation sub-counters never exceed their totals.
        assert stats.coalesced_requests <= stats.executed
        assert stats.cancelled_stores <= stats.cancelled
        # No interleaving may leak a lease: every leased request was
        # resolved at its terminal state and the arena got everything back.
        assert stats.leased_requests == stats.leases_released
        arena_stats = arena.stats()
        assert arena_stats.outstanding == 0
        assert arena_stats.leaked == 0
        # Workers all survived the interleaving.
        for worker in sched._workers:
            assert worker.is_alive()
    finally:
        sched.shutdown()


#: Multi-tenant scripted operation: (tenant, op kind, fault mode,
#: priority index, cancel-after-submit?).
_TENANT_OPS = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.sampled_from(["store", "load", "demote"]),
    st.sampled_from(["ok", "ok", "transient_heals", "permanent"]),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
)


@settings(deadline=None, max_examples=25)
@given(st.lists(_TENANT_OPS, min_size=1, max_size=40))
def test_multi_tenant_books_reconcile_per_tenant(ops):
    """Random multi-tenant interleavings: each tenant's books reconcile
    exactly (``submitted == executed + failed + cancelled``), the
    per-tenant books sum to the global ones, the capped tenant's quota
    charge equals its executed bytes, and no non-empty subqueue is
    starved (every admitted request reaches a terminal state)."""
    from repro.io import TenantQuotaError, TenantRegistry, tenant_scope
    from repro.io.tenancy import jain_index  # noqa: F401  (re-export sanity)

    quota = 1024
    registry = TenantRegistry()
    registry.register("a", weight=2.0)
    registry.register("b", weight=1.0)
    registry.register("c", weight=1.0, byte_quota=quota, over_quota="reject")
    sched = IOScheduler(
        num_store_workers=1,
        num_load_workers=1,
        max_retries=2,
        retry_backoff_s=0.0,
        tenants=registry,
    )
    requests = {"a": [], "b": [], "c": []}
    rejected = {"a": 0, "b": 0, "c": 0}
    try:
        for i, (tenant, kind, mode, prio_index, cancel_it) in enumerate(ops):
            counter = {"n": 0}
            priority = list(Priority)[prio_index]
            if kind == "load" and priority is Priority.STORE:
                priority = Priority.PREFETCH_LOAD
            with tenant_scope(tenant):
                req = IORequest(
                    lambda m=mode, c=counter: _body(m, c),
                    kind=kind,
                    priority=priority,
                    tensor_id=f"t{i}",
                    nbytes=(i % 8 + 1) * 16,
                    max_retries=None,
                )
                try:
                    sched.submit(req)
                except TenantQuotaError:
                    rejected[tenant] += 1
                    continue
            requests[tenant].append(req)
            if cancel_it:
                sched.cancel(req)
        assert sched.drain(10), "drain must always return"

        # No starvation: every admitted request, whatever its tenant's
        # position in the DRR ring, reached a terminal state.
        for reqs in requests.values():
            assert all(r.done_event.is_set() for r in reqs)

        total = sched.stats
        agg_submitted = agg_executed = agg_failed = agg_cancelled = 0
        for tenant in ("a", "b", "c"):
            stats = registry.stats_of(tenant)
            states = [r.state for r in requests[tenant]]
            assert stats.submitted == len(states)
            assert stats.executed == sum(1 for s in states if s is JobState.DONE)
            assert stats.failed == sum(1 for s in states if s is JobState.FAILED)
            assert stats.cancelled == sum(
                1 for s in states if s is JobState.CANCELLED
            )
            assert (
                stats.submitted == stats.executed + stats.failed + stats.cancelled
            ), f"tenant {tenant!r} books do not reconcile"
            assert stats.rejected == rejected[tenant]
            agg_submitted += stats.submitted
            agg_executed += stats.executed
            agg_failed += stats.failed
            agg_cancelled += stats.cancelled
        assert agg_submitted == total.submitted
        assert agg_executed == total.executed
        assert agg_failed == total.failed
        assert agg_cancelled == total.cancelled

        # Quota accounting: failures and cancellations refunded their
        # charge, so the surviving charge is exactly the executed bytes
        # -- and it never exceeded the cap.
        stats_c = registry.stats_of("c")
        executed_bytes = sum(
            r.nbytes for r in requests["c"] if r.state is JobState.DONE
        )
        assert stats_c.quota_in_use_bytes == executed_bytes
        assert stats_c.quota_charged_bytes - stats_c.quota_refunded_bytes <= quota
    finally:
        sched.shutdown()
