"""Self-healing chaos suite: degraded modes end to end (architecture §12).

The acceptance properties of ISSUE 10's graceful-degradation layer,
each proven with real file I/O:

1. **die → heal → resurrect** — permanent SSD death fails placement
   over to CPU (breaker opens); after the injector heals, half-open
   canary probes re-close the breaker, the tier is resurrected and
   losses stay bit-exact vs the fault-free run;
2. **fault-injection parity** — the same transient-fault plan bites and
   heals identically under all three lane backends (thread, uring,
   gds-sim), with bit-exact results per backend *and* across backends;
3. **ENOSPC survival** — a full device degrades stores to the CPU tier
   (after one compact-and-retry) without tripping the breaker and with
   zero failed requests;
4. **brownout** — a *slow* lane verdict sheds prefetch, placement and
   demotion traffic while blocking loads keep flowing;
5. **combined failure** — the KV-serving workload under SSD brownout
   plus a tenant-wide transient retry storm: TTFT degrades boundedly,
   every user's KV bytes stay bit-exact, and the breaker stays CLOSED
   (slow is not dead); a separate die-then-heal cycle on the serving
   pool shows the full breaker transition sequence on the bus listener.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import EngineConfig, OffloadPolicy, PolicyConfig, build_engine
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import GPU
from repro.io.breaker import BreakerState
from repro.io.faults import FaultPlan, inject_faults
from repro.io.tenancy import TenantRegistry
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer

CONFIG = ModelConfig(
    arch="gpt", hidden=64, num_layers=2, vocab_size=97, seq_len=32, head_dim=32
)
STEPS = 5


def _train_engine(
    tmp_path,
    name,
    plan=None,
    kill_before_step=None,
    heal_before_step=None,
    probe_backoff_s=None,
    io_backend="thread",
):
    """Train on a tiered engine; returns (losses, injector, engine books)."""
    gpu = GPU()
    model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
    policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
    engine = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path / name,
            cpu_pool_bytes=64 << 10,
            policy=policy,
            probe_backoff_s=probe_backoff_s,
            io_backend=io_backend,
        )
    )
    cache = engine.cache()
    injector = inject_faults(cache.offloader, plan) if plan is not None else None
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=1e-3),
        gpu,
        strategy=PlacementStrategy.OFFLOAD,
        cache=cache,
    )
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=5),
        batch_size=2,
        seq_len=CONFIG.seq_len,
        device=gpu,
    )
    losses = []
    offloader = cache.offloader
    try:
        for step in range(STEPS):
            if injector is not None and kill_before_step == step:
                injector.kill()
            if injector is not None and heal_before_step == step:
                injector.heal()
            losses.append(trainer.train_step([loader.next_batch()]).loss)
        if probe_backoff_s is not None and heal_before_step is not None:
            # Settle: drive the outstanding probe rounds so the asserts
            # see the post-resurrection state, not a race.
            deadline = time.monotonic() + 5.0
            while offloader.ssd_dead and time.monotonic() < deadline:
                offloader.maybe_probe_ssd()
                time.sleep(probe_backoff_s)
        sched_stats = cache.scheduler.stats
    finally:
        trainer.close()
    return losses, injector, sched_stats, offloader


# ------------------------------------------------- die -> heal -> resurrect
def test_die_heal_resurrect_bit_exact(tmp_path):
    clean, _, _, _ = _train_engine(tmp_path, "clean")
    healed, injector, stats, offloader = _train_engine(
        tmp_path,
        "healed",
        plan=FaultPlan(seed=0),
        kill_before_step=1,
        heal_before_step=3,
        probe_backoff_s=0.005,
    )
    assert injector.fault_stats.permanent_failures > 0, "death must bite"
    breaker = offloader.breaker
    assert breaker.stats.trips >= 1
    assert breaker.stats.resurrections >= 1, "probes must resurrect the tier"
    assert breaker.state == BreakerState.CLOSED
    assert not offloader.ssd_dead
    assert offloader.stats.resurrections >= 1
    assert healed == clean, "losses must stay bit-exact through the cycle"


def test_resurrected_tier_accepts_stores_again(tmp_path):
    _, _, _, offloader = _train_engine(
        tmp_path,
        "resurrect",
        plan=FaultPlan(seed=1),
        kill_before_step=1,
        heal_before_step=2,
        probe_backoff_s=0.005,
    )
    assert not offloader.ssd_dead
    # The pool left overflow mode on resurrection.
    assert offloader.pool.overflow_allowed is False
    # Fresh stores flow normally again.
    from repro.core import TensorID

    tid = TensorID(stamp=990, shape=(512,))
    data = np.arange(512, dtype=np.float32)
    offloader.store(tid, data)
    out = offloader.load(tid, data.shape, data.dtype)
    assert np.array_equal(out, data)


def test_unhealed_device_stays_open(tmp_path):
    """Probes against a still-dead device re-open the breaker (doubled
    backoff), never resurrect."""
    _, injector, _, offloader = _train_engine(
        tmp_path,
        "stilldead",
        plan=FaultPlan(seed=2),
        kill_before_step=1,
    )
    assert injector.dead
    breaker = offloader.breaker
    assert breaker.state == BreakerState.OPEN
    # Force a probe round: the canary hits the dead injector and fails.
    deadline = time.monotonic() + 5.0
    while breaker.stats.probe_failures == 0 and time.monotonic() < deadline:
        offloader.maybe_probe_ssd()
        time.sleep(0.01)
    assert breaker.stats.probe_failures >= 1
    assert breaker.stats.resurrections == 0
    assert offloader.ssd_dead


# --------------------------------------------- 3-backend chaos matrix
@pytest.mark.parametrize("io_backend", ["thread", "uring", "gds-sim"])
def test_backend_chaos_matrix_bit_exact_recovery(tmp_path, io_backend):
    """Fault-injection parity: the injector wraps the store layer, so
    the same plan must fire (and heal) under the batched SQ/CQ paths
    exactly as under the thread backend."""
    clean, _, _, _ = _train_engine(tmp_path, f"clean-{io_backend}", io_backend=io_backend)
    plan = FaultPlan.transient(rate=0.2, seed=3)
    faulted, injector, stats, _ = _train_engine(
        tmp_path, f"faulted-{io_backend}", plan=plan, io_backend=io_backend
    )
    assert injector.fault_stats.injected_transient > 0, (
        f"the plan must bite under the {io_backend} backend"
    )
    assert stats.failed == 0, "every transient must heal within the retry budget"
    assert faulted == clean, f"{io_backend}: losses must be bit-exact"


def test_backends_agree_bit_exact(tmp_path):
    """The recovered losses are identical across all three backends."""
    plan_seed = 4
    results = {}
    for io_backend in ("thread", "uring", "gds-sim"):
        losses, _, _, _ = _train_engine(
            tmp_path,
            f"agree-{io_backend}",
            plan=FaultPlan.transient(rate=0.2, seed=plan_seed),
            io_backend=io_backend,
        )
        results[io_backend] = losses
    assert results["thread"] == results["uring"] == results["gds-sim"]


# ------------------------------------------------------- ENOSPC survival
def test_enospc_degrades_to_cpu_without_tripping_breaker(tmp_path):
    from repro.core import make_offloader

    policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
    # Standalone (scheduler-less) tiered offloader with a pool that only
    # holds two tensors: the third store demotes a victim to the SSD,
    # driving writes into the injector's ENOSPC budget.
    offloader = make_offloader(
        "tiered",
        store_dir=tmp_path / "enospc",
        cpu_pool_bytes=8 << 10,
        policy=policy,
    )
    from repro.core import TensorID

    injector = inject_faults(offloader, FaultPlan.enospc(after_bytes=4 << 10))
    blobs = {
        TensorID(stamp=i, shape=(1024,)): np.full(1024, float(i), dtype=np.float32)
        for i in range(8)
    }
    for tid, data in blobs.items():
        offloader.store(tid, data)
    assert injector.fault_stats.injected_enospc > 0, "ENOSPC must bite"
    assert offloader.stats.enospc_events > 0
    # ENOSPC is resource exhaustion, not device death: the breaker
    # must stay CLOSED and the lane alive.
    assert offloader.breaker.state == BreakerState.CLOSED
    assert not offloader.ssd_dead
    # Every tensor is still loadable, bit-exact (full-device victims
    # stayed in the overflow-tolerant CPU pool).
    for tid, data in blobs.items():
        out = offloader.load(tid, data.shape, data.dtype)
        assert np.array_equal(out, data), tid


def test_enospc_training_run_survives_full_root(tmp_path):
    """One store root fills mid-run: write-leveling re-routes chunks to
    the other root with zero failed steps and bit-exact losses."""
    import errno

    def run(name, root0_cap=None):
        gpu = GPU()
        model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
        policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
        engine = build_engine(
            EngineConfig(
                target="tiered",
                store_dir=tmp_path / name,
                cpu_pool_bytes=64 << 10,
                policy=policy,
                chunk_bytes=32 << 10,
                store_roots=[tmp_path / f"{name}-root1"],
            )
        )
        if root0_cap is not None:
            budget = {"left": root0_cap}

            def gate(root_index, nbytes, _b=budget):
                if root_index == 0:
                    _b["left"] -= nbytes
                    if _b["left"] < 0:
                        raise OSError(errno.ENOSPC, "injected: root 0 full")

            engine.chunk_store.fault_gate = gate
        cache = engine.cache()
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-3),
            gpu,
            strategy=PlacementStrategy.OFFLOAD,
            cache=cache,
        )
        loader = TokenBatchLoader(
            SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=5),
            batch_size=2,
            seq_len=CONFIG.seq_len,
            device=gpu,
        )
        try:
            losses = [trainer.train_step([loader.next_batch()]).loss for _ in range(STEPS)]
            sched = cache.scheduler.stats
            store = engine.chunk_store
            return losses, sched, store
        finally:
            trainer.close()

    clean, _, _ = run("full-clean")
    survived, sched, store = run("full-gated", root0_cap=48 << 10)
    assert store.enospc_root_skips >= 1, "the gate must actually fill root 0"
    assert sched.failed == 0
    assert survived == clean


# ------------------------------------------------------------- brownout
def test_brownout_sheds_placement_and_demotions(tmp_path):
    # cpu_tier_max_tensor_bytes below the tensor size: the policy wants
    # SSD placement even with a roomy pool, so the shed branch decides.
    policy = OffloadPolicy(
        PolicyConfig(min_offload_numel=256, cpu_tier_max_tensor_bytes=2048)
    )
    engine = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path / "brown",
            cpu_pool_bytes=256 << 10,
            policy=policy,
            io_slow_request_s=0.05,
        )
    )
    try:
        from repro.core import TensorID

        offloader = engine.offloader
        scheduler = engine.scheduler
        # Trip the slow verdict directly (the deterministic hook; the
        # end-to-end latency path is covered in test_deadlines).
        scheduler.health.mark_slow("ssd")
        data = np.arange(1024, dtype=np.float32)
        shed_tid = TensorID(stamp=1, shape=(1024,))
        offloader.store(shed_tid, data)
        assert offloader.stats.shed_stores >= 1
        assert offloader.stats.shed_bytes >= data.nbytes
        # Sheds route to CPU, not to a failure: the bytes load back.
        out = offloader.load(shed_tid, data.shape, data.dtype)
        assert np.array_equal(out, data)
        # Watermark demotions pause during the brownout...
        assert offloader.apply_watermark() == 0
        # ...and the verdict is slow, not dead: breaker stays CLOSED.
        assert offloader.breaker.state == BreakerState.CLOSED
        assert not offloader.ssd_dead
        # A fast op clears the verdict and placement resumes.
        scheduler.health.record_duration("ssd", 0.0)
        offloader.store(TensorID(stamp=2, shape=(1024,)), data)
        assert offloader.stats.shed_stores == 1
    finally:
        engine.shutdown()


def test_brownout_sheds_prefetch(tmp_path):
    policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
    engine = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path / "brownpf",
            cpu_pool_bytes=256 << 10,
            policy=policy,
            io_slow_request_s=0.05,
            prefetch_window=2,
        )
    )
    try:
        cache = engine.cache()
        # Healthy lane: the look-ahead runs (empty table, nothing shed).
        cache._prefetch_ahead(cache.current)
        assert cache.stats.prefetch_shed == 0
        # Slow lane: the whole look-ahead window is optional traffic and
        # is shed before touching a single record.
        engine.scheduler.health.mark_slow("ssd")
        cache._prefetch_ahead(cache.current)
        assert cache.stats.prefetch_shed == 1, (
            "a slow lane must shed the prefetch lookahead"
        )
        # Verdict clears -> prefetching resumes.
        engine.scheduler.health.record_duration("ssd", 0.0)
        cache._prefetch_ahead(cache.current)
        assert cache.stats.prefetch_shed == 1
    finally:
        engine.shutdown()


# ---------------------------------------- combined failure: KV serving
def _serve(monkeypatch, store_dir, *, degraded=False, plan=None, storm=False):
    """Run the KV server sim, optionally with injected faults, a
    browned-out virtual SSD, and a concurrent tenant retry storm;
    returns (result, captured engine books)."""
    from repro.io import IORequest, Priority
    from repro.io.errors import TransientIOError
    from repro.serve import KVServerSim, RequestTrace, ServerConfig, TraceConfig
    from repro.serve import server_sim

    captured = {}
    if plan is not None or degraded or storm:
        real_build = server_sim.build_engine

        def build_and_inject(config):
            engine = real_build(config)
            captured["engine"] = engine
            # Pin the live scheduler: Engine.scheduler is lazy, and a
            # post-shutdown read would hand back a fresh (empty) plane.
            captured["scheduler"] = engine.scheduler
            transitions = captured.setdefault("transitions", [])
            engine.offloader.set_breaker_listener(
                lambda name, old, new, why: transitions.append((name, old, new))
            )
            if plan is not None:
                captured["injector"] = inject_faults(engine.offloader, plan)
            if storm:
                # One tenant hammers the shared scheduler with loads
                # that fault transiently on their first attempt — a
                # retry storm riding the same lanes as the serving
                # traffic until the engine shuts down.
                outcome = captured.setdefault(
                    "storm", {"wins": 0, "submitted": 0}
                )
                scheduler = engine.scheduler

                def storm_loop():
                    i = 0
                    while True:
                        attempts = {"n": 0}

                        def flaky(attempts=attempts):
                            attempts["n"] += 1
                            if attempts["n"] == 1:
                                raise TransientIOError("storm hiccup")
                            return b"ok"

                        request = IORequest(
                            flaky,
                            kind="load",
                            priority=Priority.PREFETCH_LOAD,
                            tensor_id=f"storm{i}",
                            lane="ssd",
                        )
                        try:
                            scheduler.submit(request)
                        except Exception:
                            return  # engine shut down: storm over
                        outcome["submitted"] += 1
                        if request.wait(5) and request.error is None:
                            outcome["wins"] += 1
                        i += 1
                        time.sleep(0.001)

                thread = threading.Thread(target=storm_loop, daemon=True)
                captured["storm_thread"] = thread
                thread.start()
            return engine

        monkeypatch.setattr(server_sim, "build_engine", build_and_inject)
    trace = RequestTrace.generate(
        TraceConfig(num_requests=12, num_users=3, seed=77)
    )
    config = ServerConfig(
        store_dir=str(store_dir),
        # Brownout in the virtual cost model: the SSD fetch rate
        # collapses 8x, so paged-out blocks cost more TTFT.
        ssd_fetch_bytes_per_s=8e6 if degraded else 64e6,
    )
    result = KVServerSim(trace, config).run()
    monkeypatch.undo()
    thread = captured.get("storm_thread")
    if thread is not None:
        thread.join(5)
    return result, captured


def test_kv_serving_brownout_plus_retry_storm_bounded(tmp_path, monkeypatch):
    """KVServerSim under SSD brownout + one tenant's retry storm: TTFT
    degrades boundedly, every user's KV bytes stay bit-exact, and the
    breaker never opens (slow/transient are not dead)."""
    clean, _ = _serve(monkeypatch, tmp_path / "kv-clean")
    brown_plan = FaultPlan(seed=9, brownout_after_ops=20, brownout_latency_s=0.002)
    combined, captured = _serve(
        monkeypatch,
        tmp_path / "kv-combined",
        degraded=True,
        plan=brown_plan,
        storm=True,
    )
    injector = captured["injector"]
    assert injector.fault_stats.injected_brownouts > 0, "the brownout must bite"
    storm = captured["storm"]
    assert storm["wins"] > 0, "the retry storm must actually run"
    stats = captured["scheduler"].stats
    assert stats.retries >= storm["wins"], "every storm load retried once"
    # Every request still served; nobody starved.
    assert combined.served == clean.served
    assert combined.rejected == clean.rejected
    # All users' KV bytes bit-exact despite the storm.
    assert combined.bit_exact_checked > 0
    assert combined.bit_exact_ok
    # TTFT degrades boundedly: worse than clean, but within an order of
    # magnitude (the virtual brownout is an 8x rate cut).
    assert combined.ttft_p99 >= clean.ttft_p99
    assert combined.ttft_p99 <= 20.0 * max(clean.ttft_p99, 1e-9)
    # Brownout + transients are NOT death: the breaker logged no
    # transitions (distinct verdicts is the whole point).
    assert captured["transitions"] == []
    assert captured["engine"].offloader.breaker.state == BreakerState.CLOSED


def test_kv_pool_survives_die_then_heal_with_breaker_transitions(tmp_path):
    """The serving pool rides a die-then-heal cycle: stores fail over
    while the breaker is OPEN, canary probes resurrect the tier after
    heal, and the listener sees the full transition sequence."""
    from repro.serve import KVBlockPool, SplitToken

    block_tokens = 8
    block_bytes = block_tokens * 16
    registry = TenantRegistry()
    for user in ("alice", "bob"):
        registry.register(user)
    engine = build_engine(
        EngineConfig(
            target="tiered",
            store_dir=tmp_path / "kv-cycle",
            cpu_pool_bytes=64 * block_bytes,
            tenants=registry,
            promote_on_load=False,
            probe_backoff_s=0.005,
        )
    )
    transitions = []
    engine.offloader.set_breaker_listener(
        lambda name, old, new, why: transitions.append((name, old, new))
    )
    injector = inject_faults(engine.offloader, FaultPlan(seed=5))
    try:
        pool = KVBlockPool(
            engine,
            block_tokens=block_tokens,
            num_layers=1,
            hbm_capacity_bytes=4 * block_bytes,
            strategy=SplitToken(hbm_recent_blocks=1, cpu_window_blocks=1),
            sync_mode=True,
        )
        rng = np.random.default_rng(21)

        def blocks_for(request_id, n):
            return [
                rng.integers(0, 256, size=block_bytes, dtype=np.uint8)
                for _ in range(n)
            ]

        originals = {}
        pool.begin_request("r-alice", user="alice", context_tokens=3 * block_tokens)
        originals["r-alice"] = blocks_for("r-alice", 3)
        for data in originals["r-alice"]:
            pool.append_block("r-alice", 0, data)

        injector.kill()
        pool.begin_request("r-bob", user="bob", context_tokens=3 * block_tokens)
        originals["r-bob"] = blocks_for("r-bob", 3)
        for data in originals["r-bob"]:
            pool.append_block("r-bob", 0, data)  # SSD placement fails over
        # Bob's traffic hit the dead device, so *his* breaker opened —
        # tenant-scoped verdicts leave alice's placement untouched.
        assert "bob" in engine.offloader.dead_tenants
        assert ("ssd/bob", BreakerState.CLOSED, BreakerState.OPEN) in transitions

        injector.heal()
        deadline = time.monotonic() + 5.0
        while (
            "bob" in engine.offloader.dead_tenants
            and time.monotonic() < deadline
        ):
            engine.offloader.maybe_probe_ssd("bob")
            time.sleep(0.005)
        assert "bob" not in engine.offloader.dead_tenants, (
            "probes must resurrect the tier for bob"
        )
        assert ("ssd/bob", BreakerState.OPEN, BreakerState.HALF_OPEN) in transitions
        assert (
            "ssd/bob",
            BreakerState.HALF_OPEN,
            BreakerState.CLOSED,
        ) in transitions

        # Every block fetched back bit-exact across the whole cycle —
        # including bob's, whose stores rode the OPEN window.
        for request_id, blocks in originals.items():
            for index, data in enumerate(blocks):
                out = pool.fetch(request_id, 0, index)
                assert np.array_equal(
                    np.asarray(out, dtype=np.uint8).ravel(), data
                ), f"{request_id} block {index}"
    finally:
        engine.shutdown()
