"""Seeded chaos suite: end-to-end training under injected I/O failures.

The acceptance properties of the failure model (ISSUE 4 / architecture
§6), each proven on the functional engine with real file I/O:

1. under a seeded **transient-fault** plan the run completes with losses
   bit-exact vs the fault-free run (retries heal everything; zero FAILED
   requests leak through);
2. under **permanent SSD death** the run completes via CPU-tier failover
   with losses still bit-exact;
3. **100 % of injected job exceptions leave every scheduler worker
   alive**, with the request books reconciling exactly
   (``submitted == executed + failed + cancelled``, zero pending).

Seeds are fixed for determinism; set ``REPRO_CHAOS_STRESS=1`` to sweep a
wider seed range (the CI stress-smoke job does).
"""

import os
import threading

import numpy as np
import pytest

from repro.core import OffloadPolicy, PolicyConfig, TensorCache, make_offloader
from repro.data import SyntheticCorpus, TokenBatchLoader
from repro.device import GPU
from repro.io import IORequest, IOScheduler, Priority
from repro.io.aio import JobState
from repro.io.errors import PermanentIOError, TransientIOError
from repro.io.faults import FaultPlan, inject_faults
from repro.models import GPT, ModelConfig
from repro.optim import SGD
from repro.train import PlacementStrategy, Trainer

CONFIG = ModelConfig(
    arch="gpt", hidden=64, num_layers=2, vocab_size=97, seq_len=32, head_dim=32
)
STEPS = 3

#: Fixed seed set; the stress-smoke CI job widens it via the env knob.
SEEDS = (0, 1, 2)
if os.environ.get("REPRO_CHAOS_STRESS"):
    SEEDS = tuple(range(8))


def _assert_scheduler_invariants(scheduler):
    """Worker liveness + exact request-book reconciliation."""
    for worker in scheduler._workers:
        assert worker.is_alive(), f"worker {worker.name} died"
    assert scheduler.pending() == 0
    stats = scheduler.stats
    assert stats.submitted == stats.executed + stats.failed + stats.cancelled


def _train(
    tmp_path,
    name,
    plan=None,
    target="ssd",
    cpu_pool_bytes=None,
    chunk_bytes=None,
    kill_before_step=None,
):
    """Train the reference model; returns (losses, injector, cache)."""
    gpu = GPU()
    model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
    policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
    cache = TensorCache(
        make_offloader(
            target,
            store_dir=tmp_path / name,
            cpu_pool_bytes=cpu_pool_bytes,
            chunk_bytes=chunk_bytes,
            policy=policy,
        ),
        policy=policy,
    )
    injector = inject_faults(cache.offloader, plan) if plan is not None else None
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=1e-3),
        gpu,
        strategy=PlacementStrategy.OFFLOAD,
        cache=cache,
    )
    loader = TokenBatchLoader(
        SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=5),
        batch_size=2,
        seq_len=CONFIG.seq_len,
        device=gpu,
    )
    losses = []
    try:
        for step in range(STEPS):
            if injector is not None and kill_before_step == step:
                injector.kill()
            losses.append(trainer.train_step([loader.next_batch()]).loss)
        _assert_scheduler_invariants(cache.scheduler)
        stats = cache.scheduler.stats
    finally:
        trainer.close()
    return losses, injector, stats, cache


# ----------------------------------------------------------- transient faults
@pytest.mark.parametrize("seed", SEEDS)
def test_transient_faults_heal_to_bit_exact_results(tmp_path, seed):
    clean, _, _, _ = _train(tmp_path, "clean")
    plan = FaultPlan.transient(rate=0.25, seed=seed)
    faulted, injector, stats, cache = _train(tmp_path, f"faulted{seed}", plan=plan)
    assert injector.fault_stats.injected_transient > 0, "the plan must actually bite"
    assert stats.retries >= injector.fault_stats.injected_transient
    assert stats.failed == 0, "every transient fault must heal within the budget"
    assert faulted == clean, "results must be bit-exact vs the fault-free run"
    assert cache.stats.store_failures == 0 and cache.stats.load_failures == 0


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_transient_faults_chunked_backend_bit_exact(tmp_path, seed):
    clean, _, _, _ = _train(tmp_path, "clean", chunk_bytes=1 << 16)
    plan = FaultPlan.transient(rate=0.25, seed=seed)
    faulted, injector, stats, _ = _train(
        tmp_path, f"chunk{seed}", plan=plan, chunk_bytes=1 << 16
    )
    assert injector.fault_stats.injected_transient > 0
    assert stats.failed == 0
    assert faulted == clean


def test_latency_spikes_are_slow_not_wrong(tmp_path):
    clean, _, _, _ = _train(tmp_path, "clean")
    plan = FaultPlan.flaky_latency(rate=0.3, spike_s=0.002, seed=1)
    slow, injector, stats, _ = _train(tmp_path, "slow", plan=plan)
    assert injector.fault_stats.injected_latency > 0
    assert stats.failed == 0 and stats.retries == 0
    assert slow == clean


# ---------------------------------------------------------- permanent death
def test_permanent_ssd_death_mid_run_fails_over_to_cpu(tmp_path):
    """The SSD bricks between steps; the tiered engine re-routes every
    placement (and the in-flight demotions' buffers) to the pinned pool
    and the run completes bit-exact."""
    clean, _, _, _ = _train(
        tmp_path, "clean", target="tiered", cpu_pool_bytes=64 << 10
    )
    dead, injector, stats, cache = _train(
        tmp_path,
        "dead",
        plan=FaultPlan(),
        target="tiered",
        cpu_pool_bytes=64 << 10,
        kill_before_step=1,
    )
    tier_stats = cache.offloader.stats
    assert injector.fault_stats.permanent_failures >= 1
    assert cache.offloader.ssd_dead
    assert tier_stats.failovers >= 1
    assert dead == clean, "CPU failover must keep results bit-exact"
    # Arena accounting stays exact through the failover chaos: every
    # reinstated demotion buffer's lease was returned by shutdown.
    arena_stats = cache.offloader.arena.stats()
    assert arena_stats.outstanding == 0
    assert arena_stats.leaked == 0


def test_ssd_dead_on_arrival_tiered_completes_via_cpu(tmp_path):
    clean, _, _, _ = _train(
        tmp_path, "clean", target="tiered", cpu_pool_bytes=64 << 10
    )
    dead, injector, stats, cache = _train(
        tmp_path,
        "doa",
        plan=FaultPlan.dead(after_ops=0),
        target="tiered",
        cpu_pool_bytes=64 << 10,
    )
    assert cache.offloader.ssd_dead
    assert cache.offloader.pool.overflow_allowed
    assert dead == clean
    arena_stats = cache.offloader.arena.stats()
    assert arena_stats.outstanding == 0
    assert arena_stats.leaked == 0


def test_ssd_death_single_tier_recovers_by_keeping_tensors(tmp_path):
    """Without a CPU tier to fail over to, a dead store still must not
    corrupt training: failed stores keep their tensor GPU-resident
    (the offload saving is lost, the numerics are not)."""
    clean, _, _, _ = _train(tmp_path, "clean")
    dead, injector, stats, cache = _train(
        tmp_path, "deadssd", plan=FaultPlan.dead(after_ops=0)
    )
    assert stats.failed >= 1  # the bricked stores surfaced as FAILED
    assert cache.stats.store_failures >= 1
    assert cache.scheduler.health.is_dead("ssd")
    assert dead == clean


# -------------------------------------------------------------- worker storm
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_exception_storm_leaves_all_workers_alive(seed):
    """A seeded storm of failing / succeeding / cancelled requests from
    several threads: every worker survives, drain returns, and the books
    reconcile exactly."""
    import random

    rng = random.Random(seed)
    sched = IOScheduler(num_store_workers=2, num_load_workers=2, retry_backoff_s=0)
    submitted = []
    lock = threading.Lock()

    def body(mode):
        if mode == "transient":
            raise TransientIOError("storm blip")  # exhausts the 0-retry opt-out
        if mode == "permanent":
            raise PermanentIOError("storm brick")
        if mode == "bug":
            raise ValueError("storm bug")
        return None

    def submitter(tseed):
        trng = random.Random(tseed)
        for i in range(60):
            mode = trng.choice(["ok", "ok", "transient", "permanent", "bug"])
            req = IORequest(
                lambda m=mode: body(m),
                kind=trng.choice(["store", "load"]),
                priority=trng.choice(list(Priority)),
                tensor_id=f"t{tseed}-{i}",
                nbytes=trng.randrange(1, 4096),
                lane=trng.choice(["ssd", "cpu"]),
                max_retries=0 if mode == "transient" else None,
            )
            sched.submit(req)
            with lock:
                submitted.append(req)
            if trng.random() < 0.2:
                sched.cancel(req)

    threads = [
        threading.Thread(target=submitter, args=(rng.randrange(1 << 30),))
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
        assert not t.is_alive()
    assert sched.drain(10), "drain must return despite the exception storm"
    _assert_scheduler_invariants(sched)
    states = [req.state for req in submitted]
    assert all(req.done_event.is_set() for req in submitted)
    stats = sched.stats
    assert stats.executed == sum(1 for s in states if s is JobState.DONE)
    assert stats.failed == sum(1 for s in states if s is JobState.FAILED)
    assert stats.cancelled == sum(1 for s in states if s is JobState.CANCELLED)
    assert stats.failed > 0  # the storm actually injected failures
    sched.shutdown()


def test_drain_timeout_returns_after_store_failure(tmp_path):
    """Satellite regression: drain(timeout) must return — not hang —
    after a backend store failure killed work mid-queue."""
    from repro.core import SSDOffloader

    offloader = SSDOffloader(tmp_path / "s")
    injector = inject_faults(offloader, FaultPlan.dead(after_ops=0))
    sched = IOScheduler(num_store_workers=1, num_load_workers=1, retry_backoff_s=0)
    data = np.ones((64,), dtype=np.float32)
    reqs = [
        sched.submit(
            IORequest(
                lambda i=i: offloader.file_store.write(f"t{i}", data),
                kind="store",
                priority=Priority.STORE,
                tensor_id=f"t{i}",
                nbytes=data.nbytes,
            )
        )
        for i in range(6)
    ]
    assert sched.drain(5), "drain hung after injected store failures"
    assert all(r.state is JobState.FAILED for r in reqs)
    assert injector.fault_stats.permanent_failures == 6
    _assert_scheduler_invariants(sched)
    sched.shutdown()


# ------------------------------------------------------ tenant isolation
def _train_pair(tmp_path, name, plan_for_a=None, kill_before_step=None):
    """Two tenants share one fair-share scheduler; faults (if any) are
    injected into tenant ``a``'s offloader only.  Returns per-tenant
    losses plus the injector, registry and both caches."""
    from repro.io import TenantRegistry, tenant_scope

    registry = TenantRegistry()
    registry.register("a")
    registry.register("b")
    scheduler = IOScheduler(
        num_store_workers=2,
        num_load_workers=2,
        tenants=registry,
        retry_backoff_s=0,
        name=f"chaos-{name}",
    )

    def build(tenant):
        gpu = GPU()
        model = GPT(CONFIG, rng=np.random.default_rng(0)).to(gpu)
        policy = OffloadPolicy(PolicyConfig(min_offload_numel=256))
        cache = TensorCache(
            make_offloader(
                "tiered",
                store_dir=tmp_path / name / tenant,
                cpu_pool_bytes=64 << 10,
                policy=policy,
            ),
            policy=policy,
            scheduler=scheduler,
        )
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-3),
            gpu,
            strategy=PlacementStrategy.OFFLOAD,
            cache=cache,
        )
        loader = TokenBatchLoader(
            SyntheticCorpus(vocab_size=CONFIG.vocab_size, seed=5),
            batch_size=2,
            seq_len=CONFIG.seq_len,
            device=gpu,
        )
        return cache, trainer, loader

    cache_a, trainer_a, loader_a = build("a")
    cache_b, trainer_b, loader_b = build("b")
    injector = (
        inject_faults(cache_a.offloader, plan_for_a)
        if plan_for_a is not None
        else None
    )
    losses = {"a": [], "b": []}
    try:
        for step in range(STEPS):
            if injector is not None and kill_before_step == step:
                injector.kill()
            with tenant_scope("a"):
                losses["a"].append(trainer_a.train_step([loader_a.next_batch()]).loss)
            with tenant_scope("b"):
                losses["b"].append(trainer_b.train_step([loader_b.next_batch()]).loss)
        _assert_scheduler_invariants(scheduler)
        for tenant in ("a", "b"):
            stats = registry.stats_of(tenant)
            assert (
                stats.submitted == stats.executed + stats.failed + stats.cancelled
            ), f"tenant {tenant!r} books do not reconcile"
    finally:
        trainer_a.close()
        trainer_b.close()
    return losses, injector, registry, cache_a, cache_b


def test_tenant_ssd_death_is_isolated_and_b_stays_bit_exact(tmp_path):
    """Tenant A's SSD bricks mid-run on a *shared* scheduler: A fails
    over to its CPU tier, the death latch stays scoped to A, and tenant
    B's losses are bit-exact vs the run where A stayed healthy."""
    clean, _, _, clean_a, clean_b = _train_pair(tmp_path, "clean")
    dead, injector, registry, cache_a, cache_b = _train_pair(
        tmp_path, "dead", plan_for_a=FaultPlan(), kill_before_step=1
    )
    assert injector.fault_stats.permanent_failures >= 1
    # The latch fired for tenant A only -- never globally, never for B.
    assert cache_a.offloader.ssd_dead_for("a")
    assert not cache_a.offloader.ssd_dead
    assert not cache_b.offloader.ssd_dead_for("b")
    scheduler = cache_a.scheduler
    assert not scheduler.health.is_dead("ssd")
    assert scheduler.health.is_dead("ssd", "a")
    assert set(scheduler.health.dead_tenants("ssd")) == {"a"}
    assert cache_a.offloader.stats.failovers >= 1
    assert cache_b.offloader.stats.failovers == 0
    assert not cache_b.offloader.pool.overflow_allowed
    # Isolation: B is bit-exact; failover correctness: A is too.
    assert dead["b"] == clean["b"], "tenant B must be untouched by A's chaos"
    assert dead["a"] == clean["a"], "A's CPU failover must stay bit-exact"
    # Per-tenant lease accounting reconciles exactly after shutdown.
    for cache in (cache_a, cache_b, clean_a, clean_b):
        arena_stats = cache.offloader.arena.stats()
        assert arena_stats.outstanding == 0
        assert arena_stats.leaked == 0
        assert arena_stats.outstanding_by_tenant == {}
        assert cache.offloader.pool.used_by_tenant() == {}


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_tenant_transient_storm_retries_stay_attributed_to_a(tmp_path, seed):
    """A transient-fault storm against tenant A heals via retries whose
    cost never shows up in tenant B's books or losses."""
    clean, _, _, _, _ = _train_pair(tmp_path, "clean")
    plan = FaultPlan.transient(rate=0.25, seed=seed)
    storm, injector, registry, cache_a, cache_b = _train_pair(
        tmp_path, f"storm{seed}", plan_for_a=plan
    )
    assert injector.fault_stats.injected_transient > 0
    stats_a = registry.stats_of("a")
    stats_b = registry.stats_of("b")
    # The tiered engine heals some faults with in-offloader synchronous
    # retries that never reach the scheduler books, so only a subset of
    # injected faults shows up as request-level retries -- but all of
    # those must land on A.
    assert stats_a.retries > 0
    assert stats_b.retries == 0, "A's retry storm leaked into B's books"
    assert stats_a.failed == 0, "every transient fault must heal"
    assert storm["b"] == clean["b"]
    assert storm["a"] == clean["a"]


def test_retry_storm_degrades_other_tenant_bandwidth_under_15pct():
    """Deterministic virtual-clock storm: every one of tenant A's writes
    fails once (the aborted attempt burns a slice of device time) and
    tenant B's contended-window bandwidth degrades by less than 15 %."""
    from repro.io import TenantRegistry, tenant_scope

    bandwidth = 256e6
    nbytes = 32 << 10
    per_tenant = 64

    def run(storm):
        registry = TenantRegistry()
        registry.register("a")
        registry.register("b")
        sched = IOScheduler(
            num_store_workers=1,
            num_load_workers=1,
            lanes=("ssd",),
            tenants=registry,
            coalesce_bytes=0,
            retry_backoff_s=0,
            name=f"vdev-{'storm' if storm else 'clean'}",
        )
        lock = threading.Lock()
        start = threading.Event()
        clock = [0.0]
        served = []
        failed_once = set()

        def write(tenant, tid):
            start.wait(10)
            with lock:
                if storm and tenant == "a" and tid not in failed_once:
                    failed_once.add(tid)
                    # An aborted attempt still burns device time before
                    # the error surfaces -- a slice of the full write.
                    clock[0] += (nbytes / bandwidth) * 0.15
                    raise TransientIOError("storm blip")
                clock[0] += nbytes / bandwidth
                served.append((tenant, nbytes, clock[0]))

        try:
            for tenant in ("a", "b"):
                with tenant_scope(tenant):
                    for i in range(per_tenant):
                        sched.submit(
                            IORequest(
                                lambda t=tenant, i=i: write(t, f"{t}{i}"),
                                kind="store",
                                priority=Priority.STORE,
                                tensor_id=f"{tenant}{i}",
                                nbytes=nbytes,
                            )
                        )
            start.set()
            assert sched.drain(30)
        finally:
            start.set()
            sched.shutdown()
        if storm:
            assert len(failed_once) == per_tenant, "the storm must bite every write"
        assert registry.stats_of("a").failed == 0
        assert registry.stats_of("b").retries == 0
        finish = {
            t: max(at for who, _, at in served if who == t) for t in ("a", "b")
        }
        window = min(finish.values())
        b_bytes = sum(n for who, n, at in served if who == "b" and at <= window + 1e-12)
        return b_bytes / window

    clean_bw = run(storm=False)
    storm_bw = run(storm=True)
    degradation = 1.0 - storm_bw / clean_bw
    assert degradation < 0.15, f"tenant B lost {degradation:.1%} bandwidth to A's storm"
